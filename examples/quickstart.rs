//! Quickstart: build the operator world, assemble DIO copilot, and ask
//! a few questions in natural language.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::CopilotBuilder;

fn main() {
    // 1. The operator world: a 3000+-metric 5G-core catalog with
    //    synthetic-but-representative traffic for every counter.
    println!("building the operator world (catalog + synthetic traffic)…");
    let world = OperatorWorld::build(WorldConfig::default());
    println!(
        "  {} metrics, {} series, {} samples\n",
        world.catalog.len(),
        world.store.series_count(),
        world.store.sample_count()
    );

    // 2. The copilot: domain DB + embedding index + simulated GPT-4 +
    //    sandboxed PromQL execution, with the 20 expert few-shot tuples.
    println!("assembling DIO copilot (offline embedding pass)…\n");
    let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();

    // 3. Ask away.
    for question in [
        "How many PDU sessions are currently active at the SMF?",
        "What is the initial registration procedure success rate at the AMF?",
        "How many bytes did the UPF forward downlink on the N3 interface?",
    ] {
        let response = copilot.ask(question, world.eval_ts);
        println!("{}", response.render());
        println!("{}", "=".repeat(72));
    }

    println!(
        "\ntotal inference: {} queries, mean {:.2}¢/query",
        copilot.meter().queries(),
        copilot.meter().mean_cents_per_query()
    );
}

//! Dashboard generation (§3.3): ask a question, get the generated
//! Grafana-style dashboard JSON, and render its panels as ASCII time
//! series straight from the query engine.
//!
//! ```text
//! cargo run --release --example dashboard_generation
//! ```

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::CopilotBuilder;
use dio::dashboard::{render_ascii, Dashboard};

fn main() {
    println!("building the operator world…\n");
    let world = OperatorWorld::build(WorldConfig::default());
    let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();

    let question = "How many authentication procedures per second is the AMF processing?";
    let response = copilot.ask(question, world.eval_ts);
    println!("{}", response.render());

    let dash = response.dashboard.expect("dashboard enabled by default");

    // The JSON artifact an operator would import into their dashboards.
    let json = dash.to_json();
    println!("──── dashboard JSON ({} bytes) ────\n", json.len());
    for line in json.lines().take(24) {
        println!("{line}");
    }
    println!("… (truncated)\n");

    // Round-trip and render offline.
    let parsed = Dashboard::from_json(&json).expect("round-trips");
    assert_eq!(parsed, dash);
    println!("──── rendered panels ────\n");
    println!("{}", render_ascii(&parsed, copilot.engine(), 56));
}

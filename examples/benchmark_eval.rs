//! Run a compact version of the §4 evaluation: a reduced operator
//! world, a 60-question benchmark, and execution-accuracy comparison of
//! DIO copilot against both baselines (a faster version of the
//! `table_3a` bench binary).
//!
//! ```text
//! cargo run --release --example benchmark_eval
//! ```

use dio::baselines::{sample_schema, DinSqlBaseline, DirectModelBaseline};
use dio::benchmark::report::{format_comparison_table, format_shape_breakdown};
use dio::benchmark::{evaluate, fewshot_exemplars, generate_benchmark, OperatorWorld, WorldConfig};
use dio::copilot::CopilotBuilder;
use dio::llm::{ModelProfile, SimulatedModel};

fn main() {
    println!("building a reduced operator world…");
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = generate_benchmark(&world, 60, 0xbe9c_4a11);
    let exemplars = fewshot_exemplars(&world.catalog);
    println!(
        "  {} metrics, {} questions, {} exemplars\n",
        world.catalog.len(),
        questions.len(),
        exemplars.len()
    );

    let gpt4 = || Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()));

    let mut dio = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(gpt4())
        .exemplars(exemplars.clone())
        .build();
    let r_dio = evaluate(&mut dio, &questions, world.eval_ts);

    let schema = sample_schema(&world.domain_db(), 600, 0x5c83_a001);
    let mut dinsql = DinSqlBaseline::new(
        schema.clone(),
        exemplars.clone(),
        gpt4(),
        world.store.clone(),
    );
    let r_din = evaluate(&mut dinsql, &questions, world.eval_ts);

    let mut direct = DirectModelBaseline::new(schema, gpt4(), world.store.clone());
    let r_dir = evaluate(&mut direct, &questions, world.eval_ts);

    println!(
        "{}",
        format_comparison_table("Compact Table 3a (60 questions)", &[&r_dio, &r_din, &r_dir])
    );
    println!("{}", format_shape_breakdown(&r_dio));

    assert!(
        r_dio.ex_percent > r_din.ex_percent && r_din.ex_percent > r_dir.ex_percent,
        "expected the paper's ordering DIO > DIN-SQL > bare model"
    );
    println!("✔ paper ordering holds: DIO > DIN-SQL > bare model");
}

//! The §3.4 expert-feedback loop, end to end: the copilot fumbles a
//! jargon-heavy question, the operator presses the raised-hand button,
//! a domain expert resolves the filed issue with enriched documentation
//! and a worked exemplar, and the same question then succeeds — "a
//! system that improves with usage".
//!
//! ```text
//! cargo run --release --example expert_feedback_loop
//! ```

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::CopilotBuilder;
use dio::feedback::{Contribution, IssueState};

fn main() {
    println!("building the operator world…\n");
    let world = OperatorWorld::build(WorldConfig::default());
    let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    let now = world.eval_ts;

    // The paper's own example (§4.2.3): "LCS NI-LR" is operator jargon;
    // the vendor counter spells out "network induced location request".
    let question = "What is the LCS NI-LR procedure success rate at the AMF?";

    println!("──── attempt 1 ───────────────────────────────────────────────\n");
    let first = copilot.ask(question, now);
    println!("{}", first.render());

    // The operator requests expert help (raised-hand button → issue).
    let issue_id = copilot.request_expert_help(&first);
    println!(
        "filed issue #{issue_id}: {:?}\n",
        copilot.tracker().get(issue_id).unwrap().title
    );

    // An expert resolves the issue: enrich the two LCS counters'
    // documentation with the jargon…
    let group = world
        .catalog
        .groups
        .iter()
        .find(|g| g.procedure == "lcs_ni_lr")
        .expect("LCS NI-LR group");
    for name in [group.success.as_ref().unwrap(), group.attempt.as_ref().unwrap()] {
        let mut def = world.catalog.get(name).unwrap().clone();
        def.description = format!(
            "{} Operators refer to this procedure as LCS NI-LR.",
            def.description
        );
        // Metric doc contributions outside the issue flow go straight
        // into the domain DB with attribution.
        let extra_issue = copilot.request_expert_help(&first);
        copilot
            .resolve_issue(extra_issue, "expert:alice", Contribution::MetricDoc(def))
            .unwrap();
    }

    // …and contribute a worked exemplar through the original issue.
    copilot
        .resolve_issue(
            issue_id,
            "expert:alice",
            Contribution::Exemplar {
                question: question.to_string(),
                metrics: vec![
                    group.success.clone().unwrap(),
                    group.attempt.clone().unwrap(),
                ],
                promql: format!(
                    "100 * sum({}) / sum({})",
                    group.success.as_ref().unwrap(),
                    group.attempt.as_ref().unwrap()
                ),
            },
        )
        .unwrap();
    println!(
        "issue #{issue_id} is now {:?}, resolved by {:?}\n",
        copilot.tracker().get(issue_id).unwrap().state,
        copilot.tracker().get(issue_id).unwrap().resolved_by
    );
    assert_eq!(
        copilot.tracker().get(issue_id).unwrap().state,
        IssueState::Resolved
    );

    println!("──── attempt 2 (after expert contribution) ───────────────────\n");
    let second = copilot.ask(question, now);
    println!("{}", second.render());

    let reference = format!(
        "100 * sum({}) / sum({})",
        group.success.as_ref().unwrap(),
        group.attempt.as_ref().unwrap()
    );
    let expected = world
        .reference_engine()
        .instant_query(&reference, now)
        .unwrap()
        .as_scalar_like()
        .unwrap();
    println!("reference answer: {expected:.4}");
    match second.numeric_answer {
        Some(v) if (v - expected).abs() < 1e-9 * expected.abs().max(1e-300) => {
            println!("✔ the copilot now answers this question correctly");
        }
        other => println!("✘ still off after feedback: {other:?}"),
    }
}

//! A realistic operator debugging session — the §1 motivating workflow:
//! an operator investigates degraded registration KPIs without writing
//! a single PromQL expression themselves, drilling from a headline KPI
//! into failure causes and a visual dashboard.
//!
//! ```text
//! cargo run --release --example debugging_session
//! ```

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::CopilotBuilder;
use dio::dashboard::render_ascii;

fn main() {
    println!("building the operator world…\n");
    let world = OperatorWorld::build(WorldConfig::default());
    let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    let now = world.eval_ts;

    // Step 1: the operator notices registrations look off and asks for
    // the headline KPI.
    println!("──── step 1: headline KPI ────────────────────────────────────\n");
    let kpi = copilot.ask(
        "What is the initial registration procedure success rate at the AMF?",
        now,
    );
    println!("{}", kpi.render());

    // Step 2: how much load is the procedure taking right now?
    println!("──── step 2: load ────────────────────────────────────────────\n");
    let load = copilot.ask(
        "How many initial registration procedures per second is the AMF handling?",
        now,
    );
    println!("{}", load.render());

    // Step 3: drill into a failure cause the on-call suspects.
    println!("──── step 3: failure cause ───────────────────────────────────\n");
    let cause = copilot.ask(
        "What fraction of initial registration procedures failed due to congestion?",
        now,
    );
    println!("{}", cause.render());

    // Step 4: per-instance skew — is one AMF instance the problem?
    println!("──── step 4: per-instance skew ───────────────────────────────\n");
    let skew = copilot.ask(
        "What is the average number of initial registration attempts per AMF instance?",
        now,
    );
    println!("{}", skew.render());

    // Step 4b: a chat follow-up — "and at the SMF?" resolves against
    // the previous turn (multi-turn sessions, dio_copilot::ChatSession).
    println!("──── step 4b: follow-up via chat session ─────────────────────\n");
    {
        let mut chat = dio::copilot::ChatSession::new(&mut copilot);
        chat.ask(
            "How many PDU session establishment procedure attempts did the SMF handle?",
            now,
        );
        let turn = chat.ask("And at the N3IWF?", now);
        println!("you said : {}", turn.raw);
        println!("resolved : {}", turn.resolved);
        println!("{}", turn.response.render());
    }

    // Step 5: the generated dashboard for the KPI question, rendered as
    // ASCII time series.
    println!("──── step 5: dashboard ───────────────────────────────────────\n");
    if let Some(dash) = &kpi.dashboard {
        println!("{}", render_ascii(dash, copilot.engine(), 56));
        println!("\n(grafana-style JSON: {} bytes)", dash.to_json().len());
    }

    println!(
        "\nsession cost: {:.2}¢ across {} questions",
        copilot.meter().total_usd() * 100.0,
        copilot.meter().queries()
    );
}

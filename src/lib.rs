//! # dio — Data Intelligence for Operators Copilot
//!
//! A from-scratch Rust reproduction of *Adapting Foundation Models for
//! Operator Data Analytics* (Kotaru, HotNets '23): a natural-language
//! interface for retrieval and analytics over 5G operator metrics.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`copilot`] | `dio-copilot` | the paper's contribution: the end-to-end pipeline |
//! | [`catalog`] | `dio-catalog` | domain-specific database (3000+ 5G-core metrics, expert functions) |
//! | [`embed`] | `dio-embed` | deterministic sentence embedder (all-MiniLM-L6-v2 substitute) |
//! | [`vecstore`] | `dio-vecstore` | flat + IVF cosine indexes (FAISS substitute) |
//! | [`tsdb`] | `dio-tsdb` | labelled time-series store + synthetic traffic |
//! | [`promql`] | `dio-promql` | PromQL lexer/parser/evaluator |
//! | [`llm`] | `dio-llm` | prompts, pricing, simulated foundation models |
//! | [`sandbox`] | `dio-sandbox` | vetted, resource-limited query execution |
//! | [`dashboard`] | `dio-dashboard` | dashboard model, generation, ASCII rendering |
//! | [`feedback`] | `dio-feedback` | issue tracker, expert contributions, voting |
//! | [`faults`] | `dio-faults` | seeded data-plane chaos + checksummed record framing |
//! | [`obs`] | `dio-obs` | metrics registry, tracer, Prometheus text exposition |
//! | [`baselines`] | `dio-baselines` | DIN-SQL-style and bare-model baselines |
//! | [`benchmark`] | `dio-benchmark` | 200-question benchmark + EX evaluation |
//! | [`serve`] | `dio-serve` | concurrent multi-tenant query service with admission control |
//! | [`gateway`] | `dio-gateway` | model-plane gateway: singleflight coalescing, batched inference, semantic answer cache |
//! | [`cluster`] | `dio-cluster` | sharded serving: hash-ring partitioning, WAL-shipped replicas, failover |
//!
//! ## Quickstart
//!
//! ```no_run
//! use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
//! use dio::copilot::CopilotBuilder;
//!
//! let world = OperatorWorld::build(WorldConfig::default());
//! let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
//!     .exemplars(fewshot_exemplars(&world.catalog))
//!     .build();
//! let answer = copilot.ask("How many PDU sessions are currently active?", world.eval_ts);
//! println!("{}", answer.render());
//! ```

pub use dio_baselines as baselines;
pub use dio_benchmark as benchmark;
pub use dio_catalog as catalog;
pub use dio_cluster as cluster;
pub use dio_copilot as copilot;
pub use dio_dashboard as dashboard;
pub use dio_embed as embed;
pub use dio_faults as faults;
pub use dio_feedback as feedback;
pub use dio_gateway as gateway;
pub use dio_llm as llm;
pub use dio_obs as obs;
pub use dio_promql as promql;
pub use dio_sandbox as sandbox;
pub use dio_serve as serve;
pub use dio_tsdb as tsdb;
pub use dio_vecstore as vecstore;

//! # dio-llm
//!
//! Foundation-model substrate: token accounting, prompt construction,
//! pricing, and a family of **deterministic simulated foundation
//! models**.
//!
//! ## The substitution (read this first)
//!
//! The paper runs GPT-4, GPT-3.5-turbo, and text-curie-001 through the
//! OpenAI API. Those models are unavailable offline, so this crate
//! substitutes simulated models that honour the same *interface* (a
//! prompt string in, a completion string out, token usage accounted) and
//! the same *failure structure*:
//!
//! * a simulated model can only select metrics **whose descriptions are
//!   present in its prompt** — no context, no answer (the paper's core
//!   claim about curated context);
//! * it can only produce well-formed analytic PromQL when **few-shot
//!   examples teach the query shape**; without exemplars it falls back
//!   to naive single-metric retrieval guesses and name fabrication —
//!   mirroring the paper's DIN-SQL failure example
//!   (`sum(amfcc lcs ni lr success)` fabricated from question words);
//! * capability tiers differ in paraphrase understanding, context
//!   window (curie truncates), template skill, and deterministic error
//!   injection — producing the Table 3b ordering as *emergent* behaviour.
//!
//! Determinism: a completion is a pure function of (model profile,
//! prompt text). There is no wall-clock, no RNG state; "noise" is a hash
//! of the question and model name, so reruns reproduce exactly —
//! matching the paper's temperature-0 setting ("for repeatable answers
//! to the same query").

pub mod batch;
pub mod cost;
pub mod faults;
pub mod model;
pub mod obs;
pub mod prompt;
pub mod sim;
pub mod tokens;

pub use batch::{batch_markers, compose_batch, is_batched, split_batch, BatchExpander, BatchLayout};
pub use cost::{CostLedger, CostMeter, Pricing, TokenUsage};
pub use faults::{FaultConfig, FaultEvent, FaultKind, FaultyModel};
pub use model::{Completion, CompletionRequest, FoundationModel, ModelError, TaskKind};
pub use obs::ObservedModel;
pub use prompt::{ContextItem, FewShotExample, Prompt, PromptBuilder};
pub use sim::profile::{ModelProfile, SimulatedModel};
pub use tokens::count_tokens;

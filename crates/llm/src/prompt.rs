//! Typed prompt construction with context-window budgeting.
//!
//! Stands in for the LangChain prompt assembly the paper uses (§4). A
//! prompt has five sections — system instruction, retrieved context,
//! expert functions, few-shot examples, and the user question — plus a
//! task directive telling the model what to emit. The builder enforces
//! the model's context window: highest-relevance context first, then
//! examples, dropping whatever does not fit (this truncation is exactly
//! how small-window models like text-curie-001 lose context and
//! accuracy).

use crate::model::TaskKind;
use crate::tokens::count_tokens;
use serde::{Deserialize, Serialize};

/// One retrieved context sample (metric description, function
/// definition, or expert note).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextItem {
    /// Counter/function name.
    pub name: String,
    /// Description text.
    pub text: String,
    /// Retrieval score — items are kept highest-first on truncation.
    pub relevance: f32,
}

/// One few-shot exemplar: an expert-written question with its relevant
/// metrics and the PromQL that answers it (§4: "20 expert-generated
/// tuples consisting of user query, corresponding context, relevant
/// metrics and the PromQL query").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FewShotExample {
    /// The example user question.
    pub question: String,
    /// Metric names the example uses.
    pub metrics: Vec<String>,
    /// The reference PromQL.
    pub promql: String,
}

/// A rendered prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prompt {
    /// The full prompt text sent to the model.
    pub text: String,
    /// Approximate token count of `text`.
    pub tokens: usize,
    /// Context items that survived truncation.
    pub context_kept: usize,
    /// Context items dropped by the window budget.
    pub context_dropped: usize,
    /// Examples that survived truncation.
    pub examples_kept: usize,
    /// Examples dropped by the window budget.
    pub examples_dropped: usize,
    /// The task directive.
    pub task: TaskKind,
}

/// Builder for [`Prompt`].
#[derive(Debug, Clone, Default)]
pub struct PromptBuilder {
    system: String,
    context: Vec<ContextItem>,
    functions: Vec<ContextItem>,
    examples: Vec<FewShotExample>,
    question: String,
    task: Option<TaskKind>,
}

/// Section markers used in the rendered text. The simulated models parse
/// these back; real models would simply read them as headers.
pub mod markers {
    /// System section header.
    pub const SYSTEM: &str = "### SYSTEM";
    /// Context section header.
    pub const CONTEXT: &str = "### CONTEXT";
    /// Functions section header.
    pub const FUNCTIONS: &str = "### FUNCTIONS";
    /// Examples section header.
    pub const EXAMPLES: &str = "### EXAMPLES";
    /// Question section header.
    pub const QUESTION: &str = "### QUESTION";
    /// Task section header.
    pub const TASK: &str = "### TASK";
    /// Context item prefix.
    pub const ITEM: &str = "<<ITEM>> ";
    /// Example question prefix.
    pub const EX_Q: &str = "<<Q>> ";
    /// Example metrics prefix.
    pub const EX_METRICS: &str = "<<METRICS>> ";
    /// Example PromQL prefix.
    pub const EX_PROMQL: &str = "<<PROMQL>> ";
}

impl PromptBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        PromptBuilder::default()
    }

    /// Set the system instruction.
    pub fn system(mut self, text: impl Into<String>) -> Self {
        self.system = text.into();
        self
    }

    /// Add one context item.
    pub fn context_item(mut self, item: ContextItem) -> Self {
        self.context.push(item);
        self
    }

    /// Add many context items.
    pub fn context(mut self, items: impl IntoIterator<Item = ContextItem>) -> Self {
        self.context.extend(items);
        self
    }

    /// Add an expert function definition.
    pub fn function(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.functions.push(ContextItem {
            name: name.into(),
            text: text.into(),
            relevance: f32::MAX, // functions are never dropped before context
        });
        self
    }

    /// Add few-shot examples.
    pub fn examples(mut self, ex: impl IntoIterator<Item = FewShotExample>) -> Self {
        self.examples.extend(ex);
        self
    }

    /// Set the user question.
    pub fn question(mut self, q: impl Into<String>) -> Self {
        self.question = q.into();
        self
    }

    /// Set the task directive.
    pub fn task(mut self, task: TaskKind) -> Self {
        self.task = Some(task);
        self
    }

    /// Render within `context_window` tokens, reserving
    /// `reserved_output` for the completion.
    ///
    /// The skeleton (system, question, task) is always kept; context
    /// items are added in descending relevance, then functions, then
    /// examples in order, until the budget is exhausted.
    pub fn build(&self, context_window: usize, reserved_output: usize) -> Prompt {
        let task = self.task.unwrap_or(TaskKind::GeneratePromql);
        let budget = context_window.saturating_sub(reserved_output);

        let skeleton = format!(
            "{}\n{}\n\n{}\n{}\n\n{}\n{}\n",
            markers::SYSTEM,
            self.system,
            markers::QUESTION,
            self.question,
            markers::TASK,
            task.directive(),
        );
        let mut used = count_tokens(&skeleton)
            + count_tokens(markers::CONTEXT)
            + count_tokens(markers::FUNCTIONS)
            + count_tokens(markers::EXAMPLES);

        // Context in descending relevance (stable for ties).
        let mut ordered: Vec<&ContextItem> = self.context.iter().collect();
        ordered.sort_by(|a, b| {
            b.relevance
                .partial_cmp(&a.relevance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut kept_context: Vec<&ContextItem> = Vec::new();
        let mut dropped_context = 0usize;
        for item in ordered {
            let line = format!("{}{}: {}", markers::ITEM, item.name, item.text);
            let cost = count_tokens(&line);
            if used + cost <= budget {
                used += cost;
                kept_context.push(item);
            } else {
                dropped_context += 1;
            }
        }

        let mut kept_functions: Vec<&ContextItem> = Vec::new();
        for item in &self.functions {
            let line = format!("{}{}: {}", markers::ITEM, item.name, item.text);
            let cost = count_tokens(&line);
            if used + cost <= budget {
                used += cost;
                kept_functions.push(item);
            }
        }

        let mut kept_examples: Vec<&FewShotExample> = Vec::new();
        let mut dropped_examples = 0usize;
        for ex in &self.examples {
            let block = format!(
                "{}{}\n{}{}\n{}{}",
                markers::EX_Q,
                ex.question,
                markers::EX_METRICS,
                ex.metrics.join(", "),
                markers::EX_PROMQL,
                ex.promql,
            );
            let cost = count_tokens(&block);
            if used + cost <= budget {
                used += cost;
                kept_examples.push(ex);
            } else {
                dropped_examples += 1;
            }
        }

        // Render.
        let mut text = String::new();
        text.push_str(markers::SYSTEM);
        text.push('\n');
        text.push_str(&self.system);
        text.push_str("\n\n");
        text.push_str(markers::CONTEXT);
        text.push('\n');
        // Context renders in the builder's insertion order (retrieval
        // rank), filtered to survivors.
        for item in &self.context {
            if kept_context.iter().any(|k| std::ptr::eq(*k, item)) {
                text.push_str(&format!("{}{}: {}\n", markers::ITEM, item.name, item.text));
            }
        }
        text.push('\n');
        text.push_str(markers::FUNCTIONS);
        text.push('\n');
        for item in &kept_functions {
            text.push_str(&format!("{}{}: {}\n", markers::ITEM, item.name, item.text));
        }
        text.push('\n');
        text.push_str(markers::EXAMPLES);
        text.push('\n');
        for ex in &kept_examples {
            text.push_str(&format!(
                "{}{}\n{}{}\n{}{}\n",
                markers::EX_Q,
                ex.question,
                markers::EX_METRICS,
                ex.metrics.join(", "),
                markers::EX_PROMQL,
                ex.promql,
            ));
        }
        text.push('\n');
        text.push_str(markers::QUESTION);
        text.push('\n');
        text.push_str(&self.question);
        text.push_str("\n\n");
        text.push_str(markers::TASK);
        text.push('\n');
        text.push_str(task.directive());
        text.push('\n');

        let tokens = count_tokens(&text);
        Prompt {
            text,
            tokens,
            context_kept: kept_context.len(),
            context_dropped: dropped_context,
            examples_kept: kept_examples.len(),
            examples_dropped: dropped_examples,
            task,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(name: &str, rel: f32) -> ContextItem {
        ContextItem {
            name: name.to_string(),
            text: format!("The number of {name} events observed by the network function."),
            relevance: rel,
        }
    }

    fn example(i: usize) -> FewShotExample {
        FewShotExample {
            question: format!("how many events of kind {i} happened"),
            metrics: vec![format!("metric_{i}")],
            promql: format!("sum(metric_{i})"),
        }
    }

    fn full_builder() -> PromptBuilder {
        PromptBuilder::new()
            .system("You are DIO copilot, answering operator data questions.")
            .context((0..10).map(|i| item(&format!("m{i}"), 1.0 - i as f32 * 0.05)))
            .examples((0..5).map(example))
            .question("how many m3 events happened")
            .task(TaskKind::GeneratePromql)
    }

    #[test]
    fn large_window_keeps_everything() {
        let p = full_builder().build(32_000, 1000);
        assert_eq!(p.context_kept, 10);
        assert_eq!(p.context_dropped, 0);
        assert_eq!(p.examples_kept, 5);
        assert!(p.tokens < 32_000);
        assert!(p.text.contains("### QUESTION"));
        assert!(p.text.contains("<<PROMQL>> sum(metric_0)"));
    }

    #[test]
    fn tiny_window_drops_low_relevance_context_first() {
        let p = full_builder().build(260, 50);
        assert!(p.context_dropped > 0, "expected drops: {p:?}");
        // The highest-relevance item must be the survivor.
        assert!(p.text.contains("<<ITEM>> m0:"));
        if p.context_kept < 10 {
            assert!(!p.text.contains("<<ITEM>> m9:"));
        }
    }

    #[test]
    fn skeleton_always_present() {
        let p = full_builder().build(60, 10);
        assert!(p.text.contains("### SYSTEM"));
        assert!(p.text.contains("### QUESTION"));
        assert!(p.text.contains("how many m3 events happened"));
        assert!(p.text.contains("### TASK"));
    }

    #[test]
    fn token_budget_respected() {
        for window in [200, 400, 800, 1600] {
            let p = full_builder().build(window, 100);
            assert!(
                p.tokens <= window,
                "window {window}: prompt used {} tokens",
                p.tokens
            );
        }
    }

    #[test]
    fn context_renders_in_retrieval_order() {
        let b = PromptBuilder::new()
            .system("s")
            .context(vec![item("first", 0.2), item("second", 0.9)])
            .question("q")
            .task(TaskKind::IdentifyMetrics);
        let p = b.build(32_000, 100);
        let first_pos = p.text.find("<<ITEM>> first").unwrap();
        let second_pos = p.text.find("<<ITEM>> second").unwrap();
        // Insertion order preserved even though relevance differs.
        assert!(first_pos < second_pos);
    }

    #[test]
    fn functions_render_between_context_and_examples() {
        let p = PromptBuilder::new()
            .system("s")
            .function("success_rate", "computes a success rate")
            .question("q")
            .task(TaskKind::GeneratePromql)
            .build(32_000, 100);
        assert!(p.text.contains("### FUNCTIONS"));
        assert!(p.text.contains("<<ITEM>> success_rate"));
    }

    #[test]
    fn build_is_deterministic() {
        let a = full_builder().build(1000, 100);
        let b = full_builder().build(1000, 100);
        assert_eq!(a, b);
    }
}

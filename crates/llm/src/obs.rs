//! Metrics-emitting wrapper around any [`FoundationModel`].
//!
//! [`ObservedModel`] delegates every call and accounts prompt/completion
//! tokens, per-outcome call counts, and accumulated spend into a
//! [`dio_obs::Registry`] — the model-side half of the copilot's
//! self-telemetry.

use crate::cost::Pricing;
use crate::model::{Completion, CompletionRequest, FoundationModel, ModelError};
use dio_obs::Registry;

/// Help/name constants shared with the self-observation catalog.
const CALLS_NAME: &str = "dio_llm_model_calls_total";
const CALLS_HELP: &str = "Completion calls the copilot issued to the foundation model.";
const PROMPT_TOKENS_NAME: &str = "dio_llm_prompt_tokens_total";
const PROMPT_TOKENS_HELP: &str = "Prompt tokens sent to the foundation model.";
const COMPLETION_TOKENS_NAME: &str = "dio_llm_completion_tokens_total";
const COMPLETION_TOKENS_HELP: &str = "Completion tokens received back from the foundation model.";
const COST_NAME: &str = "dio_llm_cost_cents_total";
const COST_HELP: &str = "Accumulated spend in cents across every model completion.";

fn outcome_slug(result: &Result<Completion, ModelError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(ModelError::ContextOverflow { .. }) => "context_overflow",
        Err(ModelError::Unsupported(_)) => "unsupported",
        Err(ModelError::Unavailable(_)) => "unavailable",
    }
}

/// A [`FoundationModel`] wrapper that records token/cost/outcome metrics
/// for every `complete` call.
pub struct ObservedModel {
    inner: Box<dyn FoundationModel>,
    registry: Registry,
}

impl std::fmt::Debug for ObservedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedModel")
            .field("inner", &self.inner.name())
            .finish_non_exhaustive()
    }
}

impl ObservedModel {
    /// Wrap `inner`, pre-registering the zero-valued instruments so they
    /// export (and get catalog entries) before the first call.
    pub fn new(inner: Box<dyn FoundationModel>, registry: Registry) -> Self {
        let model = inner.name().to_string();
        registry.counter_with(CALLS_NAME, CALLS_HELP, &[("model", &model), ("outcome", "ok")]);
        registry.counter(PROMPT_TOKENS_NAME, PROMPT_TOKENS_HELP);
        registry.counter(COMPLETION_TOKENS_NAME, COMPLETION_TOKENS_HELP);
        registry.counter(COST_NAME, COST_HELP);
        ObservedModel { inner, registry }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &dyn FoundationModel {
        self.inner.as_ref()
    }

    /// Swap the wrapped model, keeping the registry.
    pub fn replace_inner(&mut self, inner: Box<dyn FoundationModel>) {
        self.inner = inner;
    }
}

impl FoundationModel for ObservedModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn pricing(&self) -> Pricing {
        self.inner.pricing()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError> {
        let result = self.inner.complete(request);
        let model = self.inner.name().to_string();
        self.registry
            .counter_with(
                CALLS_NAME,
                CALLS_HELP,
                &[("model", &model), ("outcome", outcome_slug(&result))],
            )
            .inc();
        if let Ok(c) = &result {
            self.registry
                .counter(PROMPT_TOKENS_NAME, PROMPT_TOKENS_HELP)
                .add(c.usage.prompt_tokens as f64);
            self.registry
                .counter(COMPLETION_TOKENS_NAME, COMPLETION_TOKENS_HELP)
                .add(c.usage.completion_tokens as f64);
            self.registry
                .counter(COST_NAME, COST_HELP)
                .add(self.inner.pricing().cost_cents(c.usage));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskKind;
    use crate::prompt::PromptBuilder;
    use crate::sim::profile::{ModelProfile, SimulatedModel};

    fn request(q: &str) -> CompletionRequest {
        let p = PromptBuilder::new()
            .system("sys")
            .question(q)
            .task(TaskKind::GeneratePromql)
            .build(32_000, 1000);
        CompletionRequest::paper_defaults(p)
    }

    #[test]
    fn counts_calls_tokens_and_cost() {
        let registry = Registry::new();
        let m = ObservedModel::new(
            Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())),
            registry.clone(),
        );
        let c1 = m.complete(&request("how many paging attempts?")).unwrap();
        let c2 = m.complete(&request("how many registrations?")).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.total(CALLS_NAME), 2.0);
        assert_eq!(
            snap.total(PROMPT_TOKENS_NAME),
            (c1.usage.prompt_tokens + c2.usage.prompt_tokens) as f64
        );
        assert_eq!(
            snap.total(COMPLETION_TOKENS_NAME),
            (c1.usage.completion_tokens + c2.usage.completion_tokens) as f64
        );
        let expected_cost = m.pricing().cost_cents(c1.usage) + m.pricing().cost_cents(c2.usage);
        assert!((snap.total(COST_NAME) - expected_cost).abs() < 1e-12);
        // The ok series carries model + outcome labels.
        let fam = snap.family(CALLS_NAME).unwrap();
        let ok = fam
            .series
            .iter()
            .find(|s| s.labels.contains(&("outcome".into(), "ok".into())))
            .unwrap();
        assert!(ok.labels.contains(&("model".into(), "gpt-4-sim".into())));
    }

    #[test]
    fn delegation_is_transparent() {
        let inner = SimulatedModel::new(ModelProfile::gpt4_sim());
        let m = ObservedModel::new(
            Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())),
            Registry::new(),
        );
        let r = request("how many paging attempts?");
        assert_eq!(m.complete(&r).unwrap(), inner.complete(&r).unwrap());
        assert_eq!(m.name(), inner.name());
        assert_eq!(m.context_window(), inner.context_window());
    }

    #[test]
    fn zero_instruments_export_before_first_call() {
        let registry = Registry::new();
        let _m = ObservedModel::new(
            Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())),
            registry.clone(),
        );
        let snap = registry.snapshot();
        assert!(snap.family(CALLS_NAME).is_some());
        assert_eq!(snap.total(COST_NAME), 0.0);
    }
}

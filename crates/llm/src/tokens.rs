//! Approximate token counting.
//!
//! Real GPT models use byte-pair encodings averaging ~4 characters per
//! token on English prose. This deterministic approximation reproduces
//! that density closely enough for context-window budgeting and cost
//! accounting: each whitespace-separated word contributes
//! `ceil(len / 4)` tokens (snake_case counter names decompose into many
//! tokens, exactly as BPE does), and each punctuation run contributes 1.

/// Approximate BPE token count of a text.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    for word in text.split_whitespace() {
        // Split the word into alphanumeric runs and punctuation runs.
        let mut alnum_len = 0usize;
        let mut prev_punct = false;
        for ch in word.chars() {
            if ch.is_alphanumeric() {
                alnum_len += 1;
                prev_punct = false;
            } else {
                if alnum_len > 0 {
                    tokens += alnum_len.div_ceil(4);
                    alnum_len = 0;
                }
                if !prev_punct {
                    tokens += 1;
                    prev_punct = true;
                }
            }
        }
        if alnum_len > 0 {
            tokens += alnum_len.div_ceil(4);
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t"), 0);
    }

    #[test]
    fn short_words_are_one_token() {
        assert_eq!(count_tokens("the"), 1);
        assert_eq!(count_tokens("a b c"), 3);
    }

    #[test]
    fn long_words_split() {
        assert_eq!(count_tokens("authentication"), 4); // 14 chars -> 4
        assert_eq!(count_tokens("ab"), 1);
        assert_eq!(count_tokens("abcd"), 1);
        assert_eq!(count_tokens("abcde"), 2);
    }

    #[test]
    fn counter_names_cost_many_tokens() {
        // amfcc_n1_auth_request: runs amfcc(2) n1(1) auth(1) request(2)
        // plus two underscore runs... underscores split runs: amfcc, _,
        // n1, _, auth, _, request -> 2+1+1+1+1+1+2 = 9
        let n = count_tokens("amfcc_n1_auth_request");
        assert!(n >= 7, "expected counter name to be many tokens, got {n}");
    }

    #[test]
    fn prose_density_is_plausible() {
        let text = "The number of authentication requests sent by AMF. \
                    The AUTHENTICATION REQUEST message is defined in section 8.2.1 of 3GPP TS 24.501.";
        let words = text.split_whitespace().count();
        let tokens = count_tokens(text);
        // BPE ratio on prose is ~1.3 tokens/word.
        assert!(tokens >= words, "tokens {tokens} < words {words}");
        assert!(tokens <= words * 2, "tokens {tokens} > 2x words {words}");
    }

    #[test]
    fn deterministic() {
        let t = "sum(rate(upfup_n3_ul_bytes[5m]))";
        assert_eq!(count_tokens(t), count_tokens(t));
    }
}

//! Deterministic fault injection for foundation models.
//!
//! [`FaultyModel`] wraps any [`FoundationModel`] and injects a seeded,
//! reproducible stream of the failure modes a real model API exhibits:
//! truncated completions, syntactically broken PromQL, garbage tokens,
//! transient unavailability, and latency spikes. The fault schedule is a
//! pure function of the seed and the call sequence — no wall-clock, no
//! global RNG — so any run (and any failure it surfaces) replays
//! exactly.
//!
//! The wrapper is the test harness for the copilot's recovery loop: the
//! pipeline cannot tell an injected fault from a real one, so every
//! retry/repair/degradation path is exercised against the same interface
//! production traffic would hit.

use crate::cost::Pricing;
use crate::model::{Completion, CompletionRequest, FoundationModel, ModelError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// The failure modes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The completion is cut off mid-expression (as when a response
    /// stream drops or `max_tokens` bites).
    TruncatedCompletion,
    /// The completion is corrupted into syntactically invalid PromQL.
    MalformedPromql,
    /// The completion is replaced with fluent garbage tokens.
    GarbageTokens,
    /// The call fails outright with [`ModelError::Unavailable`].
    Unavailable,
    /// The call succeeds but a latency spike is recorded.
    LatencySpike,
}

impl FaultKind {
    /// All kinds, in weight order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TruncatedCompletion,
        FaultKind::MalformedPromql,
        FaultKind::GarbageTokens,
        FaultKind::Unavailable,
        FaultKind::LatencySpike,
    ];

    /// Stable snake-case label value for metrics.
    pub fn slug(&self) -> &'static str {
        match self {
            FaultKind::TruncatedCompletion => "truncated_completion",
            FaultKind::MalformedPromql => "malformed_promql",
            FaultKind::GarbageTokens => "garbage_tokens",
            FaultKind::Unavailable => "unavailable",
            FaultKind::LatencySpike => "latency",
        }
    }
}

/// Configuration for the fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// RNG seed; the entire fault schedule derives from it.
    pub seed: u64,
    /// Probability that any given call is faulted.
    pub fault_probability: f64,
    /// Relative weights of each kind, indexed like [`FaultKind::ALL`].
    /// A zero weight disables that kind.
    pub weights: [u32; 5],
    /// Simulated extra latency recorded on a latency spike (µs).
    pub latency_spike_micros: u64,
}

impl FaultConfig {
    /// Uniform mix of all five kinds at probability `p`.
    pub fn with_probability(seed: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault probability {p} outside [0,1]");
        FaultConfig {
            seed,
            fault_probability: p,
            weights: [1, 1, 1, 1, 1],
            latency_spike_micros: 250_000,
        }
    }

    /// No faults at all (the wrapper becomes a transparent pass-through
    /// that still logs calls).
    pub fn disabled(seed: u64) -> Self {
        Self::with_probability(seed, 0.0)
    }
}

/// One injected fault, for post-hoc analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// 0-based index of the `complete` call the fault hit.
    pub call: usize,
    /// What was injected.
    pub kind: FaultKind,
}

#[derive(Debug)]
struct FaultState {
    rng: ChaCha8Rng,
    calls: usize,
    log: Vec<FaultEvent>,
    injected_latency_micros: u64,
}

/// Instrument name/help for the injected-fault counter.
const FAULTS_NAME: &str = "dio_llm_faults_injected_total";
const FAULTS_HELP: &str = "Faults the injection harness planted into model completions.";

/// A [`FoundationModel`] wrapper that injects seeded faults.
#[derive(Debug)]
pub struct FaultyModel<M> {
    inner: M,
    config: FaultConfig,
    state: Mutex<FaultState>,
    registry: Option<dio_obs::Registry>,
}

impl<M: FoundationModel> FaultyModel<M> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: M, config: FaultConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        FaultyModel {
            inner,
            config,
            state: Mutex::new(FaultState {
                rng,
                calls: 0,
                log: Vec::new(),
                injected_latency_micros: 0,
            }),
            registry: None,
        }
    }

    /// Count injected faults into `registry` as
    /// `dio_llm_faults_injected_total{kind}`. Zero-valued series for
    /// the error-class kind and the latency kind are registered
    /// immediately so both export before the first fault. The counter
    /// only observes the schedule — it never perturbs it.
    pub fn with_registry(mut self, registry: dio_obs::Registry) -> Self {
        registry.counter_with(FAULTS_NAME, FAULTS_HELP, &[("kind", "unavailable")]);
        registry.counter_with(
            FAULTS_NAME,
            FAULTS_HELP,
            &[("kind", FaultKind::LatencySpike.slug())],
        );
        self.registry = Some(registry);
        self
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The fault schedule configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Every fault injected so far, in call order.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.state.lock().unwrap().log.clone()
    }

    /// Number of `complete` calls observed.
    pub fn calls(&self) -> usize {
        self.state.lock().unwrap().calls
    }

    /// Total simulated latency injected by spikes (µs). Recorded, never
    /// slept — determinism forbids touching the clock.
    pub fn injected_latency_micros(&self) -> u64 {
        self.state.lock().unwrap().injected_latency_micros
    }

    /// Decide the fault for the current call. Always draws the same
    /// number of RNG values so the schedule depends only on (seed, call
    /// index), not on which faults fired earlier.
    fn draw_fault(state: &mut FaultState, config: &FaultConfig) -> Option<FaultKind> {
        let roll: f64 = state.rng.gen_range(0.0..1.0);
        let pick: u64 = state.rng.gen_range(0..u64::MAX);
        if roll >= config.fault_probability {
            return None;
        }
        let total: u64 = config.weights.iter().map(|w| *w as u64).sum();
        if total == 0 {
            return None;
        }
        let mut target = pick % total;
        for (kind, w) in FaultKind::ALL.iter().zip(config.weights.iter()) {
            if target < *w as u64 {
                return Some(*kind);
            }
            target -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Cut `text` to roughly the first third, on a char boundary, mimicking
/// a dropped response stream.
fn truncate_text(text: &str) -> String {
    let cut = (text.len() / 3).max(1);
    let mut end = cut.min(text.len());
    while end < text.len() && !text.is_char_boundary(end) {
        end += 1;
    }
    text[..end].to_string()
}

/// Corrupt a completion into guaranteed-invalid PromQL while keeping it
/// recognisably derived from the original (the repair prompt shows it).
fn malform_text(text: &str) -> String {
    format!("{} )(", text.replace(')', ""))
}

/// Deterministic garbage. Payload randomness comes from a per-call
/// derived RNG so it never perturbs the main fault-schedule stream.
fn garbage_text(seed: u64, call: usize) -> String {
    const SHARDS: [&str; 8] = [
        "certainly", "##", "qqq", "metric of", "0x7f", "::", "%%", "promql says",
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (call as u64).wrapping_mul(0x9E37_79B9));
    let n = rng.gen_range(3..9usize);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(SHARDS[rng.gen_range(0..SHARDS.len())]);
    }
    out.join(" ")
}

impl<M: FoundationModel> FoundationModel for FaultyModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn pricing(&self) -> Pricing {
        self.inner.pricing()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError> {
        let mut state = self.state.lock().unwrap();
        let call = state.calls;
        state.calls += 1;
        let fault = Self::draw_fault(&mut state, &self.config);
        if let Some(kind) = fault {
            state.log.push(FaultEvent { call, kind });
            if let Some(registry) = &self.registry {
                registry
                    .counter_with(FAULTS_NAME, FAULTS_HELP, &[("kind", kind.slug())])
                    .inc();
            }
        }

        match fault {
            Some(FaultKind::Unavailable) => Err(ModelError::Unavailable(format!(
                "injected outage on call {call}"
            ))),
            Some(FaultKind::GarbageTokens) => {
                // Bill the prompt as if the model ran; the completion is
                // noise.
                let text = garbage_text(self.config.seed, call);
                let completion_tokens = crate::tokens::count_tokens(&text);
                Ok(Completion {
                    usage: crate::cost::TokenUsage {
                        prompt_tokens: request.prompt.tokens,
                        completion_tokens,
                    },
                    text,
                })
            }
            Some(FaultKind::TruncatedCompletion) => {
                drop(state);
                let c = self.inner.complete(request)?;
                let text = truncate_text(&c.text);
                let completion_tokens = crate::tokens::count_tokens(&text);
                Ok(Completion {
                    usage: crate::cost::TokenUsage {
                        prompt_tokens: c.usage.prompt_tokens,
                        completion_tokens,
                    },
                    text,
                })
            }
            Some(FaultKind::MalformedPromql) => {
                drop(state);
                let c = self.inner.complete(request)?;
                let text = malform_text(&c.text);
                let completion_tokens = crate::tokens::count_tokens(&text);
                Ok(Completion {
                    usage: crate::cost::TokenUsage {
                        prompt_tokens: c.usage.prompt_tokens,
                        completion_tokens,
                    },
                    text,
                })
            }
            Some(FaultKind::LatencySpike) => {
                // A caller-supplied timeout caps how much of the spike
                // the caller actually waits through: when the spike
                // exceeds the cap the call is abandoned at the cap with
                // a transient error. Purely a function of (schedule,
                // request) — no extra RNG draws, no sleeping.
                let spike = self.config.latency_spike_micros;
                match request.timeout_ms.map(|ms| ms.saturating_mul(1000)) {
                    Some(cap_micros) if spike > cap_micros => {
                        state.injected_latency_micros += cap_micros;
                        Err(ModelError::Unavailable(format!(
                            "injected latency spike of {spike}us exceeded per-call timeout of {cap_micros}us on call {call}"
                        )))
                    }
                    _ => {
                        state.injected_latency_micros += spike;
                        drop(state);
                        self.inner.complete(request)
                    }
                }
            }
            None => {
                drop(state);
                self.inner.complete(request)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskKind;
    use crate::prompt::PromptBuilder;
    use crate::sim::profile::{ModelProfile, SimulatedModel};

    fn request(q: &str) -> CompletionRequest {
        let p = PromptBuilder::new()
            .system("sys")
            .question(q)
            .task(TaskKind::GeneratePromql)
            .build(32_000, 1000);
        CompletionRequest::paper_defaults(p)
    }

    fn run_schedule(seed: u64, p: f64, calls: usize) -> (Vec<FaultEvent>, Vec<String>) {
        let m = FaultyModel::new(
            SimulatedModel::new(ModelProfile::gpt4_sim()),
            FaultConfig::with_probability(seed, p),
        );
        let mut outputs = Vec::new();
        for i in 0..calls {
            let out = match m.complete(&request(&format!("how many events of kind {i}?"))) {
                Ok(c) => c.text,
                Err(e) => format!("<err: {e}>"),
            };
            outputs.push(out);
        }
        (m.fault_log(), outputs)
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let (log_a, out_a) = run_schedule(42, 0.5, 40);
        let (log_b, out_b) = run_schedule(42, 0.5, 40);
        assert_eq!(log_a, log_b);
        assert_eq!(out_a, out_b);
        assert!(!log_a.is_empty(), "p=0.5 over 40 calls injected nothing");
    }

    #[test]
    fn different_seeds_differ() {
        let (log_a, _) = run_schedule(1, 0.5, 40);
        let (log_b, _) = run_schedule(2, 0.5, 40);
        assert_ne!(log_a, log_b);
    }

    #[test]
    fn zero_probability_is_transparent() {
        let inner = SimulatedModel::new(ModelProfile::gpt4_sim());
        let m = FaultyModel::new(
            SimulatedModel::new(ModelProfile::gpt4_sim()),
            FaultConfig::disabled(7),
        );
        let r = request("how many paging attempts?");
        assert_eq!(m.complete(&r).unwrap(), inner.complete(&r).unwrap());
        assert!(m.fault_log().is_empty());
        assert_eq!(m.calls(), 1);
    }

    #[test]
    fn unavailable_is_transient_and_logged() {
        let cfg = FaultConfig {
            seed: 3,
            fault_probability: 1.0,
            weights: [0, 0, 0, 1, 0], // only Unavailable
            latency_spike_micros: 0,
        };
        let m = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), cfg);
        let err = m.complete(&request("q")).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(m.fault_log().len(), 1);
        assert_eq!(m.fault_log()[0].kind, FaultKind::Unavailable);
    }

    #[test]
    fn malformed_output_does_not_parse_as_promql() {
        let cfg = FaultConfig {
            seed: 9,
            fault_probability: 1.0,
            weights: [0, 1, 0, 0, 0], // only MalformedPromql
            latency_spike_micros: 0,
        };
        let m = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), cfg);
        let c = m.complete(&request("how many paging attempts?")).unwrap();
        assert!(c.text.ends_with(")("), "corrupted text: {}", c.text);
    }

    #[test]
    fn truncation_shortens_output() {
        let cfg = FaultConfig {
            seed: 11,
            fault_probability: 1.0,
            weights: [1, 0, 0, 0, 0], // only TruncatedCompletion
            latency_spike_micros: 0,
        };
        let inner = SimulatedModel::new(ModelProfile::gpt4_sim());
        let m = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), cfg);
        let r = request("how many paging attempts?");
        let full = inner.complete(&r).unwrap().text;
        let cut = m.complete(&r).unwrap().text;
        assert!(cut.len() < full.len());
        assert!(full.starts_with(&cut));
    }

    #[test]
    fn latency_spikes_accumulate_without_sleeping() {
        let cfg = FaultConfig {
            seed: 13,
            fault_probability: 1.0,
            weights: [0, 0, 0, 0, 1], // only LatencySpike
            latency_spike_micros: 1000,
        };
        let m = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), cfg);
        let r = request("how many paging attempts?");
        m.complete(&r).unwrap();
        m.complete(&r).unwrap();
        assert_eq!(m.injected_latency_micros(), 2000);
    }

    #[test]
    fn latency_spike_past_the_timeout_fails_transiently_at_the_cap() {
        let cfg = FaultConfig {
            seed: 13,
            fault_probability: 1.0,
            weights: [0, 0, 0, 0, 1], // only LatencySpike
            latency_spike_micros: 250_000,
        };
        let m = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), cfg);
        // Cap below the spike: the call is abandoned at the cap.
        let r = request("how many paging attempts?").with_timeout_ms(100);
        let err = m.complete(&r).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(m.injected_latency_micros(), 100_000);
        // Cap above the spike: the call rides the spike to completion.
        let r = request("how many paging attempts?").with_timeout_ms(300);
        m.complete(&r).unwrap();
        assert_eq!(m.injected_latency_micros(), 100_000 + 250_000);
        // The schedule saw both calls as latency spikes either way.
        assert_eq!(m.fault_log().len(), 2);
        assert!(m.fault_log().iter().all(|e| e.kind == FaultKind::LatencySpike));
    }

    #[test]
    fn fault_schedule_is_independent_of_outcomes() {
        // The k-th call's fault decision must not depend on what earlier
        // faults did to the RNG: two schedules that diverge in payload
        // (garbage draws extra numbers) still agree on *whether* later
        // calls fault.
        let base = FaultConfig {
            seed: 21,
            fault_probability: 0.4,
            weights: [1, 1, 0, 1, 1], // no garbage: payload draws nothing
            latency_spike_micros: 0,
        };
        let mut with_garbage = base.clone();
        with_garbage.weights = [1, 1, 1, 1, 1];
        let a = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), base);
        let b = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), with_garbage);
        for i in 0..30 {
            let _ = a.complete(&request(&format!("q{i}")));
            let _ = b.complete(&request(&format!("q{i}")));
        }
        let faulted_calls = |log: Vec<FaultEvent>| -> Vec<usize> {
            log.into_iter().map(|e| e.call).collect()
        };
        // Identical probability stream ⇒ the same calls are faulted (the
        // kinds may differ since the weight tables differ).
        assert_eq!(faulted_calls(a.fault_log()), faulted_calls(b.fault_log()));
    }

    #[test]
    fn latency_spikes_are_counted_with_the_latency_label() {
        let registry = dio_obs::Registry::new();
        let cfg = FaultConfig {
            seed: 17,
            fault_probability: 1.0,
            weights: [0, 0, 0, 0, 1], // only LatencySpike
            latency_spike_micros: 500,
        };
        let m = FaultyModel::new(SimulatedModel::new(ModelProfile::gpt4_sim()), cfg)
            .with_registry(registry.clone());
        // Pre-registered at zero before any fault fires.
        let zero = registry.snapshot();
        let has_latency_series = |snap: &dio_obs::Snapshot| {
            snap.family("dio_llm_faults_injected_total")
                .map(|f| {
                    f.series
                        .iter()
                        .any(|s| s.labels.contains(&("kind".into(), "latency".into())))
                })
                .unwrap_or(false)
        };
        assert!(has_latency_series(&zero));
        assert_eq!(zero.total("dio_llm_faults_injected_total"), 0.0);
        for i in 0..3 {
            m.complete(&request(&format!("q{i}"))).unwrap();
        }
        let snap = registry.snapshot();
        assert!(has_latency_series(&snap));
        assert_eq!(snap.total("dio_llm_faults_injected_total"), 3.0);
    }

    #[test]
    fn registry_counts_match_the_fault_log_without_perturbing_it() {
        let registry = dio_obs::Registry::new();
        let m = FaultyModel::new(
            SimulatedModel::new(ModelProfile::gpt4_sim()),
            FaultConfig::with_probability(42, 0.5),
        )
        .with_registry(registry.clone());
        for i in 0..40 {
            let _ = m.complete(&request(&format!("how many events of kind {i}?")));
        }
        // Same seed as `same_seed_same_fault_sequence`: attaching the
        // registry must not change the schedule.
        let (bare_log, _) = run_schedule(42, 0.5, 40);
        assert_eq!(m.fault_log(), bare_log);
        let snap = registry.snapshot();
        assert_eq!(
            snap.total("dio_llm_faults_injected_total"),
            m.fault_log().len() as f64
        );
        // Per-kind series match the log breakdown.
        let fam = snap.family("dio_llm_faults_injected_total").unwrap();
        for kind in FaultKind::ALL {
            let logged = m.fault_log().iter().filter(|e| e.kind == kind).count();
            let counted = fam
                .series
                .iter()
                .find(|s| s.labels.contains(&("kind".into(), kind.slug().into())))
                .map(|s| match &s.value {
                    dio_obs::SeriesValue::Counter(v) => *v as usize,
                    _ => panic!("not a counter"),
                })
                .unwrap_or(0);
            assert_eq!(counted, logged, "kind {kind:?}");
        }
    }
}

//! Batched completion wire format.
//!
//! The model gateway answers K queued prompts with one upstream call.
//! This module defines how K standard prompts are folded into a single
//! batched prompt and how the combined completion is split back into
//! per-item results — the contract between the gateway's accumulator
//! (which composes) and whatever model stack sits upstream (which must
//! understand the batched form).
//!
//! The fold exploits the structure the catalog-driven NL→PromQL
//! framework observes: the shared catalog/exemplar preamble dwarfs the
//! per-question suffix. A standard prompt renders six sections in a
//! fixed order (SYSTEM, CONTEXT, FUNCTIONS, EXAMPLES, QUESTION, TASK);
//! sections that are byte-identical across every item of a batch are
//! emitted once under `### BATCH-SHARED`, and each item carries only
//! the sections that differ. [`BatchExpander`] reverses the fold for
//! models that only understand single prompts (the simulated models):
//! because sections always recombine in canonical order, each
//! reconstructed prompt is *byte-identical* to the original, so a
//! batched call produces exactly the completions the unbatched calls
//! would have — answer parity by construction.
//!
//! Fault-domain contract: an injected fault (see [`crate::FaultyModel`])
//! lands on the *combined* call — one fault, one batch attempt. A
//! whole-call error (`Unavailable`) fails every item transiently; a
//! corrupted completion fails only the items whose answer blocks it
//! destroyed (truncation cuts the tail items; the survivors still
//! parse). A malformed-PromQL corruption flows *through* the split into
//! each item's own sandbox-repair loop rather than failing the batch.

use crate::cost::TokenUsage;
use crate::model::{Completion, CompletionRequest, FoundationModel, ModelError, TaskKind};
use crate::prompt::{markers, Prompt};
use crate::tokens::count_tokens;

/// Markers of the batched wire format. Chosen to never collide with
/// the standard prompt markers and to survive the fault injector's
/// text corruptions (no parentheses).
pub mod batch_markers {
    /// Batch header line: `### BATCH n=<K>`.
    pub const BATCH: &str = "### BATCH n=";
    /// Shared-prefix section header.
    pub const SHARED: &str = "### BATCH-SHARED";
    /// Per-item header line: `### BATCH-ITEM <k> max_tokens=<m>`.
    pub const ITEM: &str = "### BATCH-ITEM ";
    /// Per-item answer block: `<<BATCH-ANSWER <k>>>`.
    pub const ANSWER: &str = "<<BATCH-ANSWER ";
    /// Per-item error line: `<<BATCH-ERROR <k>>> <class>: <msg>`.
    pub const ERROR: &str = "<<BATCH-ERROR ";
}

/// The six canonical prompt sections, in render order.
const SECTION_MARKERS: [&str; 6] = [
    markers::SYSTEM,
    markers::CONTEXT,
    markers::FUNCTIONS,
    markers::EXAMPLES,
    markers::QUESTION,
    markers::TASK,
];

/// Token accounting of one composed batch: what the shared prefix
/// costs versus each item's private suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchLayout {
    /// Tokens of the sections shared by (and sent once for) all items.
    pub prefix_tokens: usize,
    /// Tokens of each item's unshared sections.
    pub suffix_tokens: Vec<usize>,
}

impl BatchLayout {
    /// Number of items in the batch.
    pub fn items(&self) -> usize {
        self.suffix_tokens.len()
    }

    /// Attribute a combined prompt-token bill across the items: each
    /// item pays its own suffix plus an equal share of the prefix and
    /// framing overhead. The shares sum to exactly
    /// `combined_prompt_tokens` (the remainder lands on the first
    /// items) so per-item accounting reconciles with the real bill.
    pub fn attribute(&self, combined_prompt_tokens: usize) -> Vec<usize> {
        let n = self.suffix_tokens.len().max(1);
        let suffix_sum: usize = self.suffix_tokens.iter().sum();
        let overhead = combined_prompt_tokens.saturating_sub(suffix_sum);
        let share = overhead / n;
        let mut remainder = overhead % n;
        self.suffix_tokens
            .iter()
            .map(|&s| {
                let extra = if remainder > 0 {
                    remainder -= 1;
                    1
                } else {
                    0
                };
                s + share + extra
            })
            .collect()
    }
}

/// Split a standard prompt into its six canonical sections. Each slice
/// starts at its `###` marker and runs to the next one, so the
/// concatenation of all six is the original text. Returns `None` when
/// the text is not a standard prompt (sections missing or reordered).
fn split_sections(text: &str) -> Option<[&str; 6]> {
    let mut starts = [0usize; 6];
    let mut from = 0usize;
    for (i, marker) in SECTION_MARKERS.iter().enumerate() {
        let line = format!("{marker}\n");
        let pos = text[from..].find(&line)? + from;
        // Markers must sit at the start of a line.
        if pos != 0 && text.as_bytes()[pos - 1] != b'\n' {
            return None;
        }
        if i == 0 && pos != 0 {
            return None;
        }
        starts[i] = pos;
        from = pos + line.len();
    }
    Some([
        &text[starts[0]..starts[1]],
        &text[starts[1]..starts[2]],
        &text[starts[2]..starts[3]],
        &text[starts[3]..starts[4]],
        &text[starts[4]..starts[5]],
        &text[starts[5]..],
    ])
}

/// Whether a prompt text is in the batched wire format.
pub fn is_batched(text: &str) -> bool {
    text.starts_with(batch_markers::BATCH)
}

/// Fold `requests` into one batched [`CompletionRequest`] plus the
/// token layout for cost attribution.
///
/// Sections byte-identical across *all* items are shared; everything
/// else rides in the per-item blocks. The combined request carries the
/// tightest per-item timeout (the batch must respect the most
/// impatient member) and budgets completion room for every item.
///
/// Fails with [`ModelError::Unsupported`] when `requests` is empty or
/// an item is not a standard six-section prompt — the caller should
/// fall back to sending such items alone.
pub fn compose_batch(
    requests: &[CompletionRequest],
) -> Result<(CompletionRequest, BatchLayout), ModelError> {
    if requests.is_empty() {
        return Err(ModelError::Unsupported("empty batch".into()));
    }
    let sections: Vec<[&str; 6]> = requests
        .iter()
        .map(|r| {
            split_sections(&r.prompt.text)
                .ok_or_else(|| ModelError::Unsupported("non-standard prompt in batch".into()))
        })
        .collect::<Result<_, _>>()?;
    let shared: [bool; 6] = std::array::from_fn(|i| {
        let first = sections[0][i];
        sections.iter().all(|s| s[i] == first)
    });

    let mut shared_text = String::new();
    for (i, &is_shared) in shared.iter().enumerate() {
        if is_shared {
            shared_text.push_str(sections[0][i]);
        }
    }
    let mut text = format!("{}{}\n", batch_markers::BATCH, requests.len());
    text.push_str(batch_markers::SHARED);
    text.push('\n');
    text.push_str(&shared_text);
    let mut suffix_tokens = Vec::with_capacity(requests.len());
    for (k, (request, secs)) in requests.iter().zip(&sections).enumerate() {
        text.push_str(&format!(
            "{}{} max_tokens={}\n",
            batch_markers::ITEM,
            k,
            request.max_tokens
        ));
        let mut suffix = String::new();
        for (i, &is_shared) in shared.iter().enumerate() {
            if !is_shared {
                suffix.push_str(secs[i]);
            }
        }
        suffix_tokens.push(count_tokens(&suffix));
        text.push_str(&suffix);
    }

    let layout = BatchLayout {
        prefix_tokens: count_tokens(&shared_text),
        suffix_tokens,
    };
    let tokens = count_tokens(&text);
    let max_tokens = requests.iter().map(|r| r.max_tokens).sum::<usize>()
        + 8 * requests.len();
    let timeout_ms = requests.iter().filter_map(|r| r.timeout_ms).min();
    let combined = CompletionRequest {
        prompt: Prompt {
            text,
            tokens,
            context_kept: requests.iter().map(|r| r.prompt.context_kept).sum(),
            context_dropped: requests.iter().map(|r| r.prompt.context_dropped).sum(),
            examples_kept: requests[0].prompt.examples_kept,
            examples_dropped: requests[0].prompt.examples_dropped,
            task: requests[0].prompt.task,
        },
        max_tokens,
        temperature: 0.0,
        timeout_ms,
    };
    Ok((combined, layout))
}

/// One parsed item of a batched prompt: the reconstructed standard
/// prompt text plus its decoding budget.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BatchItem {
    text: String,
    max_tokens: usize,
}

/// Parse a batched prompt back into per-item standard prompts.
fn parse_batch(text: &str) -> Result<Vec<BatchItem>, ModelError> {
    let malformed = |why: &str| ModelError::Unsupported(format!("malformed batch prompt: {why}"));
    let header_end = text.find('\n').ok_or_else(|| malformed("missing header"))?;
    let shared_header = format!("{}\n", batch_markers::SHARED);
    let shared_start = header_end + 1;
    if !text[shared_start..].starts_with(&shared_header) {
        return Err(malformed("missing shared section"));
    }
    let body = &text[shared_start + shared_header.len()..];
    // Shared part runs to the first item header.
    let first_item = body
        .find(batch_markers::ITEM)
        .ok_or_else(|| malformed("no items"))?;
    let shared = &body[..first_item];
    // Shared sections keyed by canonical index.
    let shared_secs = index_sections(shared);
    let mut items = Vec::new();
    let mut rest = &body[first_item..];
    while let Some(stripped) = rest.strip_prefix(batch_markers::ITEM) {
        let line_end = stripped.find('\n').ok_or_else(|| malformed("item header"))?;
        let header = &stripped[..line_end];
        let max_tokens = header
            .split("max_tokens=")
            .nth(1)
            .and_then(|v| v.trim().parse::<usize>().ok())
            .ok_or_else(|| malformed("item max_tokens"))?;
        let after = &stripped[line_end + 1..];
        let (item_body, next) = match after.find(batch_markers::ITEM) {
            Some(pos) => (&after[..pos], &after[pos..]),
            None => (after, ""),
        };
        let item_secs = index_sections(item_body);
        // Merge shared + item sections in canonical order; both sides
        // carry their own `###` headers, so concatenation reproduces
        // the original prompt byte for byte.
        let mut full = String::new();
        for i in 0..SECTION_MARKERS.len() {
            if let Some(s) = item_secs[i].or(shared_secs[i]) {
                full.push_str(s);
            } else {
                return Err(malformed("item missing a section"));
            }
        }
        items.push(BatchItem {
            text: full,
            max_tokens,
        });
        rest = next;
    }
    if items.is_empty() {
        return Err(malformed("no items"));
    }
    Ok(items)
}

/// Locate each canonical section present in `text`, as slices that
/// include their marker line (concatenation order is the caller's job).
fn index_sections(text: &str) -> [Option<&str>; 6] {
    let mut found: Vec<(usize, usize)> = Vec::new(); // (canonical idx, start)
    for (i, marker) in SECTION_MARKERS.iter().enumerate() {
        let line = format!("{marker}\n");
        let mut from = 0;
        while let Some(pos) = text[from..].find(&line).map(|p| p + from) {
            if pos == 0 || text.as_bytes()[pos - 1] == b'\n' {
                found.push((i, pos));
                break;
            }
            from = pos + 1;
        }
    }
    found.sort_by_key(|&(_, start)| start);
    let mut out: [Option<&str>; 6] = [None; 6];
    for (j, &(idx, start)) in found.iter().enumerate() {
        let end = found.get(j + 1).map(|&(_, s)| s).unwrap_or(text.len());
        out[idx] = Some(&text[start..end]);
    }
    out
}

/// Split a combined completion into per-item results.
///
/// Items whose `<<BATCH-ANSWER k>>` block is missing (cut off by a
/// truncated stream, replaced by garbage) fail with a *transient*
/// [`ModelError::Unavailable`] so the caller's recovery policy retries
/// just those items; the surviving blocks still parse. Explicit
/// `<<BATCH-ERROR k>>` lines forward the upstream error class.
pub fn split_batch(completion: &str, n: usize) -> Vec<Result<String, ModelError>> {
    let mut out: Vec<Result<String, ModelError>> = (0..n)
        .map(|k| {
            Err(ModelError::Unavailable(format!(
                "batch answer {k} missing from combined completion"
            )))
        })
        .collect();
    for (k, slot) in out.iter_mut().enumerate() {
        let answer_open = format!("{}{k}>>\n", batch_markers::ANSWER);
        let error_open = format!("{}{k}>> ", batch_markers::ERROR);
        if let Some(pos) = completion.find(&answer_open) {
            let body_start = pos + answer_open.len();
            let body = &completion[body_start..];
            let end = body
                .find(batch_markers::ANSWER)
                .into_iter()
                .chain(body.find(batch_markers::ERROR))
                .min()
                .unwrap_or(body.len());
            // Drop the trailing newline the composer adds after each
            // block, keeping interior newlines intact.
            let text = body[..end].strip_suffix('\n').unwrap_or(&body[..end]);
            *slot = Ok(text.to_string());
        } else if let Some(pos) = completion.find(&error_open) {
            let line = completion[pos + error_open.len()..]
                .lines()
                .next()
                .unwrap_or("");
            *slot = Err(match line.split_once(": ") {
                Some(("transient", msg)) => ModelError::Unavailable(msg.to_string()),
                Some((_, msg)) => ModelError::Unsupported(msg.to_string()),
                None => ModelError::Unavailable(line.to_string()),
            });
        }
    }
    out
}

/// A [`FoundationModel`] adapter that teaches any single-prompt model
/// the batched wire format: batched prompts are unfolded and answered
/// item by item through the inner model, the answers re-joined into
/// `<<BATCH-ANSWER k>>` blocks; ordinary prompts pass straight through.
///
/// In the gateway's stack the expander sits *below* the fault injector
/// (`FaultyModel<BatchExpander<SimulatedModel>>`), so a combined call
/// is one fault-schedule event — exactly the grain a real batched API
/// endpoint would fail at.
#[derive(Debug, Clone)]
pub struct BatchExpander<M> {
    inner: M,
}

impl<M: FoundationModel> BatchExpander<M> {
    /// Wrap `inner`.
    pub fn new(inner: M) -> Self {
        BatchExpander { inner }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: FoundationModel> FoundationModel for BatchExpander<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn pricing(&self) -> crate::cost::Pricing {
        self.inner.pricing()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError> {
        if !is_batched(&request.prompt.text) {
            return self.inner.complete(request);
        }
        // The combined prompt must fit the window like any other; the
        // inner model never sees it whole, so enforce here.
        let window = self.inner.context_window();
        if request.prompt.tokens > window {
            return Err(ModelError::ContextOverflow {
                prompt_tokens: request.prompt.tokens,
                window,
            });
        }
        let items = parse_batch(&request.prompt.text)?;
        let mut text = String::new();
        let mut completion_tokens = 0usize;
        for (k, item) in items.iter().enumerate() {
            let task = item
                .text
                .rsplit(&format!("{}\n", markers::TASK))
                .next()
                .and_then(|t| t.lines().next())
                .and_then(TaskKind::from_directive)
                .unwrap_or(TaskKind::GeneratePromql);
            let sub = CompletionRequest {
                prompt: Prompt {
                    tokens: count_tokens(&item.text),
                    text: item.text.clone(),
                    context_kept: 0,
                    context_dropped: 0,
                    examples_kept: 0,
                    examples_dropped: 0,
                    task,
                },
                max_tokens: item.max_tokens,
                temperature: request.temperature,
                timeout_ms: request.timeout_ms,
            };
            match self.inner.complete(&sub) {
                Ok(c) => {
                    completion_tokens += c.usage.completion_tokens;
                    text.push_str(&format!("{}{k}>>\n{}\n", batch_markers::ANSWER, c.text));
                }
                Err(e) => {
                    let class = if e.is_transient() { "transient" } else { "fatal" };
                    text.push_str(&format!(
                        "{}{k}>> {class}: {e}\n",
                        batch_markers::ERROR
                    ));
                }
            }
        }
        // Billing: the combined prompt is what crossed the wire (the
        // prefix counted once — the whole point); completions are the
        // per-item answers plus framing.
        let usage = TokenUsage {
            prompt_tokens: request.prompt.tokens,
            completion_tokens: completion_tokens + 2 * items.len(),
        };
        Ok(Completion { text, usage })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, FaultyModel};
    use crate::model::TaskKind;
    use crate::prompt::{ContextItem, FewShotExample, PromptBuilder};
    use crate::sim::profile::{ModelProfile, SimulatedModel};

    fn request(question: &str) -> CompletionRequest {
        let p = PromptBuilder::new()
            .system("You are DIO copilot, answering operator data questions.")
            .context((0..4).map(|i| ContextItem {
                name: format!("metric_{i}"),
                text: format!("The number of kind-{i} events observed."),
                relevance: 1.0 - i as f32 * 0.1,
            }))
            .examples((0..2).map(|i| FewShotExample {
                question: format!("how many events of kind {i} happened"),
                metrics: vec![format!("metric_{i}")],
                promql: format!("sum(metric_{i})"),
            }))
            .question(question)
            .task(TaskKind::GeneratePromql)
            .build(32_000, 1000);
        CompletionRequest::paper_defaults(p)
    }

    fn requests(n: usize) -> Vec<CompletionRequest> {
        (0..n)
            .map(|i| request(&format!("how many events of kind {i} happened?")))
            .collect()
    }

    #[test]
    fn sections_round_trip_byte_identical() {
        for r in requests(3) {
            let secs = split_sections(&r.prompt.text).expect("standard prompt");
            assert_eq!(secs.concat(), r.prompt.text);
        }
    }

    #[test]
    fn compose_shares_the_preamble_and_expander_reconstructs_exactly() {
        let reqs = requests(4);
        let (combined, layout) = compose_batch(&reqs).unwrap();
        assert!(is_batched(&combined.prompt.text));
        // The shared preamble (system + functions + examples, plus the
        // identical context here) is real savings: the combined prompt
        // is far smaller than the sum of its parts.
        let solo_sum: usize = reqs.iter().map(|r| r.prompt.tokens).sum();
        assert!(
            combined.prompt.tokens < solo_sum,
            "combined {} vs solo sum {solo_sum}",
            combined.prompt.tokens
        );
        assert!(layout.prefix_tokens > 0);
        assert_eq!(layout.items(), 4);
        // Expansion reproduces each original prompt byte for byte.
        let items = parse_batch(&combined.prompt.text).unwrap();
        for (item, r) in items.iter().zip(&reqs) {
            assert_eq!(item.text, r.prompt.text);
            assert_eq!(item.max_tokens, r.max_tokens);
        }
    }

    #[test]
    fn batched_answers_match_unbatched_answers() {
        let model = SimulatedModel::new(ModelProfile::gpt4_sim());
        let expander = BatchExpander::new(model.clone());
        let reqs = requests(4);
        let (combined, _) = compose_batch(&reqs).unwrap();
        let c = expander.complete(&combined).unwrap();
        let split = split_batch(&c.text, reqs.len());
        for (r, got) in reqs.iter().zip(split) {
            let solo = model.complete(r).unwrap();
            assert_eq!(got.unwrap(), solo.text);
        }
    }

    #[test]
    fn attribution_reconciles_with_the_combined_bill() {
        let reqs = requests(3);
        let (combined, layout) = compose_batch(&reqs).unwrap();
        let shares = layout.attribute(combined.prompt.tokens);
        assert_eq!(shares.len(), 3);
        assert_eq!(shares.iter().sum::<usize>(), combined.prompt.tokens);
        // Every item pays at least its own suffix.
        for (share, suffix) in shares.iter().zip(&layout.suffix_tokens) {
            assert!(share >= suffix);
        }
    }

    #[test]
    fn combined_timeout_is_the_tightest_member() {
        let mut reqs = requests(3);
        reqs[1].timeout_ms = Some(500);
        reqs[2].timeout_ms = Some(200);
        let (combined, _) = compose_batch(&reqs).unwrap();
        assert_eq!(combined.timeout_ms, Some(200));
    }

    #[test]
    fn truncated_combined_completion_fails_only_the_tail_items() {
        let expander = BatchExpander::new(SimulatedModel::new(ModelProfile::gpt4_sim()));
        let reqs = requests(4);
        let (combined, _) = compose_batch(&reqs).unwrap();
        let c = expander.complete(&combined).unwrap();
        // Simulate a dropped stream: keep the first half of the bytes.
        let mut cut = c.text.len() / 2;
        while !c.text.is_char_boundary(cut) {
            cut += 1;
        }
        let split = split_batch(&c.text[..cut], 4);
        assert!(split[0].is_ok(), "head item should survive truncation");
        let last = split[3].as_ref().unwrap_err();
        assert!(last.is_transient(), "lost tail item must retry: {last}");
    }

    #[test]
    fn one_injected_fault_maps_to_one_batch_attempt() {
        // Injector above the expander: the combined call is a single
        // fault-schedule event.
        let cfg = FaultConfig {
            seed: 5,
            fault_probability: 1.0,
            weights: [0, 0, 0, 1, 0], // only Unavailable
            latency_spike_micros: 0,
        };
        let m = FaultyModel::new(
            BatchExpander::new(SimulatedModel::new(ModelProfile::gpt4_sim())),
            cfg,
        );
        let (combined, _) = compose_batch(&requests(4)).unwrap();
        let err = m.complete(&combined).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(m.calls(), 1, "4 items, 1 upstream attempt");
        assert_eq!(m.fault_log().len(), 1);
    }

    #[test]
    fn malformed_fault_flows_into_per_item_answers_not_batch_failure() {
        let cfg = FaultConfig {
            seed: 9,
            fault_probability: 1.0,
            weights: [0, 1, 0, 0, 0], // only MalformedPromql
            latency_spike_micros: 0,
        };
        let m = FaultyModel::new(
            BatchExpander::new(SimulatedModel::new(ModelProfile::gpt4_sim())),
            cfg,
        );
        let (combined, _) = compose_batch(&requests(3)).unwrap();
        let c = m.complete(&combined).unwrap();
        let split = split_batch(&c.text, 3);
        // The batch call itself succeeded and still splits: corruption
        // reaches each item's own repair loop instead of failing the
        // flush wholesale.
        assert!(split.iter().all(|r| r.is_ok()), "{split:?}");
    }

    #[test]
    fn oversized_batch_overflows_the_window() {
        let expander = BatchExpander::new(SimulatedModel::new(ModelProfile::gpt4_sim()));
        let (mut combined, _) = compose_batch(&requests(2)).unwrap();
        combined.prompt.tokens = expander.context_window() + 1;
        assert!(matches!(
            expander.complete(&combined),
            Err(ModelError::ContextOverflow { .. })
        ));
    }

    #[test]
    fn single_item_batch_is_legal() {
        let model = SimulatedModel::new(ModelProfile::gpt4_sim());
        let expander = BatchExpander::new(model.clone());
        let reqs = requests(1);
        let (combined, layout) = compose_batch(&reqs).unwrap();
        assert_eq!(layout.items(), 1);
        let c = expander.complete(&combined).unwrap();
        let split = split_batch(&c.text, 1);
        assert_eq!(split[0].as_ref().unwrap(), &model.complete(&reqs[0]).unwrap().text);
    }

    #[test]
    fn non_batched_prompts_pass_through_untouched() {
        let model = SimulatedModel::new(ModelProfile::gpt4_sim());
        let expander = BatchExpander::new(model.clone());
        let r = request("how many paging attempts happened?");
        assert_eq!(expander.complete(&r).unwrap(), model.complete(&r).unwrap());
    }
}

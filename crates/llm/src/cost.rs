//! Token usage accounting and pricing (paper §4.2.5, "Inference cost").

use serde::{Deserialize, Serialize};

/// Token usage of one completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TokenUsage {
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens generated.
    pub completion_tokens: usize,
}

impl TokenUsage {
    /// Sum of prompt and completion tokens.
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }

    /// Accumulate another usage.
    pub fn add(&mut self, other: TokenUsage) {
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
    }
}

/// Per-1k-token pricing in USD, as of the paper's evaluation period
/// (late 2023 OpenAI list prices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// USD per 1000 prompt tokens.
    pub prompt_per_1k: f64,
    /// USD per 1000 completion tokens.
    pub completion_per_1k: f64,
}

impl Pricing {
    /// GPT-4 (8k) list price: $0.03 / $0.06.
    pub fn gpt4() -> Self {
        Pricing {
            prompt_per_1k: 0.03,
            completion_per_1k: 0.06,
        }
    }

    /// GPT-3.5-turbo list price: $0.0015 / $0.002.
    pub fn gpt35_turbo() -> Self {
        Pricing {
            prompt_per_1k: 0.0015,
            completion_per_1k: 0.002,
        }
    }

    /// text-curie-001 list price: $0.002 / $0.002.
    pub fn text_curie() -> Self {
        Pricing {
            prompt_per_1k: 0.002,
            completion_per_1k: 0.002,
        }
    }

    /// Cost of a usage in USD.
    pub fn cost_usd(&self, usage: TokenUsage) -> f64 {
        usage.prompt_tokens as f64 / 1000.0 * self.prompt_per_1k
            + usage.completion_tokens as f64 / 1000.0 * self.completion_per_1k
    }

    /// Cost of a usage in US cents (how the paper reports it).
    pub fn cost_cents(&self, usage: TokenUsage) -> f64 {
        self.cost_usd(usage) * 100.0
    }
}

/// Accumulates usage and cost over many queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostMeter {
    usage: TokenUsage,
    queries: usize,
    cost_usd: f64,
}

impl CostMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Record one query's usage at a pricing.
    pub fn record(&mut self, usage: TokenUsage, pricing: Pricing) {
        self.usage.add(usage);
        self.queries += 1;
        self.cost_usd += pricing.cost_usd(usage);
    }

    /// Number of queries recorded.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Accumulated usage.
    pub fn usage(&self) -> TokenUsage {
        self.usage
    }

    /// Total cost in USD.
    pub fn total_usd(&self) -> f64 {
        self.cost_usd
    }

    /// Mean cost per query in US cents — the §4.2.5 metric.
    pub fn mean_cents_per_query(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.cost_usd * 100.0 / self.queries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_totals_and_adds() {
        let mut u = TokenUsage {
            prompt_tokens: 100,
            completion_tokens: 20,
        };
        assert_eq!(u.total(), 120);
        u.add(TokenUsage {
            prompt_tokens: 10,
            completion_tokens: 5,
        });
        assert_eq!(u.prompt_tokens, 110);
        assert_eq!(u.completion_tokens, 25);
    }

    #[test]
    fn gpt4_pricing_matches_paper_ballpark() {
        // ~1300 prompt + 60 completion tokens ≈ 4.25 cents (§4.2.5).
        let usage = TokenUsage {
            prompt_tokens: 1300,
            completion_tokens: 60,
        };
        let cents = Pricing::gpt4().cost_cents(usage);
        assert!((3.5..=5.0).contains(&cents), "got {cents}");
    }

    #[test]
    fn gpt35_is_an_order_of_magnitude_cheaper() {
        let usage = TokenUsage {
            prompt_tokens: 1300,
            completion_tokens: 60,
        };
        let g4 = Pricing::gpt4().cost_cents(usage);
        let g35 = Pricing::gpt35_turbo().cost_cents(usage);
        assert!(g4 / g35 > 10.0, "ratio {}", g4 / g35);
    }

    #[test]
    fn meter_accumulates_mean() {
        let mut m = CostMeter::new();
        let usage = TokenUsage {
            prompt_tokens: 1000,
            completion_tokens: 0,
        };
        m.record(usage, Pricing::gpt4());
        m.record(usage, Pricing::gpt4());
        assert_eq!(m.queries(), 2);
        assert!((m.total_usd() - 0.06).abs() < 1e-12);
        assert!((m.mean_cents_per_query() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_mean_is_zero() {
        assert_eq!(CostMeter::new().mean_cents_per_query(), 0.0);
    }
}

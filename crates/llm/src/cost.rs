//! Token usage accounting and pricing (paper §4.2.5, "Inference cost").

use serde::{Deserialize, Serialize};

/// Token usage of one completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TokenUsage {
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens generated.
    pub completion_tokens: usize,
}

impl TokenUsage {
    /// Sum of prompt and completion tokens.
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }

    /// Accumulate another usage.
    pub fn add(&mut self, other: TokenUsage) {
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
    }
}

/// Per-1k-token pricing in USD, as of the paper's evaluation period
/// (late 2023 OpenAI list prices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// USD per 1000 prompt tokens.
    pub prompt_per_1k: f64,
    /// USD per 1000 completion tokens.
    pub completion_per_1k: f64,
}

impl Pricing {
    /// GPT-4 (8k) list price: $0.03 / $0.06.
    pub fn gpt4() -> Self {
        Pricing {
            prompt_per_1k: 0.03,
            completion_per_1k: 0.06,
        }
    }

    /// GPT-3.5-turbo list price: $0.0015 / $0.002.
    pub fn gpt35_turbo() -> Self {
        Pricing {
            prompt_per_1k: 0.0015,
            completion_per_1k: 0.002,
        }
    }

    /// text-curie-001 list price: $0.002 / $0.002.
    pub fn text_curie() -> Self {
        Pricing {
            prompt_per_1k: 0.002,
            completion_per_1k: 0.002,
        }
    }

    /// Cost of a usage in USD.
    pub fn cost_usd(&self, usage: TokenUsage) -> f64 {
        usage.prompt_tokens as f64 / 1000.0 * self.prompt_per_1k
            + usage.completion_tokens as f64 / 1000.0 * self.completion_per_1k
    }

    /// Cost of a usage in US cents (how the paper reports it).
    pub fn cost_cents(&self, usage: TokenUsage) -> f64 {
        self.cost_usd(usage) * 100.0
    }
}

/// Accumulates usage and cost over many queries, keeping the prompt
/// and completion sides of the bill separate.
///
/// The original meter folded everything into one lump `cost_usd`,
/// which made per-batch prefix amortization unmeasurable: a gateway
/// that prices a shared catalog+exemplar prefix once per batch changes
/// only the *prompt* side of the bill, and a lump sum cannot show
/// that. The ledger splits the running total into `prompt_usd` /
/// `completion_usd` (their sum is the old `cost_usd`, kept as a field
/// so serialized meters stay backward-compatible) and tracks the
/// prefix-vs-suffix token split for batched calls.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostLedger {
    usage: TokenUsage,
    queries: usize,
    /// Lump-sum total, maintained as `prompt_usd + completion_usd` for
    /// backward compatibility with consumers of the serialized form.
    cost_usd: f64,
    /// Prompt-side spend in USD.
    #[serde(default)]
    prompt_usd: f64,
    /// Completion-side spend in USD.
    #[serde(default)]
    completion_usd: f64,
    /// Batched model calls recorded via [`CostLedger::record_batch`].
    #[serde(default)]
    batches: usize,
    /// Shared-prefix tokens actually billed (once per batch).
    #[serde(default)]
    prefix_tokens_billed: usize,
    /// Shared-prefix tokens *not* billed thanks to amortization: the
    /// prefix re-sends that unbatched calls would have paid.
    #[serde(default)]
    prefix_tokens_saved: usize,
}

/// The historical name for the per-query cost aggregator. The ledger
/// is a strict superset, so the old name stays as an alias.
pub type CostMeter = CostLedger;

impl CostLedger {
    /// A fresh ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Record one query's usage at a pricing.
    pub fn record(&mut self, usage: TokenUsage, pricing: Pricing) {
        self.usage.add(usage);
        self.queries += 1;
        let prompt = usage.prompt_tokens as f64 / 1000.0 * pricing.prompt_per_1k;
        let completion = usage.completion_tokens as f64 / 1000.0 * pricing.completion_per_1k;
        self.prompt_usd += prompt;
        self.completion_usd += completion;
        self.cost_usd += prompt + completion;
    }

    /// Record one *batched* model call that answered `items` queries
    /// with a shared prefix of `prefix_tokens` billed once. `combined`
    /// is the usage actually billed for the single upstream call.
    ///
    /// Compared with sending each item alone, the batch avoided
    /// re-sending the prefix `items - 1` times; that saving is
    /// tracked in tokens so callers can price it at any tier.
    pub fn record_batch(
        &mut self,
        combined: TokenUsage,
        prefix_tokens: usize,
        items: usize,
        pricing: Pricing,
    ) {
        self.usage.add(combined);
        self.queries += items;
        self.batches += 1;
        self.prefix_tokens_billed += prefix_tokens;
        self.prefix_tokens_saved += prefix_tokens * items.saturating_sub(1);
        let prompt = combined.prompt_tokens as f64 / 1000.0 * pricing.prompt_per_1k;
        let completion = combined.completion_tokens as f64 / 1000.0 * pricing.completion_per_1k;
        self.prompt_usd += prompt;
        self.completion_usd += completion;
        self.cost_usd += prompt + completion;
    }

    /// Fold another ledger into this one (e.g. per-worker ledgers into
    /// a service total).
    pub fn merge(&mut self, other: &CostLedger) {
        self.usage.add(other.usage);
        self.queries += other.queries;
        self.cost_usd += other.cost_usd;
        self.prompt_usd += other.prompt_usd;
        self.completion_usd += other.completion_usd;
        self.batches += other.batches;
        self.prefix_tokens_billed += other.prefix_tokens_billed;
        self.prefix_tokens_saved += other.prefix_tokens_saved;
    }

    /// Number of queries recorded (batched calls count each item).
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Accumulated usage.
    pub fn usage(&self) -> TokenUsage {
        self.usage
    }

    /// Total cost in USD.
    pub fn total_usd(&self) -> f64 {
        self.cost_usd
    }

    /// Prompt-side spend in USD.
    pub fn prompt_usd(&self) -> f64 {
        self.prompt_usd
    }

    /// Completion-side spend in USD.
    pub fn completion_usd(&self) -> f64 {
        self.completion_usd
    }

    /// Batched calls recorded.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Shared-prefix tokens billed once per batch.
    pub fn prefix_tokens_billed(&self) -> usize {
        self.prefix_tokens_billed
    }

    /// Prefix tokens amortization kept off the bill.
    pub fn prefix_tokens_saved(&self) -> usize {
        self.prefix_tokens_saved
    }

    /// The amortization saving priced at `pricing`'s prompt rate, USD.
    pub fn prefix_saved_usd(&self, pricing: Pricing) -> f64 {
        self.prefix_tokens_saved as f64 / 1000.0 * pricing.prompt_per_1k
    }

    /// Mean cost per query in US cents — the §4.2.5 metric.
    pub fn mean_cents_per_query(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.cost_usd * 100.0 / self.queries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_totals_and_adds() {
        let mut u = TokenUsage {
            prompt_tokens: 100,
            completion_tokens: 20,
        };
        assert_eq!(u.total(), 120);
        u.add(TokenUsage {
            prompt_tokens: 10,
            completion_tokens: 5,
        });
        assert_eq!(u.prompt_tokens, 110);
        assert_eq!(u.completion_tokens, 25);
    }

    #[test]
    fn gpt4_pricing_matches_paper_ballpark() {
        // ~1300 prompt + 60 completion tokens ≈ 4.25 cents (§4.2.5).
        let usage = TokenUsage {
            prompt_tokens: 1300,
            completion_tokens: 60,
        };
        let cents = Pricing::gpt4().cost_cents(usage);
        assert!((3.5..=5.0).contains(&cents), "got {cents}");
    }

    #[test]
    fn gpt35_is_an_order_of_magnitude_cheaper() {
        let usage = TokenUsage {
            prompt_tokens: 1300,
            completion_tokens: 60,
        };
        let g4 = Pricing::gpt4().cost_cents(usage);
        let g35 = Pricing::gpt35_turbo().cost_cents(usage);
        assert!(g4 / g35 > 10.0, "ratio {}", g4 / g35);
    }

    #[test]
    fn meter_accumulates_mean() {
        let mut m = CostMeter::new();
        let usage = TokenUsage {
            prompt_tokens: 1000,
            completion_tokens: 0,
        };
        m.record(usage, Pricing::gpt4());
        m.record(usage, Pricing::gpt4());
        assert_eq!(m.queries(), 2);
        assert!((m.total_usd() - 0.06).abs() < 1e-12);
        assert!((m.mean_cents_per_query() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_mean_is_zero() {
        assert_eq!(CostMeter::new().mean_cents_per_query(), 0.0);
    }

    #[test]
    fn ledger_splits_prompt_and_completion_spend() {
        let mut l = CostLedger::new();
        l.record(
            TokenUsage {
                prompt_tokens: 1000,
                completion_tokens: 500,
            },
            Pricing::gpt4(),
        );
        assert!((l.prompt_usd() - 0.03).abs() < 1e-12);
        assert!((l.completion_usd() - 0.03).abs() < 1e-12);
        // The lump sum stays the sum of the two sides.
        assert!((l.total_usd() - (l.prompt_usd() + l.completion_usd())).abs() < 1e-12);
    }

    #[test]
    fn record_batch_amortizes_the_prefix() {
        // Four items sharing a 900-token prefix with 100-token suffixes:
        // billed once as 900 + 4*100 = 1300 prompt tokens.
        let mut batched = CostLedger::new();
        batched.record_batch(
            TokenUsage {
                prompt_tokens: 1300,
                completion_tokens: 80,
            },
            900,
            4,
            Pricing::gpt4(),
        );
        assert_eq!(batched.queries(), 4);
        assert_eq!(batched.batches(), 1);
        assert_eq!(batched.prefix_tokens_billed(), 900);
        assert_eq!(batched.prefix_tokens_saved(), 2700);
        // Unbatched, the same four items each pay the prefix.
        let mut solo = CostLedger::new();
        for _ in 0..4 {
            solo.record(
                TokenUsage {
                    prompt_tokens: 1000,
                    completion_tokens: 20,
                },
                Pricing::gpt4(),
            );
        }
        assert!(batched.total_usd() < solo.total_usd());
        let saving = solo.prompt_usd() - batched.prompt_usd();
        assert!((saving - batched.prefix_saved_usd(Pricing::gpt4())).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_every_field() {
        let usage = TokenUsage {
            prompt_tokens: 100,
            completion_tokens: 10,
        };
        let mut a = CostLedger::new();
        a.record(usage, Pricing::gpt4());
        let mut b = CostLedger::new();
        b.record_batch(usage, 40, 2, Pricing::gpt4());
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.queries(), 3);
        assert_eq!(merged.batches(), 1);
        assert_eq!(merged.prefix_tokens_saved(), 40);
        assert!((merged.total_usd() - (a.total_usd() + b.total_usd())).abs() < 1e-12);
    }

    #[test]
    fn ledger_serialization_keeps_cost_usd() {
        let mut l = CostLedger::new();
        l.record(
            TokenUsage {
                prompt_tokens: 1000,
                completion_tokens: 0,
            },
            Pricing::gpt4(),
        );
        let json = serde_json::to_string(&l).unwrap();
        assert!(json.contains("\"cost_usd\""), "{json}");
        let back: CostLedger = serde_json::from_str(&json).unwrap();
        assert!((back.total_usd() - l.total_usd()).abs() < 1e-12);
    }
}

//! Deterministic simulated foundation models.
//!
//! See the crate docs for the substitution argument. Submodules:
//!
//! * [`parse`] — parse the rendered prompt text back into sections (the
//!   model sees exactly what a real model would see);
//! * [`reason`] — question understanding: task shape + key phrases;
//! * [`select`] — metric selection against the prompt's CONTEXT;
//! * [`codegen`] — PromQL generation from induced few-shot templates,
//!   with naive fallbacks and name fabrication when context is missing;
//! * [`noise`] — deterministic pseudo-random degradation (temperature-0
//!   analogue of model fallibility);
//! * [`profile`] — capability tiers and the [`FoundationModel`]
//!   implementation.
//!
//! [`FoundationModel`]: crate::model::FoundationModel

pub mod codegen;
pub mod noise;
pub mod parse;
pub mod profile;
pub mod reason;
pub mod select;

//! Question understanding: task shape and key phrases.
//!
//! Mirrors the analytics tasks the paper's benchmark spans ("retrieval,
//! averaging, sum and rate … up-to three metrics in a single
//! expression", §4.1) plus the derived-KPI shapes its examples discuss
//! (success rates, failure causes, mean durations).

use dio_embed::tokenize::content_words;

/// The analytic shape a question asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskShape {
    /// Current level of a gauge (or total of a counter): `sum(m)`.
    CurrentValue,
    /// Accumulated event count: `sum(m)`.
    TotalCount,
    /// Mean across instances: `avg(m)`.
    AverageValue,
    /// Events per second over 5 minutes: `sum(rate(m[5m]))`.
    RatePerSecond,
    /// `100 * sum(success) / sum(attempt)`.
    SuccessRatePercent,
    /// `sum(failure_cause) / sum(attempt)`.
    FailureRatio,
    /// `(sum(f1) + sum(f2)) / sum(attempt)` — the benchmark's
    /// three-metric expressions.
    CombinedFailureRatio,
    /// `sum(duration_ms_total) / sum(success)`.
    MeanDurationMs,
}

impl TaskShape {
    /// How many metrics the canonical expression references.
    pub fn metric_count(&self) -> usize {
        match self {
            TaskShape::CurrentValue
            | TaskShape::TotalCount
            | TaskShape::AverageValue
            | TaskShape::RatePerSecond => 1,
            TaskShape::SuccessRatePercent
            | TaskShape::FailureRatio
            | TaskShape::MeanDurationMs => 2,
            TaskShape::CombinedFailureRatio => 3,
        }
    }
}

/// The metric roles a shape needs, matched against name tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleNeed {
    /// Any single metric (retrieval/sum/avg/rate questions).
    Any,
    /// A `*_success` counter.
    Success,
    /// An `*_attempt` counter.
    Attempt,
    /// A `*_failure_<cause>` counter; the cause phrase narrows it.
    FailureCause {
        /// Which cause mention in the question (0 = first, 1 = second).
        index: usize,
    },
    /// A `*_duration_ms_total` counter.
    Duration,
}

/// Analysis of one user question.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionAnalysis {
    /// Detected task shape.
    pub shape: TaskShape,
    /// Content words of the question (lower-cased, stopwords removed).
    pub tokens: Vec<String>,
    /// `tokens` minus the task-cue words consumed by shape detection —
    /// the part of the question that names the *entity*, used for
    /// scoring candidates.
    pub phrase_tokens: Vec<String>,
    /// Failure-cause phrases extracted from "failed due to X" / "failed
    /// with cause 'X'" / "either with X or with Y" constructions, in
    /// mention order.
    pub cause_phrases: Vec<String>,
    /// Roles to select, in canonical expression order.
    pub roles: Vec<RoleNeed>,
}

/// Words that cue the task shape rather than naming the entity. They
/// are excluded from candidate scoring: every admitted candidate for a
/// role would match (or miss) them identically.
pub const TASK_CUE_WORDS: &[&str] = &[
    "success", "successful", "successfully", "succeeded", "rate", "rates", "percentage",
    "percent", "fraction", "ratio", "share", "failed", "failure", "failures", "fail",
    "average", "mean", "duration", "durations", "total", "currently", "current", "moment",
    "per", "second", "many", "much", "how", "what", "number", "count", "value", "long",
];

/// Analyse a question deterministically from keyword cues.
pub fn analyze(question: &str) -> QuestionAnalysis {
    let lower = question.to_lowercase();
    let tokens = content_words(&lower);
    let has = |phrase: &str| lower.contains(phrase);

    let shape = if has("success rate") || (has("percent") && has("success")) {
        TaskShape::SuccessRatePercent
    } else if (has("fraction") || has("ratio") || has("share")) && (has("fail") || has("reject"))
    {
        if has(" or with ") || has(" or due to ") || has("either") {
            TaskShape::CombinedFailureRatio
        } else {
            TaskShape::FailureRatio
        }
    } else if (has("average") || has("mean")) && has("duration") {
        TaskShape::MeanDurationMs
    } else if has("per second") || has("per-second") || lower.contains("rate of") {
        TaskShape::RatePerSecond
    } else if has("average") || has("mean") {
        TaskShape::AverageValue
    } else if has("currently") || has("right now") || has("at the moment") || has("current") {
        TaskShape::CurrentValue
    } else {
        TaskShape::TotalCount
    };

    let roles = match shape {
        TaskShape::CurrentValue
        | TaskShape::TotalCount
        | TaskShape::AverageValue
        | TaskShape::RatePerSecond => vec![RoleNeed::Any],
        TaskShape::SuccessRatePercent => vec![RoleNeed::Success, RoleNeed::Attempt],
        TaskShape::FailureRatio => {
            vec![RoleNeed::FailureCause { index: 0 }, RoleNeed::Attempt]
        }
        TaskShape::CombinedFailureRatio => vec![
            RoleNeed::FailureCause { index: 0 },
            RoleNeed::FailureCause { index: 1 },
            RoleNeed::Attempt,
        ],
        TaskShape::MeanDurationMs => vec![RoleNeed::Duration, RoleNeed::Success],
    };

    let phrase_tokens: Vec<String> = tokens
        .iter()
        .filter(|t| !TASK_CUE_WORDS.contains(&t.as_str()))
        .cloned()
        .collect();

    QuestionAnalysis {
        shape,
        tokens,
        phrase_tokens,
        cause_phrases: extract_cause_phrases(&lower),
        roles,
    }
}

/// Pull the failure-cause phrases out of the question text.
fn extract_cause_phrases(lower: &str) -> Vec<String> {
    let mut out = Vec::new();
    let trim_tail = |s: &str| {
        s.trim()
            .trim_end_matches(['?', '.', '!'])
            .trim_matches('\'')
            .trim()
            .to_string()
    };
    if let Some(idx) = lower.find("either with ") {
        let rest = &lower[idx + "either with ".len()..];
        if let Some(or_idx) = rest.find(" or with ") {
            out.push(trim_tail(&rest[..or_idx]));
            out.push(trim_tail(&rest[or_idx + " or with ".len()..]));
            return out;
        }
    }
    if let Some(idx) = lower.find("due to ") {
        out.push(trim_tail(&lower[idx + "due to ".len()..]));
    } else if let Some(idx) = lower.find("with cause ") {
        out.push(trim_tail(&lower[idx + "with cause ".len()..]));
    } else if let Some(idx) = lower.find("failed with ") {
        out.push(trim_tail(&lower[idx + "failed with ".len()..]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_success_rate() {
        let a = analyze("What is the initial registration procedure success rate at the AMF?");
        assert_eq!(a.shape, TaskShape::SuccessRatePercent);
        assert_eq!(a.roles.len(), 2);
        assert!(a.tokens.contains(&"registration".to_string()));
    }

    #[test]
    fn detects_rate_per_second() {
        let a = analyze("How many authentication requests per second is the AMF handling?");
        assert_eq!(a.shape, TaskShape::RatePerSecond);
        let a = analyze("What is the rate of PDU session establishments?");
        assert_eq!(a.shape, TaskShape::RatePerSecond);
    }

    #[test]
    fn detects_average() {
        let a = analyze("What is the average number of paging attempts per AMF instance?");
        assert_eq!(a.shape, TaskShape::AverageValue);
    }

    #[test]
    fn detects_mean_duration() {
        let a = analyze("What is the mean duration of the N4 session establishment procedure?");
        assert_eq!(a.shape, TaskShape::MeanDurationMs);
        assert_eq!(a.roles, vec![RoleNeed::Duration, RoleNeed::Success]);
    }

    #[test]
    fn detects_failure_ratio() {
        let a = analyze("What fraction of PDU session establishments failed due to congestion?");
        assert_eq!(a.shape, TaskShape::FailureRatio);
        assert_eq!(a.cause_phrases, vec!["congestion"]);
    }

    #[test]
    fn extracts_quoted_cause_phrase() {
        let a = analyze(
            "What share of mobility register update procedures failed with cause 'tracking area not allowed'?",
        );
        assert_eq!(a.cause_phrases, vec!["tracking area not allowed"]);
    }

    #[test]
    fn extracts_two_causes_for_combined() {
        let a = analyze(
            "What share of service requests failed either with congestion or with timer expiry?",
        );
        assert_eq!(a.cause_phrases, vec!["congestion", "timer expiry"]);
    }

    #[test]
    fn no_cause_phrases_for_plain_questions() {
        let a = analyze("How many paging attempts did the AMF handle?");
        assert!(a.cause_phrases.is_empty());
    }

    #[test]
    fn detects_combined_failure_ratio() {
        let a = analyze(
            "What share of service requests failed either with congestion or with timer expiry?",
        );
        assert_eq!(a.shape, TaskShape::CombinedFailureRatio);
        assert_eq!(a.roles.len(), 3);
        assert_eq!(a.shape.metric_count(), 3);
    }

    #[test]
    fn detects_current_value() {
        let a = analyze("How many PDU sessions are currently active at the SMF?");
        assert_eq!(a.shape, TaskShape::CurrentValue);
    }

    #[test]
    fn defaults_to_total_count() {
        let a = analyze("How many NF discovery requests did the NRF receive?");
        assert_eq!(a.shape, TaskShape::TotalCount);
        assert_eq!(a.roles, vec![RoleNeed::Any]);
    }

    #[test]
    fn analysis_is_deterministic() {
        let q = "what is the handover success rate";
        assert_eq!(analyze(q), analyze(q));
    }
}

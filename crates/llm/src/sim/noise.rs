//! Deterministic degradation.
//!
//! The paper sets temperature to 0 "for repeatable answers to the same
//! query" — the model is deterministic but still fallible. We model
//! fallibility as a pure hash of the decision context (question, model
//! name, decision site): the same question through the same model always
//! fails the same way, and aggregate failure frequency across a
//! benchmark approaches the configured rate.

/// A uniform value in `[0, 1)` derived from the given context strings.
pub fn hash01(parts: &[&str]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // separator so ["ab","c"] != ["a","bc"]
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// True with probability `p`, deterministically from context.
pub fn coin(parts: &[&str], p: f64) -> bool {
    hash01(parts) < p
}

/// Pick an index in `[0, n)` deterministically from context.
pub fn pick(parts: &[&str], n: usize) -> usize {
    debug_assert!(n > 0);
    (hash01(parts) * n as f64) as usize % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash01(&["q", "m"]), hash01(&["q", "m"]));
        assert_ne!(hash01(&["q", "m"]), hash01(&["q", "n"]));
    }

    #[test]
    fn separator_prevents_concat_collisions() {
        assert_ne!(hash01(&["ab", "c"]), hash01(&["a", "bc"]));
    }

    #[test]
    fn range_and_distribution() {
        let mut below = 0;
        for i in 0..10_000 {
            let s = format!("ctx{i}");
            let v = hash01(&[&s]);
            assert!((0.0..1.0).contains(&v));
            if v < 0.3 {
                below += 1;
            }
        }
        // 30% ± generous slack.
        assert!((2_500..=3_500).contains(&below), "got {below}");
    }

    #[test]
    fn coin_matches_rate() {
        let hits = (0..10_000)
            .filter(|i| {
                let s = format!("c{i}");
                coin(&[&s], 0.1)
            })
            .count();
        assert!((700..=1_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_in_range() {
        for i in 0..100 {
            let s = format!("p{i}");
            assert!(pick(&[&s], 7) < 7);
        }
    }
}

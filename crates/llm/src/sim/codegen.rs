//! PromQL generation: few-shot templates, naive fallbacks, and name
//! fabrication.
//!
//! With few-shot exemplars in the prompt, the simulated model applies
//! the canonical query template for the detected task shape (degraded
//! at a tier-dependent rate). Without exemplars it emits the naive
//! guesses a general-purpose model produces: bare selectors, missing
//! aggregations, missing `100 *` factors. When a needed metric is not
//! in the prompt's context, the model *fabricates* a name from the
//! question words and the naming conventions it can infer from whatever
//! names it did see — reproducing the paper's §4.2.3 DIN-SQL example,
//! which fabricated `amfcc lcs ni lr success` instead of the real
//! spelled-out counter.

use crate::sim::noise;
use crate::sim::reason::{QuestionAnalysis, RoleNeed, TaskShape};
use crate::sim::select::Selection;
use dio_embed::tokenize::words;

/// Tier-dependent code-generation behaviour.
#[derive(Debug, Clone)]
pub struct CodegenConfig {
    /// Probability of applying the correct template when exemplars
    /// cover the shape.
    pub template_strength: f64,
    /// Probability of guessing a correct template with *no* exemplars.
    pub naive_strength: f64,
    /// Model name for deterministic noise.
    pub model_name: String,
}

/// Generate a PromQL expression for the analysed question.
///
/// `selections` come from [`crate::sim::select::select_metrics`];
/// `covered_shapes` says which task shapes the prompt's exemplars
/// demonstrate; `schema_names` are the context names available for
/// convention inference during fabrication.
pub fn generate_promql(
    analysis: &QuestionAnalysis,
    selections: &[Selection],
    examples_present: bool,
    shape_covered: bool,
    schema_names: &[String],
    cfg: &CodegenConfig,
    question: &str,
) -> String {
    // Resolve one metric name per role, fabricating when selection
    // found nothing plausible in context. Fabrication for the
    // attempt/success/duration roles of a failure question drops the
    // cause words: the model reconstructs the procedure's base counter
    // by convention from whatever sibling it did see.
    let cause_tokens: Vec<String> = analysis
        .cause_phrases
        .iter()
        .flat_map(|p| dio_embed::tokenize::content_words(p))
        .collect();
    let cause_token_sets: Vec<Vec<String>> = analysis
        .cause_phrases
        .iter()
        .map(|p| dio_embed::tokenize::content_words(p))
        .collect();
    let names: Vec<String> = selections
        .iter()
        .map(|sel| match &sel.name {
            Some(n) => n.clone(),
            None => match sel.role {
                RoleNeed::FailureCause { index } => {
                    // The cause words become the suffix; words of any
                    // *other* mentioned cause are dropped entirely.
                    let own: &[String] = cause_token_sets
                        .get(index)
                        .map(|v| v.as_slice())
                        .unwrap_or(&[]);
                    let tokens: Vec<String> = analysis
                        .tokens
                        .iter()
                        .filter(|t| own.contains(t) || !cause_tokens.contains(t))
                        .cloned()
                        .collect();
                    fabricate_with_cause(&tokens, &sel.role, Some(own), schema_names)
                }
                RoleNeed::Any => fabricate_name(&analysis.tokens, &sel.role, schema_names),
                _ => {
                    let tokens: Vec<String> = analysis
                        .tokens
                        .iter()
                        .filter(|t| !cause_tokens.contains(t))
                        .cloned()
                        .collect();
                    fabricate_name(&tokens, &sel.role, schema_names)
                }
            },
        })
        .collect();

    if examples_present {
        let strength = if shape_covered {
            cfg.template_strength
        } else {
            // Generalising to an undemonstrated shape is harder.
            cfg.template_strength * 0.85
        };
        if noise::coin(&[question, &cfg.model_name, "template"], strength) {
            canonical_template(analysis.shape, &names)
        } else {
            degraded_template(analysis.shape, &names, question, &cfg.model_name)
        }
    } else if noise::coin(&[question, &cfg.model_name, "naive"], cfg.naive_strength) {
        canonical_template(analysis.shape, &names)
    } else {
        naive_template(analysis.shape, &names)
    }
}

/// The canonical expression per shape — what the few-shot exemplars
/// demonstrate and what the benchmark references use.
pub fn canonical_template(shape: TaskShape, names: &[String]) -> String {
    let n = |i: usize| names.get(i).cloned().unwrap_or_else(|| "unknown_metric".into());
    match shape {
        TaskShape::CurrentValue | TaskShape::TotalCount => format!("sum({})", n(0)),
        TaskShape::AverageValue => format!("avg({})", n(0)),
        TaskShape::RatePerSecond => format!("sum(rate({}[5m]))", n(0)),
        TaskShape::SuccessRatePercent => format!("100 * sum({}) / sum({})", n(0), n(1)),
        TaskShape::FailureRatio => format!("sum({}) / sum({})", n(0), n(1)),
        TaskShape::CombinedFailureRatio => {
            format!("(sum({}) + sum({})) / sum({})", n(0), n(1), n(2))
        }
        TaskShape::MeanDurationMs => format!("sum({}) / sum({})", n(0), n(1)),
    }
}

/// A deterministic wrong-but-plausible variant (template noise).
fn degraded_template(shape: TaskShape, names: &[String], question: &str, model: &str) -> String {
    let n = |i: usize| names.get(i).cloned().unwrap_or_else(|| "unknown_metric".into());
    let variant = noise::pick(&[question, model, "degrade"], 3);
    match shape {
        TaskShape::CurrentValue | TaskShape::TotalCount => match variant {
            0 => format!("avg({})", n(0)),
            1 => n(0),
            _ => format!("count({})", n(0)),
        },
        TaskShape::AverageValue => match variant {
            0 => format!("sum({})", n(0)),
            1 => n(0),
            _ => format!("max({})", n(0)),
        },
        TaskShape::RatePerSecond => match variant {
            0 => format!("sum(rate({}[1m]))", n(0)),
            1 => format!("rate({}[5m])", n(0)),
            _ => format!("sum(increase({}[5m]))", n(0)),
        },
        TaskShape::SuccessRatePercent => match variant {
            0 => format!("sum({}) / sum({})", n(0), n(1)),
            1 => format!("100 * sum({}) / sum({})", n(1), n(0)),
            _ => format!("100 * avg({}) / sum({})", n(0), n(1)),
        },
        TaskShape::FailureRatio => match variant {
            0 => format!("100 * sum({}) / sum({})", n(0), n(1)),
            1 => format!("{} / {}", n(0), n(1)),
            _ => format!("sum({}) / sum({})", n(1), n(0)),
        },
        TaskShape::CombinedFailureRatio => match variant {
            0 => format!("sum({}) / sum({})", n(0), n(2)),
            1 => format!("(sum({}) + sum({})) / sum({})", n(0), n(1), n(0)),
            _ => format!("(avg({}) + avg({})) / avg({})", n(0), n(1), n(2)),
        },
        TaskShape::MeanDurationMs => match variant {
            0 => format!("avg({})", n(0)),
            1 => format!("sum({}) / sum({})", n(1), n(0)),
            _ => format!("{} / {}", n(0), n(1)),
        },
    }
}

/// What a capable general model produces with *no* exemplars: missing
/// aggregation wrappers and missing unit factors.
fn naive_template(shape: TaskShape, names: &[String]) -> String {
    let n = |i: usize| names.get(i).cloned().unwrap_or_else(|| "unknown_metric".into());
    match shape {
        TaskShape::CurrentValue | TaskShape::TotalCount => n(0),
        TaskShape::AverageValue => n(0),
        TaskShape::RatePerSecond => format!("rate({}[5m])", n(0)),
        TaskShape::SuccessRatePercent => format!("sum({}) / sum({})", n(0), n(1)),
        TaskShape::FailureRatio | TaskShape::MeanDurationMs => format!("{} / {}", n(0), n(1)),
        TaskShape::CombinedFailureRatio => format!("({} + {}) / {}", n(0), n(1), n(2)),
    }
}

/// Words that describe the task or the counter role rather than the
/// procedure, excluded from fabricated names.
const ROLE_WORDS: &[&str] = &[
    "attempt", "attempts", "attempted", "success", "successful", "successfully", "succeeded",
    "rate", "percentage", "percent", "fraction", "ratio", "share", "failed", "failure",
    "failures", "fail", "duration", "mean", "average", "total", "number", "count", "many",
    "second", "currently", "current", "moment", "handle", "handled", "handling", "receive",
    "received", "sent", "send", "observe", "observed", "per", "how", "what", "did", "procedure",
    "procedures", "right", "now", "due", "cause", "either", "times", "try", "tries", "tried",
    "each", "record", "recorded", "frequency", "volume",
    "forward", "forwarded", "transmitted", "completed", "long", "much", "interface", "reference", "point",
];

/// Interface segments that may follow the NF+service prefix in names.
const IFACE_SEGS: &[&str] = &["n1", "n2", "n3", "n4", "n6", "n7", "n9", "n11", "nwu"];

/// The most common first segment among schema names belonging to the
/// NF the question mentions.
fn nf_prefix_fallback(tokens: &[String], schema_names: &[String]) -> Option<String> {
    let nf = ["amf", "smf", "nrf", "nssf", "n3iwf", "upf"]
        .into_iter()
        .find(|p| tokens.iter().any(|t| t == p))?;
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for name in schema_names {
        let first = name.split('_').next().unwrap_or("");
        if first.starts_with(nf) && first.len() > nf.len() {
            *counts.entry(first).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p.len()), p.to_string()))
        .map(|(p, _)| p.to_string())
}

/// NF / interface tokens carried by the inferred prefix, not the phrase.
const PREFIX_WORDS: &[&str] = &[
    "amf", "smf", "nrf", "nssf", "n3iwf", "upf", "instance", "instances", "pfcp", "gtp", "u",
];

/// Fabricate a metric name from question words plus naming conventions
/// inferred from the visible schema names (the model's "pretraining
/// knowledge" of vendor conventions).
pub fn fabricate_name(tokens: &[String], role: &RoleNeed, schema_names: &[String]) -> String {
    fabricate_with_cause(tokens, role, None, schema_names)
}

/// [`fabricate_name`] with an explicit cause phrase: the cause words
/// become the `_failure_<cause>` suffix instead of polluting the
/// procedure segment.
pub fn fabricate_with_cause(
    tokens: &[String],
    role: &RoleNeed,
    cause_tokens: Option<&[String]>,
    schema_names: &[String],
) -> String {
    // 1. The procedure phrase: question tokens minus role/task/NF words
    //    (and minus cause words, which belong in the suffix).
    let phrase: Vec<String> = tokens
        .iter()
        .filter(|t| {
            !ROLE_WORDS.contains(&t.as_str())
                && !PREFIX_WORDS.contains(&t.as_str())
                && cause_tokens.map_or(true, |c| !c.contains(t))
        })
        .cloned()
        .collect();

    // 2. Suffix from the role.
    let mut suffix = match role {
        RoleNeed::Any => String::new(),
        RoleNeed::Attempt => "_attempt".to_string(),
        RoleNeed::Success => "_success".to_string(),
        RoleNeed::FailureCause { .. } => match cause_tokens {
            Some(c) if !c.is_empty() => format!("_failure_{}", c.join("_")),
            _ => "_failure".to_string(),
        },
        RoleNeed::Duration => "_duration_ms_total".to_string(),
    };
    // Naming-convention suffix inference for Any-role questions: the
    // model knows vendor conventions well enough to append the right
    // outcome segment (this is exactly how the paper's DIN-SQL example
    // fabricated `…_success`).
    if matches!(role, RoleNeed::Any) {
        let has = |t: &str| tokens.iter().any(|x| x == t);
        if has("sent") || has("send") || has("transmitted") {
            suffix = "_sent".to_string();
        } else if has("received") || has("receive") {
            suffix = "_received".to_string();
        } else if has("currently") || has("current") || has("moment") {
            suffix = "_current".to_string();
        } else if has("procedure")
            || has("procedures")
            || has("attempts")
            || has("attempt")
            || has("times")
            || has("try")
            || has("tries")
            || has("rate")
            || has("frequency")
        {
            suffix = "_attempt".to_string();
        }
    }

    // 3. Prefix inference: find the schema name sharing the most phrase
    //    tokens and reuse its leading segments (service prefix +
    //    interface) up to the first shared token.
    let mut best: Option<(usize, &String)> = None;
    for name in schema_names {
        let name_toks = words(name);
        let overlap = phrase.iter().filter(|p| name_toks.contains(p)).count();
        if overlap > 0 {
            match best {
                Some((b, _)) if b >= overlap => {}
                _ => best = Some((overlap, name)),
            }
        }
    }
    let prefix = match best {
        Some((_, name)) => {
            let segs: Vec<&str> = name.split('_').collect();
            let first_match = segs
                .iter()
                .position(|s| phrase.iter().any(|p| p == s))
                .unwrap_or(0);
            // A vendor prefix is at most the NF+service segment plus an
            // interface tag; anything further belongs to a *different*
            // procedure's slug and must not leak into the fabrication.
            let mut take = first_match.min(1);
            if first_match >= 1 && segs.len() >= 2 && IFACE_SEGS.contains(&segs[1]) {
                take = 2;
            }
            segs[..take].join("_")
        }
        None => {
            // No overlapping sibling: if the question names an NF, fall
            // back to its most common schema prefix (first segment).
            nf_prefix_fallback(tokens, schema_names).unwrap_or_default()
        }
    };

    let body = phrase.join("_");
    match (prefix.is_empty(), body.is_empty()) {
        (true, true) => format!("unknown{suffix}"),
        (true, false) => format!("{body}{suffix}"),
        (false, true) => format!("{prefix}{suffix}"),
        (false, false) => format!("{prefix}_{body}{suffix}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::reason::analyze;
    use crate::sim::select::Selection;

    fn sel(role: RoleNeed, name: Option<&str>) -> Selection {
        Selection {
            role,
            name: name.map(|s| s.to_string()),
            confidence: 0.8,
        }
    }

    fn cfg(t: f64, n: f64) -> CodegenConfig {
        CodegenConfig {
            template_strength: t,
            naive_strength: n,
            model_name: "gpt-4-sim".into(),
        }
    }

    #[test]
    fn canonical_templates_per_shape() {
        let names = vec!["s".to_string(), "a".to_string(), "b".to_string()];
        assert_eq!(canonical_template(TaskShape::TotalCount, &names), "sum(s)");
        assert_eq!(canonical_template(TaskShape::AverageValue, &names), "avg(s)");
        assert_eq!(
            canonical_template(TaskShape::RatePerSecond, &names),
            "sum(rate(s[5m]))"
        );
        assert_eq!(
            canonical_template(TaskShape::SuccessRatePercent, &names),
            "100 * sum(s) / sum(a)"
        );
        assert_eq!(
            canonical_template(TaskShape::CombinedFailureRatio, &names),
            "(sum(s) + sum(a)) / sum(b)"
        );
    }

    #[test]
    fn strong_model_with_examples_uses_canonical() {
        let q = "What is the initial registration success rate?";
        let a = analyze(q);
        let sels = vec![
            sel(RoleNeed::Success, Some("reg_success")),
            sel(RoleNeed::Attempt, Some("reg_attempt")),
        ];
        let out = generate_promql(&a, &sels, true, true, &[], &cfg(1.0, 0.3), q);
        assert_eq!(out, "100 * sum(reg_success) / sum(reg_attempt)");
    }

    #[test]
    fn zero_strength_degrades() {
        let q = "What is the initial registration success rate?";
        let a = analyze(q);
        let sels = vec![
            sel(RoleNeed::Success, Some("reg_success")),
            sel(RoleNeed::Attempt, Some("reg_attempt")),
        ];
        let out = generate_promql(&a, &sels, true, true, &[], &cfg(0.0, 0.3), q);
        assert_ne!(out, "100 * sum(reg_success) / sum(reg_attempt)");
        // Still a plausible expression referencing the metrics.
        assert!(out.contains("reg_success") || out.contains("reg_attempt"));
    }

    #[test]
    fn no_examples_naive_misses_aggregation() {
        let q = "How many paging attempts did the AMF handle?";
        let a = analyze(q);
        let sels = vec![sel(RoleNeed::Any, Some("amfcc_n2_paging_attempt"))];
        let out = generate_promql(&a, &sels, false, false, &[], &cfg(0.9, 0.0), q);
        assert_eq!(out, "amfcc_n2_paging_attempt");
    }

    #[test]
    fn fabricates_paperlike_name_from_question_words() {
        // The §4.2.3 example: DIN-SQL fabricated the abbreviated form.
        let q = "What is the LCS NI-LR procedure success rate?";
        let a = analyze(q);
        let name = fabricate_name(&a.tokens, &RoleNeed::Success, &[]);
        assert_eq!(name, "lcs_ni_lr_success");
    }

    #[test]
    fn fabrication_infers_prefix_from_sibling_names() {
        let q = "How many initial registration attempts did the AMF handle?";
        let a = analyze(q);
        let schema = vec![
            "amfcc_n1_registration_request_sent".to_string(),
            "upfup_n3_ul_bytes".to_string(),
        ];
        let name = fabricate_name(&a.tokens, &RoleNeed::Attempt, &schema);
        assert_eq!(name, "amfcc_n1_initial_registration_attempt");
    }

    #[test]
    fn fabrication_without_schema_glues_tokens() {
        let q = "How many NF discovery requests did the NRF receive?";
        let a = analyze(q);
        let name = fabricate_name(&a.tokens, &RoleNeed::Any, &[]);
        assert_eq!(name, "nf_discovery_requests_received");
    }

    #[test]
    fn generation_is_deterministic() {
        let q = "What fraction of PDU session establishments failed due to congestion?";
        let a = analyze(q);
        let sels = vec![
            sel(RoleNeed::FailureCause { index: 0 }, Some("f")),
            sel(RoleNeed::Attempt, Some("at")),
        ];
        let c = cfg(0.8, 0.3);
        let o1 = generate_promql(&a, &sels, true, true, &[], &c, q);
        let o2 = generate_promql(&a, &sels, true, true, &[], &c, q);
        assert_eq!(o1, o2);
    }

    #[test]
    fn generated_canonical_parses_as_promql_shape() {
        // Smoke-check the string forms look like PromQL (full parsing is
        // integration-tested against dio-promql).
        let names = vec!["m1".to_string(), "m2".to_string(), "m3".to_string()];
        for shape in [
            TaskShape::CurrentValue,
            TaskShape::TotalCount,
            TaskShape::AverageValue,
            TaskShape::RatePerSecond,
            TaskShape::SuccessRatePercent,
            TaskShape::FailureRatio,
            TaskShape::CombinedFailureRatio,
            TaskShape::MeanDurationMs,
        ] {
            let s = canonical_template(shape, &names);
            assert!(s.contains("m1"), "{s}");
            assert_eq!(s.matches('(').count(), s.matches(')').count(), "{s}");
        }
    }
}

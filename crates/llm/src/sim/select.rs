//! Metric selection against the prompt's CONTEXT.
//!
//! This is the simulated counterpart of the paper's §3.2 second stage:
//! "the foundation model is prompted to identify the metrics in the
//! context that are most relevant to answering the user question",
//! leveraging "named entity recognition and natural language
//! understanding". The simulation scores each context item by weighted
//! token overlap with the question; capability tiers differ in
//! paraphrase bridging (lexicon expansion weight) and in how reliably
//! they resolve near-ties between confusable metrics.

use crate::sim::noise;
use crate::sim::parse::ParsedItem;
use crate::sim::reason::{QuestionAnalysis, RoleNeed};
use dio_embed::tokenize::{content_words, words};
use dio_embed::Lexicon;
use std::collections::{HashMap, HashSet};

/// Tier-dependent selection behaviour.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Weight of lexicon-expanded (synonym) tokens in `[0, 1]`.
    pub paraphrase_strength: f64,
    /// Probability of resolving a near-tie to the best candidate.
    pub selection_strength: f64,
    /// Model name, part of the deterministic noise context.
    pub model_name: String,
}

/// One role's selection outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The role this fills.
    pub role: RoleNeed,
    /// Chosen metric name; `None` when nothing in context was plausible.
    pub name: Option<String>,
    /// Coverage score of the choice in `[0, 1]`.
    pub confidence: f64,
}

/// Below this question-coverage the model does not trust any candidate
/// (and the caller falls back to fabrication).
pub const CONFIDENCE_FLOOR: f64 = 0.34;

/// Confidence floor for items that carry a bare name with no
/// description (the baselines' schema-only context).
pub const NAME_ONLY_FLOOR: f64 = 0.52;

/// Near-tie margin: a runner-up within this factor of the best is
/// "confusable".
const TIE_MARGIN: f64 = 0.90;

/// A question token with its lexicon expansions.
#[derive(Debug, Clone, PartialEq)]
pub struct QToken {
    /// The original content word.
    pub text: String,
    /// Synonyms/expansions from the telecom lexicon.
    pub expansions: Vec<String>,
}

/// Select one metric per role.
pub fn select_metrics(
    analysis: &QuestionAnalysis,
    items: &[ParsedItem],
    cfg: &SelectionConfig,
    question: &str,
) -> Vec<Selection> {
    let df = doc_frequencies(items);
    let n = items.len().max(1);

    // Tokens of each mentioned failure cause, in mention order.
    let cause_token_sets: Vec<Vec<String>> = analysis
        .cause_phrases
        .iter()
        .map(|p| content_words(p))
        .collect();

    // Pre-tokenise items.
    let item_tokens: Vec<HashSet<String>> = items.iter().map(item_token_set).collect();
    let name_token_counts: Vec<usize> = items.iter().map(|i| words(&i.name).len()).collect();

    let mut used: HashSet<usize> = HashSet::new();
    let mut out = Vec::new();
    for (role_idx, role) in analysis.roles.iter().enumerate() {
        // Each role scores against the part of the question that names
        // *its* entity: cause words belong to the failure counters, not
        // to the attempt/success/duration counters of the procedure.
        let role_tokens: Vec<String> = match role {
            RoleNeed::FailureCause { index } => {
                let own: &[String] = cause_token_sets
                    .get(*index)
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                analysis
                    .phrase_tokens
                    .iter()
                    .filter(|t| {
                        let in_own = own.contains(t);
                        let in_other = cause_token_sets
                            .iter()
                            .enumerate()
                            .any(|(j, set)| j != *index && set.contains(t));
                        in_own || !in_other
                    })
                    .cloned()
                    .collect()
            }
            RoleNeed::Any => analysis.phrase_tokens.clone(),
            _ => analysis
                .phrase_tokens
                .iter()
                .filter(|t| !cause_token_sets.iter().any(|set| set.contains(t)))
                .cloned()
                .collect(),
        };
        let weighted_q = expand_tokens(&role_tokens);

        let mut scored: Vec<(usize, f64)> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if used.contains(&i) {
                continue;
            }
            if !role_admits(role, &item.name) {
                continue;
            }
            let mut score = coverage_score(
                &weighted_q,
                cfg.paraphrase_strength,
                &item_tokens[i],
                name_token_counts[i],
                &df,
                n,
            );
            if matches!(role, RoleNeed::Any) {
                score *= any_role_bonus(&analysis.tokens, &item.name);
            }
            score *= entity_consistency_penalty(&analysis.tokens, &item.name);
            if score > 0.0 {
                scored.push((i, score));
            }
        }
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });

        // A bare name (no description, as in the baselines' schema-only
        // prompts) justifies less confidence than a documented metric:
        // partial name overlap is a guess, not an identification.
        let floor_for = |i: usize| {
            if items[i].text.is_empty() {
                NAME_ONLY_FLOOR
            } else {
                CONFIDENCE_FLOOR
            }
        };
        let selection = match scored.first() {
            Some(&(best_i, best_s)) if best_s >= floor_for(best_i) => {
                // Near-tie confusion: a weaker model sometimes picks the
                // runner-up when two metrics look alike.
                let mut chosen = (best_i, best_s);
                if let Some(&(second_i, second_s)) = scored.get(1) {
                    if second_s >= best_s * TIE_MARGIN {
                        let role_tag = format!("role{role_idx}");
                        if !noise::coin(
                            &[question, &cfg.model_name, &role_tag, "tie"],
                            cfg.selection_strength,
                        ) {
                            chosen = (second_i, second_s);
                        }
                    }
                }
                used.insert(chosen.0);
                Selection {
                    role: *role,
                    name: Some(items[chosen.0].name.clone()),
                    confidence: chosen.1,
                }
            }
            _ => Selection {
                role: *role,
                name: None,
                confidence: scored.first().map(|s| s.1).unwrap_or(0.0),
            },
        };
        out.push(selection);
    }
    out
}

/// Question tokens paired with their lexicon expansions.
pub fn expand_tokens(tokens: &[String]) -> Vec<QToken> {
    let lex = Lexicon::telecom();
    tokens
        .iter()
        .map(|t| QToken {
            text: t.clone(),
            expansions: lex.expand(t).map(|e| e.to_vec()).unwrap_or_default(),
        })
        .collect()
}

/// Inflection variants of a word: the word itself plus light plural and
/// past-tense strippings ("attempts" → "attempt", "forwarded" →
/// "forward", "handled" → "handle").
fn stems(word: &str) -> Vec<String> {
    let mut out = vec![word.to_string()];
    if word.len() > 3 && word.ends_with('s') && !word.ends_with("ss") && !word.ends_with("us") {
        out.push(word[..word.len() - 1].to_string());
    }
    if word.len() > 4 && word.ends_with("ed") {
        out.push(word[..word.len() - 2].to_string()); // forwarded -> forward
        out.push(word[..word.len() - 1].to_string()); // handled -> handle
    }
    out
}

fn item_token_set(item: &ParsedItem) -> HashSet<String> {
    let mut set: HashSet<String> = HashSet::new();
    for t in words(&item.name).into_iter().chain(content_words(&item.text)) {
        for s in stems(&t) {
            set.insert(s);
        }
    }
    set
}

fn token_matches(set: &HashSet<String>, token: &str) -> bool {
    stems(token).iter().any(|s| set.contains(s))
}

/// Document frequency of tokens across items (names + descriptions).
fn doc_frequencies(items: &[ParsedItem]) -> HashMap<String, usize> {
    let mut df = HashMap::new();
    for item in items {
        for tok in item_token_set(item) {
            *df.entry(tok).or_insert(0) += 1;
        }
    }
    df
}

/// Weighted coverage of the question by the item. Each question token
/// matches directly (full credit), via its stem (full credit), or via a
/// lexicon expansion (credit scaled by paraphrase strength — how well
/// the model bridges jargon). A mild specificity penalty on long metric
/// names makes a plain `_attempt` counter outrank its
/// `_attempt_snssai_embb` slice variant when the question does not
/// mention a slice.
fn coverage_score(
    weighted_q: &[QToken],
    paraphrase_strength: f64,
    item_tokens: &HashSet<String>,
    name_token_count: usize,
    df: &HashMap<String, usize>,
    n_items: usize,
) -> f64 {
    let mut matched = 0.0;
    let mut total = 0.0;
    for q in weighted_q {
        let d = df.get(&q.text).copied().unwrap_or(0) as f64;
        let rarity = if d == 0.0 {
            // Corpus-unknown tokens (deployment names, ticket numbers…)
            // carry little signal; a capable reader skims past them.
            0.3
        } else {
            ((1.0 + n_items as f64) / (1.0 + d)).ln() + 0.2
        };
        total += rarity;
        if token_matches(item_tokens, &q.text) {
            matched += rarity;
        } else if paraphrase_strength > 0.0
            && q.expansions.iter().any(|e| token_matches(item_tokens, e))
        {
            matched += rarity * paraphrase_strength;
        }
    }
    if total <= 0.0 {
        return 0.0;
    }
    let coverage = matched / total;
    let penalty = 1.0 / (1.0 + 0.09 * name_token_count as f64);
    coverage * penalty
}

/// Naming-convention prior for `Any`-role questions: "how many X
/// *procedures*" conventionally reads the `_attempt` counter, "messages
/// *sent*" the `_sent` counter, "*currently*" the `_current` gauge —
/// the disambiguation a human expert applies between a procedure's
/// attempt counter and its retry/duration/message siblings.
fn any_role_bonus(tokens: &[String], name: &str) -> f64 {
    let has = |t: &str| tokens.iter().any(|x| x == t);
    let mut bonus = 1.0;
    if (has("procedures") || has("procedure") || has("times") || has("try") || has("tries")
        || has("attempts") || has("attempt") || has("handling") || has("handle") || has("handled")
        || has("rate") || has("frequency"))
        && name.ends_with("_attempt")
    {
        bonus *= 1.35;
    }
    if (has("sent") || has("send") || has("transmitted")) && name.ends_with("_sent") {
        bonus *= 1.35;
    }
    if (has("received") || has("receive")) && name.ends_with("_received") {
        bonus *= 1.35;
    }
    if (has("currently") || has("current") || has("moment")) && name.ends_with("_current") {
        bonus *= 1.35;
    }
    bonus
}

/// Network-function prefixes recognised in metric names.
const NF_PREFIXES: &[&str] = &["amf", "smf", "nrf", "nssf", "n3iwf", "upf"];

/// Interface tags recognised in names and questions.
const IFACE_TAGS: &[&str] = &["n1", "n2", "n3", "n4", "n6", "n7", "n9", "n11", "nwu"];

/// Named-entity consistency: when the question names a network function
/// ("… at the SMF") or a reference point ("… the N4 session …"), a
/// candidate whose name belongs to a *different* NF or interface is
/// penalised — basic named-entity recognition the paper credits the
/// foundation model with.
fn entity_consistency_penalty(tokens: &[String], name: &str) -> f64 {
    let mut penalty = 1.0;
    // NF check. Longest prefix match wins (`n3iwf` before `nrf`… they
    // do not overlap, but be explicit about matching the name's start).
    let name_nf = NF_PREFIXES
        .iter()
        .filter(|p| name.starts_with(**p))
        .max_by_key(|p| p.len());
    let mentioned_nfs: Vec<&str> = NF_PREFIXES
        .iter()
        .copied()
        .filter(|p| tokens.iter().any(|t| t == p))
        .collect();
    if let Some(nf) = name_nf {
        if !mentioned_nfs.is_empty() && !mentioned_nfs.contains(nf) {
            penalty *= 0.55;
        }
    }
    // Interface check: only penalise when the question names interfaces
    // and the metric names a disjoint set.
    let name_segs: Vec<&str> = name.split('_').collect();
    let name_ifaces: Vec<&str> = IFACE_TAGS
        .iter()
        .copied()
        .filter(|t| name_segs.contains(t))
        .collect();
    let q_ifaces: Vec<&str> = IFACE_TAGS
        .iter()
        .copied()
        .filter(|t| tokens.iter().any(|x| x == t))
        .collect();
    if !q_ifaces.is_empty()
        && !name_ifaces.is_empty()
        && !q_ifaces.iter().any(|q| name_ifaces.contains(q))
    {
        penalty *= 0.6;
    }
    penalty
}

/// Does a metric name plausibly fill the role? (The model infers roles
/// from naming conventions, as a human expert would.)
fn role_admits(role: &RoleNeed, name: &str) -> bool {
    let toks: Vec<String> = words(name);
    let has = |t: &str| toks.iter().any(|x| x == t);
    match role {
        RoleNeed::Any => true,
        RoleNeed::Success => has("success"),
        RoleNeed::Attempt => has("attempt"),
        RoleNeed::FailureCause { .. } => has("failure"),
        RoleNeed::Duration => has("duration"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::reason::analyze;

    fn item(name: &str, text: &str) -> ParsedItem {
        ParsedItem {
            name: name.to_string(),
            text: text.to_string(),
        }
    }

    fn registration_context() -> Vec<ParsedItem> {
        vec![
            item(
                "amfcc_n1_initial_registration_attempt",
                "The number of initial registration procedure attempts handled by AMF.",
            ),
            item(
                "amfcc_n1_initial_registration_success",
                "The number of initial registration procedures completed successfully by AMF.",
            ),
            item(
                "amfcc_n1_initial_registration_attempt_snssai_embb",
                "The number of initial registration procedure attempts at AMF for the eMBB slice.",
            ),
            item(
                "amfcc_n1_mobility_registration_update_attempt",
                "The number of mobility registration update procedure attempts handled by AMF.",
            ),
            item(
                "smfpdu_n11_pdu_session_establishment_attempt",
                "The number of PDU session establishment procedure attempts handled by SMF.",
            ),
        ]
    }

    fn strong_cfg() -> SelectionConfig {
        SelectionConfig {
            paraphrase_strength: 0.9,
            selection_strength: 0.97,
            model_name: "gpt-4-sim".into(),
        }
    }

    #[test]
    fn picks_success_and_attempt_for_rate_question() {
        let q = "What is the initial registration procedure success rate at the AMF?";
        let a = analyze(q);
        let sel = select_metrics(&a, &registration_context(), &strong_cfg(), q);
        assert_eq!(sel.len(), 2);
        assert_eq!(
            sel[0].name.as_deref(),
            Some("amfcc_n1_initial_registration_success")
        );
        assert_eq!(
            sel[1].name.as_deref(),
            Some("amfcc_n1_initial_registration_attempt")
        );
    }

    #[test]
    fn prefers_plain_counter_over_slice_variant() {
        let q = "How many initial registration attempts did the AMF handle?";
        let a = analyze(q);
        let sel = select_metrics(&a, &registration_context(), &strong_cfg(), q);
        assert_eq!(
            sel[0].name.as_deref(),
            Some("amfcc_n1_initial_registration_attempt")
        );
    }

    #[test]
    fn slice_mention_flips_to_slice_variant() {
        let q = "How many initial registration attempts were there on the eMBB slice?";
        let a = analyze(q);
        let sel = select_metrics(&a, &registration_context(), &strong_cfg(), q);
        assert_eq!(
            sel[0].name.as_deref(),
            Some("amfcc_n1_initial_registration_attempt_snssai_embb")
        );
    }

    #[test]
    fn empty_context_selects_nothing() {
        let q = "How many registration attempts were there?";
        let a = analyze(q);
        let sel = select_metrics(&a, &[], &strong_cfg(), q);
        assert_eq!(sel[0].name, None);
        assert_eq!(sel[0].confidence, 0.0);
    }

    #[test]
    fn unrelated_context_is_below_confidence_floor() {
        let q = "How many initial registration attempts did the AMF handle?";
        let a = analyze(q);
        let ctx = vec![item(
            "upfup_n3_ul_bytes",
            "The total number of octets forwarded in the uplink direction on the N3 reference point at UPF.",
        )];
        let sel = select_metrics(&a, &ctx, &strong_cfg(), q);
        assert_eq!(sel[0].name, None);
    }

    #[test]
    fn selection_is_deterministic() {
        let q = "What is the initial registration success rate?";
        let a = analyze(q);
        let s1 = select_metrics(&a, &registration_context(), &strong_cfg(), q);
        let s2 = select_metrics(&a, &registration_context(), &strong_cfg(), q);
        assert_eq!(s1, s2);
    }

    #[test]
    fn weak_model_confuses_near_ties_more_often() {
        // Across many confusable question variants, the weak tier must
        // flip to the runner-up strictly more often than the strong tier.
        let ctx = registration_context();
        let weak = SelectionConfig {
            paraphrase_strength: 0.4,
            selection_strength: 0.55,
            model_name: "weak-sim".into(),
        };
        let mut strong_right = 0;
        let mut weak_right = 0;
        for i in 0..60 {
            // Ambiguous phrasing: "registration attempts" without the
            // "initial" qualifier near-ties with the mobility-update
            // counter, so tie resolution is what separates the tiers.
            let q = format!(
                "How many registration attempts did the AMF handle in region {i}?"
            );
            let a = analyze(&q);
            let s = select_metrics(&a, &ctx, &strong_cfg(), &q);
            let w = select_metrics(&a, &ctx, &weak, &q);
            if s[0].name.as_deref() == Some("amfcc_n1_initial_registration_attempt") {
                strong_right += 1;
            }
            if w[0].name.as_deref() == Some("amfcc_n1_initial_registration_attempt") {
                weak_right += 1;
            }
        }
        assert!(
            strong_right > weak_right,
            "strong {strong_right} vs weak {weak_right}"
        );
    }

    #[test]
    fn paraphrase_strength_bridges_jargon() {
        // "user plane function" spelled out vs the upf prefix.
        let ctx = vec![
            item(
                "upfup_n3_ul_bytes",
                "The total number of octets forwarded in the uplink direction on the N3 reference point at UPF.",
            ),
            item(
                "nrfnfm_nf_heartbeat_attempt",
                "The number of NF heartbeat procedures handled by NRF.",
            ),
        ];
        let q = "How many octets did the user plane function forward upstream on N3?";
        let a = analyze(q);
        let strong = select_metrics(&a, &ctx, &strong_cfg(), q);
        let no_para = SelectionConfig {
            paraphrase_strength: 0.0,
            ..strong_cfg()
        };
        let weak = select_metrics(&a, &ctx, &no_para, q);
        assert_eq!(strong[0].name.as_deref(), Some("upfup_n3_ul_bytes"));
        // Without paraphrase bridging the confidence must be lower.
        assert!(strong[0].confidence >= weak[0].confidence);
    }

    #[test]
    fn roles_not_double_assigned() {
        let q = "What is the initial registration success rate?";
        let a = analyze(q);
        let sel = select_metrics(&a, &registration_context(), &strong_cfg(), q);
        assert_ne!(sel[0].name, sel[1].name);
    }
}

//! Parsing the rendered prompt back into sections.
//!
//! The simulated model receives only the prompt *text* — the same
//! contract a real API model has. This module recovers the structured
//! sections from the markers the [`PromptBuilder`] emits.
//!
//! [`PromptBuilder`]: crate::prompt::PromptBuilder

use crate::model::TaskKind;
use crate::prompt::{markers, FewShotExample};

/// A context entry as seen by the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedItem {
    /// Counter/function name.
    pub name: String,
    /// Description (may be empty when the prompt only lists names).
    pub text: String,
}

/// The structured view of a prompt.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedPrompt {
    /// System instruction.
    pub system: String,
    /// CONTEXT items.
    pub context: Vec<ParsedItem>,
    /// FUNCTIONS items.
    pub functions: Vec<ParsedItem>,
    /// Few-shot examples.
    pub examples: Vec<FewShotExample>,
    /// The user question.
    pub question: String,
    /// Task directive, if recognised.
    pub task: Option<TaskKind>,
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    None,
    System,
    Context,
    Functions,
    Examples,
    Question,
    Task,
}

/// Parse a prompt rendered by the builder. Unknown lines are ignored,
/// so the parser is robust to prompts hand-built by the baselines.
pub fn parse_prompt(text: &str) -> ParsedPrompt {
    let mut out = ParsedPrompt::default();
    let mut section = Section::None;
    let mut pending_example: Option<FewShotExample> = None;

    for line in text.lines() {
        match line.trim_end() {
            l if l == markers::SYSTEM => {
                section = Section::System;
                continue;
            }
            l if l == markers::CONTEXT => {
                section = Section::Context;
                continue;
            }
            l if l == markers::FUNCTIONS => {
                section = Section::Functions;
                continue;
            }
            l if l == markers::EXAMPLES => {
                section = Section::Examples;
                continue;
            }
            l if l == markers::QUESTION => {
                section = Section::Question;
                continue;
            }
            l if l == markers::TASK => {
                section = Section::Task;
                continue;
            }
            _ => {}
        }
        match section {
            Section::None => {}
            Section::System => {
                if !line.trim().is_empty() {
                    if !out.system.is_empty() {
                        out.system.push(' ');
                    }
                    out.system.push_str(line.trim());
                }
            }
            Section::Context | Section::Functions => {
                if let Some(rest) = line.strip_prefix(markers::ITEM) {
                    let (name, text) = match rest.split_once(": ") {
                        Some((n, t)) => (n.trim().to_string(), t.trim().to_string()),
                        None => (rest.trim().to_string(), String::new()),
                    };
                    let item = ParsedItem { name, text };
                    if section == Section::Context {
                        out.context.push(item);
                    } else {
                        out.functions.push(item);
                    }
                }
            }
            Section::Examples => {
                if let Some(q) = line.strip_prefix(markers::EX_Q) {
                    if let Some(ex) = pending_example.take() {
                        out.examples.push(ex);
                    }
                    pending_example = Some(FewShotExample {
                        question: q.trim().to_string(),
                        metrics: Vec::new(),
                        promql: String::new(),
                    });
                } else if let Some(m) = line.strip_prefix(markers::EX_METRICS) {
                    if let Some(ex) = pending_example.as_mut() {
                        ex.metrics = m
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                    }
                } else if let Some(p) = line.strip_prefix(markers::EX_PROMQL) {
                    if let Some(ex) = pending_example.as_mut() {
                        ex.promql = p.trim().to_string();
                    }
                }
            }
            Section::Question => {
                if !line.trim().is_empty() {
                    if !out.question.is_empty() {
                        out.question.push(' ');
                    }
                    out.question.push_str(line.trim());
                }
            }
            Section::Task => {
                if out.task.is_none() && !line.trim().is_empty() {
                    out.task = TaskKind::from_directive(line.trim());
                }
            }
        }
    }
    if let Some(ex) = pending_example.take() {
        out.examples.push(ex);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{ContextItem, PromptBuilder};

    fn build_and_parse() -> ParsedPrompt {
        let p = PromptBuilder::new()
            .system("You are DIO copilot.")
            .context(vec![
                ContextItem {
                    name: "amfcc_reg_attempt".into(),
                    text: "The number of registration attempts.".into(),
                    relevance: 0.9,
                },
                ContextItem {
                    name: "amfcc_reg_success".into(),
                    text: "The number of successful registrations.".into(),
                    relevance: 0.8,
                },
            ])
            .function("success_rate", "computes the success rate")
            .examples(vec![FewShotExample {
                question: "how many paging attempts".into(),
                metrics: vec!["amfcc_paging_attempt".into()],
                promql: "sum(amfcc_paging_attempt)".into(),
            }])
            .question("what is the registration success rate")
            .task(TaskKind::GeneratePromql)
            .build(32_000, 1000);
        parse_prompt(&p.text)
    }

    #[test]
    fn round_trips_all_sections() {
        let p = build_and_parse();
        assert_eq!(p.system, "You are DIO copilot.");
        assert_eq!(p.context.len(), 2);
        assert_eq!(p.context[0].name, "amfcc_reg_attempt");
        assert!(p.context[0].text.contains("registration attempts"));
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.examples.len(), 1);
        assert_eq!(p.examples[0].metrics, vec!["amfcc_paging_attempt"]);
        assert_eq!(p.examples[0].promql, "sum(amfcc_paging_attempt)");
        assert_eq!(p.question, "what is the registration success rate");
        assert_eq!(p.task, Some(TaskKind::GeneratePromql));
    }

    #[test]
    fn names_only_context_parses() {
        let text = format!(
            "{}\nschema\n\n{}\n{}metric_a\n{}metric_b\n\n{}\nq\n\n{}\n{}\n",
            markers::SYSTEM,
            markers::CONTEXT,
            markers::ITEM,
            markers::ITEM,
            markers::QUESTION,
            markers::TASK,
            TaskKind::GeneratePromql.directive(),
        );
        let p = parse_prompt(&text);
        assert_eq!(p.context.len(), 2);
        assert_eq!(p.context[0].name, "metric_a");
        assert!(p.context[0].text.is_empty());
    }

    #[test]
    fn empty_prompt_parses_empty() {
        let p = parse_prompt("");
        assert!(p.context.is_empty());
        assert!(p.question.is_empty());
        assert_eq!(p.task, None);
    }

    #[test]
    fn multiple_examples_parse() {
        let text = format!(
            "{}\n{}q1\n{}m1\n{}sum(m1)\n{}q2\n{}m2, m3\n{}avg(m2)\n",
            markers::EXAMPLES,
            markers::EX_Q,
            markers::EX_METRICS,
            markers::EX_PROMQL,
            markers::EX_Q,
            markers::EX_METRICS,
            markers::EX_PROMQL,
        );
        let p = parse_prompt(&text);
        assert_eq!(p.examples.len(), 2);
        assert_eq!(p.examples[1].metrics, vec!["m2", "m3"]);
    }
}

//! Capability tiers and the simulated-model implementation.

use crate::cost::{Pricing, TokenUsage};
use crate::model::{Completion, CompletionRequest, FoundationModel, ModelError, TaskKind};
use crate::sim::codegen::{generate_promql, CodegenConfig};
use crate::sim::noise;
use crate::sim::parse::parse_prompt;
use crate::sim::reason::{analyze, TaskShape};
use crate::sim::select::{select_metrics, SelectionConfig};
use crate::tokens::count_tokens;
use serde::{Deserialize, Serialize};

/// A capability tier. The three presets mirror the paper's §4.2.4 model
/// sweep; parameters were calibrated so the *pipeline-level* accuracy
/// ordering and rough gaps match Table 3b (they are behavioural levers,
/// not claims about the real models' internals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model identifier.
    pub name: String,
    /// Context window in tokens.
    pub context_window: usize,
    /// Pricing.
    pub pricing: Pricing,
    /// Synonym/jargon bridging strength (0–1).
    pub paraphrase_strength: f64,
    /// Near-tie resolution strength (0–1).
    pub selection_strength: f64,
    /// Correct-template probability with covering exemplars (0–1).
    pub template_strength: f64,
    /// Correct-template probability with no exemplars (0–1).
    pub naive_strength: f64,
}

impl ModelProfile {
    /// GPT-4 analogue: 32k window, strong understanding.
    pub fn gpt4_sim() -> Self {
        ModelProfile {
            name: "gpt-4-sim".into(),
            context_window: 32_768,
            pricing: Pricing::gpt4(),
            paraphrase_strength: 0.45,
            selection_strength: 0.78,
            template_strength: 0.90,
            naive_strength: 0.30,
        }
    }

    /// GPT-3.5-turbo analogue: 16k window, noticeably weaker selection.
    pub fn gpt35_turbo_sim() -> Self {
        ModelProfile {
            name: "gpt-3.5-turbo-sim".into(),
            context_window: 16_384,
            pricing: Pricing::gpt35_turbo(),
            paraphrase_strength: 0.30,
            selection_strength: 0.52,
            template_strength: 0.70,
            naive_strength: 0.18,
        }
    }

    /// text-curie-001 analogue: 2k window (context gets truncated),
    /// weak everything.
    pub fn text_curie_sim() -> Self {
        ModelProfile {
            name: "text-curie-001-sim".into(),
            context_window: 2_048,
            pricing: Pricing::text_curie(),
            paraphrase_strength: 0.15,
            selection_strength: 0.45,
            template_strength: 0.55,
            naive_strength: 0.08,
        }
    }
}

/// A deterministic simulated foundation model.
#[derive(Debug, Clone)]
pub struct SimulatedModel {
    profile: ModelProfile,
}

impl SimulatedModel {
    /// Wrap a profile.
    pub fn new(profile: ModelProfile) -> Self {
        SimulatedModel { profile }
    }

    /// The profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn selection_config(&self) -> SelectionConfig {
        SelectionConfig {
            paraphrase_strength: self.profile.paraphrase_strength,
            selection_strength: self.profile.selection_strength,
            model_name: self.profile.name.clone(),
        }
    }

    fn codegen_config(&self) -> CodegenConfig {
        CodegenConfig {
            template_strength: self.profile.template_strength,
            naive_strength: self.profile.naive_strength,
            model_name: self.profile.name.clone(),
        }
    }
}

/// Gauge-style name suffixes (the model's heuristic for "do not rate()
/// this" when generating dashboard panels).
const GAUGE_SUFFIXES: &[&str] = &["current", "peak", "mean", "percent", "bytes_in_use"];

impl FoundationModel for SimulatedModel {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn context_window(&self) -> usize {
        self.profile.context_window
    }

    fn pricing(&self) -> Pricing {
        self.profile.pricing
    }

    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError> {
        if request.temperature != 0.0 {
            return Err(ModelError::Unsupported(
                "simulated models implement temperature 0 only".to_string(),
            ));
        }
        if request.prompt.tokens > self.profile.context_window {
            return Err(ModelError::ContextOverflow {
                prompt_tokens: request.prompt.tokens,
                window: self.profile.context_window,
            });
        }

        let parsed = parse_prompt(&request.prompt.text);
        let task = parsed.task.unwrap_or(request.prompt.task);
        let analysis = analyze(&parsed.question);
        let selections = select_metrics(
            &analysis,
            &parsed.context,
            &self.selection_config(),
            &parsed.question,
        );
        let schema_names: Vec<String> =
            parsed.context.iter().map(|i| i.name.clone()).collect();

        let text = match task {
            TaskKind::IdentifyMetrics => {
                let names: Vec<String> =
                    selections.iter().filter_map(|s| s.name.clone()).collect();
                if names.is_empty() {
                    "none".to_string()
                } else {
                    names.join(", ")
                }
            }
            // Repair re-derives the query from the question and context
            // exactly like generation: the simulated model's "fix" for a
            // corrupted query is a clean re-synthesis.
            TaskKind::GeneratePromql | TaskKind::RepairPromql => {
                let examples_present = !parsed.examples.is_empty();
                let covered: std::collections::HashSet<TaskShape> = parsed
                    .examples
                    .iter()
                    .map(|e| analyze(&e.question).shape)
                    .collect();
                generate_promql(
                    &analysis,
                    &selections,
                    examples_present,
                    covered.contains(&analysis.shape),
                    &schema_names,
                    &self.codegen_config(),
                    &parsed.question,
                )
            }
            TaskKind::GenerateDashboard => {
                let mut lines = Vec::new();
                for s in selections.iter().filter_map(|s| s.name.as_deref()) {
                    let gaugeish = GAUGE_SUFFIXES.iter().any(|g| s.ends_with(g));
                    if gaugeish {
                        lines.push(format!("sum({s})"));
                    } else {
                        lines.push(format!("sum(rate({s}[5m]))"));
                    }
                }
                if lines.is_empty() {
                    "sum(up)".to_string()
                } else {
                    lines.join("\n")
                }
            }
            TaskKind::AnswerDirectly => {
                // A bare model without data access hallucinates: it
                // produces a fluent but ungrounded figure (Figure 1a).
                let magnitude = noise::pick(&[&parsed.question, &self.profile.name], 6);
                let base = noise::pick(&[&parsed.question, "val"], 9) + 1;
                let value = base as f64 * 10f64.powi(magnitude as i32);
                format!(
                    "I don't have direct access to your network's live data, and the field names \
                     in your schema are not standard. Based on typical deployments, a rough \
                     estimate would be around {value:.0}, but you should verify against your \
                     monitoring system."
                )
            }
        };

        let completion_tokens = count_tokens(&text).min(request.max_tokens);
        Ok(Completion {
            usage: TokenUsage {
                prompt_tokens: request.prompt.tokens,
                completion_tokens,
            },
            text,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{ContextItem, FewShotExample, PromptBuilder};

    fn context() -> Vec<ContextItem> {
        vec![
            ContextItem {
                name: "amfcc_n1_initial_registration_attempt".into(),
                text: "The number of initial registration procedure attempts handled by AMF."
                    .into(),
                relevance: 0.9,
            },
            ContextItem {
                name: "amfcc_n1_initial_registration_success".into(),
                text: "The number of initial registration procedures completed successfully by AMF."
                    .into(),
                relevance: 0.8,
            },
        ]
    }

    fn fewshot() -> Vec<FewShotExample> {
        vec![
            FewShotExample {
                question: "What is the paging success rate at the AMF?".into(),
                metrics: vec!["amfcc_n2_paging_success".into(), "amfcc_n2_paging_attempt".into()],
                promql: "100 * sum(amfcc_n2_paging_success) / sum(amfcc_n2_paging_attempt)".into(),
            },
            FewShotExample {
                question: "How many NF heartbeats did the NRF process?".into(),
                metrics: vec!["nrfnfm_nf_heartbeat_attempt".into()],
                promql: "sum(nrfnfm_nf_heartbeat_attempt)".into(),
            },
        ]
    }

    fn request(task: TaskKind, with_examples: bool) -> CompletionRequest {
        let mut b = PromptBuilder::new()
            .system("You are DIO copilot.")
            .context(context())
            .question("What is the initial registration procedure success rate at the AMF?")
            .task(task);
        if with_examples {
            b = b.examples(fewshot());
        }
        CompletionRequest::paper_defaults(b.build(32_000, 1000))
    }

    #[test]
    fn identify_metrics_lists_relevant_names() {
        let m = SimulatedModel::new(ModelProfile::gpt4_sim());
        let c = m.complete(&request(TaskKind::IdentifyMetrics, false)).unwrap();
        assert!(c.text.contains("amfcc_n1_initial_registration_success"));
        assert!(c.text.contains("amfcc_n1_initial_registration_attempt"));
        assert!(c.usage.prompt_tokens > 0);
        assert!(c.usage.completion_tokens > 0);
    }

    #[test]
    fn generate_promql_with_examples_is_canonical() {
        let m = SimulatedModel::new(ModelProfile::gpt4_sim());
        let c = m.complete(&request(TaskKind::GeneratePromql, true)).unwrap();
        assert_eq!(
            c.text,
            "100 * sum(amfcc_n1_initial_registration_success) / sum(amfcc_n1_initial_registration_attempt)"
        );
    }

    #[test]
    fn dashboard_emits_rate_panels() {
        let m = SimulatedModel::new(ModelProfile::gpt4_sim());
        let c = m.complete(&request(TaskKind::GenerateDashboard, true)).unwrap();
        assert!(c.text.lines().count() >= 1);
        assert!(c.text.contains("rate("));
    }

    #[test]
    fn answer_directly_hallucinates_prose() {
        let m = SimulatedModel::new(ModelProfile::gpt4_sim());
        let c = m.complete(&request(TaskKind::AnswerDirectly, false)).unwrap();
        assert!(c.text.contains("estimate"));
    }

    #[test]
    fn rejects_nonzero_temperature() {
        let m = SimulatedModel::new(ModelProfile::gpt4_sim());
        let mut r = request(TaskKind::GeneratePromql, true);
        r.temperature = 0.7;
        assert!(matches!(m.complete(&r), Err(ModelError::Unsupported(_))));
    }

    #[test]
    fn rejects_overflowing_prompt() {
        let m = SimulatedModel::new(ModelProfile::text_curie_sim());
        // Build a prompt bigger than curie's window by lying about the
        // window at build time.
        let big = PromptBuilder::new()
            .system("very long system prompt ".repeat(400))
            .question("q")
            .task(TaskKind::GeneratePromql)
            .build(1_000_000, 0);
        let r = CompletionRequest::paper_defaults(big);
        assert!(matches!(
            m.complete(&r),
            Err(ModelError::ContextOverflow { .. })
        ));
    }

    #[test]
    fn completions_are_deterministic() {
        let m = SimulatedModel::new(ModelProfile::gpt35_turbo_sim());
        let a = m.complete(&request(TaskKind::GeneratePromql, true)).unwrap();
        let b = m.complete(&request(TaskKind::GeneratePromql, true)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_are_ordered_by_capability() {
        let g4 = ModelProfile::gpt4_sim();
        let g35 = ModelProfile::gpt35_turbo_sim();
        let cu = ModelProfile::text_curie_sim();
        assert!(g4.selection_strength > g35.selection_strength);
        assert!(g35.selection_strength > cu.selection_strength);
        assert!(g4.context_window > g35.context_window);
        assert!(g35.context_window > cu.context_window);
    }
}

//! The foundation-model interface.

use crate::cost::{Pricing, TokenUsage};
use crate::prompt::Prompt;
use serde::{Deserialize, Serialize};

/// What the pipeline wants the model to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Return the names of the metrics in CONTEXT most relevant to the
    /// question, comma-separated (§3.2's second stage).
    IdentifyMetrics,
    /// Return a single PromQL expression answering the question (§3.3).
    GeneratePromql,
    /// Return one PromQL expression per line for dashboard panels.
    GenerateDashboard,
    /// Answer the question directly with a number (what the bare GPT-4
    /// baseline is asked to do).
    AnswerDirectly,
    /// A previously generated PromQL expression failed in the sandbox;
    /// produce a corrected expression for the same question. The failed
    /// query and the sandbox's diagnosis ride along in the system
    /// section of the prompt.
    RepairPromql,
}

impl TaskKind {
    /// The directive text appended to the prompt.
    pub fn directive(&self) -> &'static str {
        match self {
            TaskKind::IdentifyMetrics => {
                "identify_metrics: list the metric names from CONTEXT most relevant to the question, comma separated"
            }
            TaskKind::GeneratePromql => {
                "generate_promql: output one PromQL expression that answers the question"
            }
            TaskKind::GenerateDashboard => {
                "generate_dashboard: output one PromQL expression per line for time-series panels of the relevant metrics"
            }
            TaskKind::AnswerDirectly => {
                "answer_directly: output the numeric answer to the question"
            }
            TaskKind::RepairPromql => {
                "repair_promql: the previous PromQL failed in the sandbox; output one corrected PromQL expression that answers the question"
            }
        }
    }

    /// Parse a directive line back into a task.
    pub fn from_directive(line: &str) -> Option<TaskKind> {
        let head = line.split(':').next()?.trim();
        Some(match head {
            "identify_metrics" => TaskKind::IdentifyMetrics,
            "generate_promql" => TaskKind::GeneratePromql,
            "generate_dashboard" => TaskKind::GenerateDashboard,
            "answer_directly" => TaskKind::AnswerDirectly,
            "repair_promql" => TaskKind::RepairPromql,
            _ => return None,
        })
    }
}

/// A completion request: the prompt plus decoding parameters. The
/// paper fixes `max_tokens = 1000` and `temperature = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionRequest {
    /// The rendered prompt.
    pub prompt: Prompt,
    /// Maximum completion tokens.
    pub max_tokens: usize,
    /// Sampling temperature. The simulated models only implement 0.0
    /// (deterministic); any other value is rejected.
    pub temperature: f64,
    /// Per-call timeout in milliseconds, derived by the caller from its
    /// remaining request budget. `None` means no cap. Simulated models
    /// honour it deterministically: a call whose (simulated) latency
    /// would exceed the cap fails with [`ModelError::Unavailable`]
    /// without changing the fault schedule.
    #[serde(default)]
    pub timeout_ms: Option<u64>,
}

impl CompletionRequest {
    /// The paper's decoding configuration.
    pub fn paper_defaults(prompt: Prompt) -> Self {
        CompletionRequest {
            prompt,
            max_tokens: 1000,
            temperature: 0.0,
            timeout_ms: None,
        }
    }

    /// The same request with a per-call timeout cap.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = Some(timeout_ms);
        self
    }
}

/// A model completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The generated text.
    pub text: String,
    /// Token usage for billing.
    pub usage: TokenUsage,
}

/// Errors a model can return.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelError {
    /// Prompt exceeds the context window.
    ContextOverflow {
        /// Prompt tokens.
        prompt_tokens: usize,
        /// The window.
        window: usize,
    },
    /// Unsupported decoding parameter.
    Unsupported(String),
    /// Transient upstream failure (timeout, rate limit, outage). The
    /// same request may succeed if retried.
    Unavailable(String),
}

impl ModelError {
    /// Whether retrying the identical request can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, ModelError::Unavailable(_))
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::ContextOverflow {
                prompt_tokens,
                window,
            } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds context window of {window}"
            ),
            ModelError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ModelError::Unavailable(m) => write!(f, "model unavailable: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A foundation model: prompt in, completion out.
pub trait FoundationModel: Send {
    /// Model identifier, e.g. `gpt-4-sim`.
    fn name(&self) -> &str;

    /// Context window in tokens.
    fn context_window(&self) -> usize;

    /// Pricing for cost accounting.
    fn pricing(&self) -> Pricing;

    /// Produce a completion.
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_round_trip() {
        for t in [
            TaskKind::IdentifyMetrics,
            TaskKind::GeneratePromql,
            TaskKind::GenerateDashboard,
            TaskKind::AnswerDirectly,
            TaskKind::RepairPromql,
        ] {
            assert_eq!(TaskKind::from_directive(t.directive()), Some(t));
        }
        assert_eq!(TaskKind::from_directive("do_magic: now"), None);
    }

    #[test]
    fn transient_classification() {
        assert!(ModelError::Unavailable("503".into()).is_transient());
        assert!(!ModelError::Unsupported("temp".into()).is_transient());
        assert!(!ModelError::ContextOverflow {
            prompt_tokens: 10,
            window: 5
        }
        .is_transient());
    }

    #[test]
    fn paper_defaults() {
        let p = crate::prompt::PromptBuilder::new()
            .system("s")
            .question("q")
            .task(TaskKind::GeneratePromql)
            .build(32_000, 1000);
        let r = CompletionRequest::paper_defaults(p);
        assert_eq!(r.max_tokens, 1000);
        assert_eq!(r.temperature, 0.0);
    }
}

//! Differential harness: the vectorized executor is only allowed to
//! exist because it is *byte-identical* to the tree-walking
//! interpreter. Every benchmark reference query and a seeded stream of
//! generated queries run through both executors; results must match
//! bit-for-bit (f64s compared by `to_bits`, so NaN positions count
//! too), errors must match verbatim, and the sample-budget accounting
//! must agree exactly.

use dio_benchmark::{generate_benchmark, OperatorWorld, WorldConfig};
use dio_promql::{Engine, EngineOptions, ExecutorKind, Value};
use dio_tsdb::MetricStore;

/// Render a `Value` with every float spelled as raw bits, so two
/// fingerprints are equal iff the values are byte-identical (ordinary
/// `PartialEq` treats NaN != NaN and so can't prove identity).
fn fingerprint(v: &Value) -> String {
    match v {
        Value::Scalar(x) => format!("scalar:{:016x}", x.to_bits()),
        Value::Str(s) => format!("str:{s}"),
        Value::Vector(samples) => {
            let mut out = String::from("vector:");
            for s in samples {
                out.push_str(&format!("{:?}={:016x};", s.labels, s.value.to_bits()));
            }
            out
        }
        Value::Matrix(series) => {
            let mut out = String::from("matrix:");
            for s in series {
                out.push_str(&format!("{:?}=[", s.labels));
                for p in &s.samples {
                    out.push_str(&format!("{}@{:016x},", p.timestamp_ms, p.value.to_bits()));
                }
                out.push_str("];");
            }
            out
        }
    }
}

fn engines(store: &MetricStore, max_samples: usize) -> (Engine, Engine) {
    let mk = |executor| {
        Engine::with_options(
            store.clone(),
            EngineOptions {
                max_samples,
                executor,
                ..EngineOptions::default()
            },
        )
    };
    (mk(ExecutorKind::Vectorized), mk(ExecutorKind::Interpreter))
}

/// Run one query through both executors and demand identical outcomes:
/// same fingerprint and same sample count on success, same error text
/// on failure.
fn assert_identical(vec_engine: &Engine, interp: &Engine, query: &str, ts: i64) {
    let expr = match dio_promql::parse(query) {
        Ok(e) => e,
        Err(_) => return, // both engines share one parser; nothing to diff
    };
    let got = vec_engine.instant_query_expr(&expr, ts);
    let want = interp.instant_query_expr(&expr, ts);
    match (got, want) {
        (Ok((gv, gs)), Ok((wv, ws))) => {
            assert_eq!(
                fingerprint(&gv),
                fingerprint(&wv),
                "value diverged for `{query}` @ {ts}"
            );
            assert_eq!(
                gs.samples_visited, ws.samples_visited,
                "sample accounting diverged for `{query}` @ {ts}"
            );
        }
        (Err(ge), Err(we)) => {
            assert_eq!(
                ge.to_string(),
                we.to_string(),
                "errors diverged for `{query}` @ {ts}"
            );
        }
        (g, w) => panic!("outcome diverged for `{query}` @ {ts}: {g:?} vs {w:?}"),
    }
}

#[test]
fn all_benchmark_questions_agree() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = generate_benchmark(&world, 200, 0xd1ff);
    assert_eq!(questions.len(), 200, "benchmark generator under-delivered");
    let (vec_engine, interp) = engines(&world.store, 0);
    for q in &questions {
        assert_identical(&vec_engine, &interp, &q.reference.promql, world.eval_ts);
        // Off-grid and pre-history timestamps exercise lookback and
        // empty-window paths the happy path never touches.
        assert_identical(&vec_engine, &interp, &q.reference.promql, world.eval_ts - 17_123);
        assert_identical(&vec_engine, &interp, &q.reference.promql, -1);
    }
}

#[test]
fn range_queries_agree_across_steps() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = generate_benchmark(&world, 40, 0xd1ff);
    let (vec_engine, interp) = engines(&world.store, 0);
    let (start, end, step) = (world.eval_ts - 600_000, world.eval_ts, 60_000);
    // Raw selector shapes (with offsets and matchers) exercise the
    // bare-scan whole-range fast path benchmark questions may miss.
    let mut raw: Vec<String> = Vec::new();
    for name in world.store.metric_names().into_iter().take(4) {
        raw.push(name.to_string());
        raw.push(format!("{name} offset 2m"));
        raw.push(format!("{name}{{nf!=\"nosuch\"}}"));
    }
    let queries: Vec<String> = questions
        .iter()
        .map(|q| q.reference.promql.clone())
        .chain(raw)
        .collect();
    for promql in &queries {
        let got = vec_engine.range_query(promql, start, end, step);
        let want = interp.range_query(promql, start, end, step);
        match (got, want) {
            (Ok(g), Ok(w)) => {
                assert_eq!(g.len(), w.len(), "series count for `{promql}`");
                for (gs, ws) in g.iter().zip(&w) {
                    assert_eq!(gs.labels, ws.labels, "labels for `{promql}`");
                    assert_eq!(gs.points.len(), ws.points.len(), "points for `{promql}`");
                    for (gp, wp) in gs.points.iter().zip(&ws.points) {
                        assert_eq!(
                            gp.timestamp_ms, wp.timestamp_ms,
                            "timestamp for `{promql}`"
                        );
                        assert_eq!(
                            gp.value.to_bits(),
                            wp.value.to_bits(),
                            "value bits for `{promql}` at {}",
                            gp.timestamp_ms
                        );
                    }
                }
            }
            (Err(ge), Err(we)) => assert_eq!(ge.to_string(), we.to_string()),
            (g, w) => panic!("range outcome diverged for `{promql}`: {g:?} vs {w:?}"),
        }
    }
}

#[test]
fn tight_budgets_trip_identically() {
    // Same queries, starved budget: LimitExceeded must fire at the
    // same point with the same message under both executors.
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = generate_benchmark(&world, 50, 0xd1ff);
    for budget in [1usize, 7, 64, 500] {
        let (vec_engine, interp) = engines(&world.store, budget);
        for q in &questions {
            assert_identical(&vec_engine, &interp, &q.reference.promql, world.eval_ts);
        }
    }
}

// ---------------------------------------------------------------------
// Seeded random-query generator
// ---------------------------------------------------------------------

struct QueryGen {
    state: u64,
    metrics: Vec<String>,
}

impl QueryGen {
    fn new(seed: u64, metrics: Vec<String>) -> Self {
        QueryGen { state: seed | 1, metrics }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a>(&mut self, options: &'a [&'a str]) -> &'a str {
        options[(self.next() % options.len() as u64) as usize]
    }

    fn metric(&mut self) -> String {
        let i = (self.next() % self.metrics.len() as u64) as usize;
        self.metrics[i].clone()
    }

    fn selector(&mut self) -> String {
        let m = self.metric();
        match self.next() % 4 {
            0 => m,
            1 => format!("{m}{{instance=~\".*-0\"}}"),
            2 => format!("{m}{{nf!=\"nosuch\"}}"),
            _ => format!("{m} offset {}s", 15 + self.next() % 300),
        }
    }

    fn range(&mut self) -> String {
        ["1m", "5m", "10m", "30s", "7m"][(self.next() % 5) as usize].to_string()
    }

    fn matrix_fn(&mut self) -> String {
        let f = self.pick(&[
            "rate", "increase", "irate", "delta", "idelta", "resets", "changes",
            "deriv", "avg_over_time", "sum_over_time", "min_over_time",
            "max_over_time", "count_over_time", "last_over_time",
            "stddev_over_time", "present_over_time",
        ]);
        let m = self.metric();
        let r = self.range();
        match self.next() % 8 {
            0 => format!("quantile_over_time(0.{}, {m}[{r}])", 1 + self.next() % 9),
            1 => format!("predict_linear({m}[{r}], {}s)", 60 + self.next() % 600),
            _ => format!("{f}({m}[{r}])"),
        }
    }

    fn vector_expr(&mut self, depth: u32) -> String {
        if depth == 0 {
            return match self.next() % 3 {
                0 => self.selector(),
                1 => self.matrix_fn(),
                _ => format!("{}", (self.next() % 1000) as f64 / 10.0),
            };
        }
        match self.next() % 10 {
            0 | 1 => {
                let agg = self.pick(&["sum", "avg", "min", "max", "count", "stddev", "stdvar"]);
                let by = match self.next() % 3 {
                    0 => " by (instance)".to_string(),
                    1 => " without (nf)".to_string(),
                    _ => String::new(),
                };
                format!("{agg}{by}({})", self.vector_expr(depth - 1))
            }
            2 => {
                let f = self.pick(&["abs", "ceil", "floor", "sqrt", "exp", "ln", "sgn", "sort"]);
                format!("{f}({})", self.vector_expr(depth - 1))
            }
            3 => format!(
                "topk({}, {})",
                1 + self.next() % 4,
                self.vector_expr(depth - 1)
            ),
            4 => {
                let op = self.pick(&["+", "-", "*", "/"]);
                format!(
                    "({}) {op} ({})",
                    self.vector_expr(depth - 1),
                    self.vector_expr(depth - 1)
                )
            }
            5 => {
                let op = self.pick(&[">", "<", ">=", "<=", "==", "!="]);
                let modifier = if self.next() % 2 == 0 { " bool" } else { "" };
                format!(
                    "({}) {op}{modifier} {}",
                    self.vector_expr(depth - 1),
                    (self.next() % 100) as f64
                )
            }
            6 => {
                let op = self.pick(&["and", "or", "unless"]);
                format!("({}) {op} ({})", self.selector(), self.selector())
            }
            7 => format!("-({})", self.vector_expr(depth - 1)),
            8 => format!("clamp_min({}, {})", self.vector_expr(depth - 1), self.next() % 10),
            _ => self.matrix_fn(),
        }
    }
}

#[test]
fn seeded_random_queries_agree() {
    let world = OperatorWorld::build(WorldConfig::small());
    let metrics: Vec<String> = world
        .store
        .metric_names()
        .into_iter()
        .map(|s| s.to_string())
        .collect();
    assert!(!metrics.is_empty());
    let (vec_engine, interp) = engines(&world.store, 0);
    let mut qgen = QueryGen::new(0x5eed_d1ff, metrics);
    for case in 0..300 {
        let depth = 1 + (case % 3) as u32;
        let query = qgen.vector_expr(depth);
        let ts = world.eval_ts - (qgen.next() % 1_800_000) as i64;
        assert_identical(&vec_engine, &interp, &query, ts);
    }
}

#[test]
fn random_queries_agree_under_budget_pressure() {
    let world = OperatorWorld::build(WorldConfig::small());
    let metrics: Vec<String> = world
        .store
        .metric_names()
        .into_iter()
        .map(|s| s.to_string())
        .collect();
    let (vec_engine, interp) = engines(&world.store, 200);
    let mut qgen = QueryGen::new(0xbead_cafe, metrics);
    for _ in 0..100 {
        let query = qgen.vector_expr(2);
        assert_identical(&vec_engine, &interp, &query, world.eval_ts);
    }
}

//! PromQL abstract syntax tree.

use dio_tsdb::Matcher;
use serde::{Deserialize, Serialize};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^`
    Pow,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Gte,
    /// `<=`
    Lte,
    /// `and`
    And,
    /// `or`
    Or,
    /// `unless`
    Unless,
}

impl BinOp {
    /// True for `== != > < >= <=`.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Lt | BinOp::Gte | BinOp::Lte
        )
    }

    /// True for `and or unless`.
    pub fn is_set_op(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Unless)
    }

    /// PromQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Gt => ">",
            BinOp::Lt => "<",
            BinOp::Gte => ">=",
            BinOp::Lte => "<=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Unless => "unless",
        }
    }

    /// Binding precedence (higher binds tighter), following Prometheus:
    /// `or` < `and`/`unless` < comparisons < `+ -` < `* / %` < `^`.
    pub fn precedence(&self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And | BinOp::Unless => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Lt | BinOp::Gte | BinOp::Lte => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
            BinOp::Pow => 6,
        }
    }

    /// `^` is right-associative; everything else is left-associative.
    pub fn is_right_assoc(&self) -> bool {
        matches!(self, BinOp::Pow)
    }
}

/// Aggregation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggOp {
    /// `sum`
    Sum,
    /// `avg`
    Avg,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `count`
    Count,
    /// `group`
    Group,
    /// `stddev`
    Stddev,
    /// `stdvar`
    Stdvar,
    /// `topk`
    Topk,
    /// `bottomk`
    Bottomk,
    /// `quantile`
    Quantile,
    /// `count_values`
    CountValues,
}

impl AggOp {
    /// PromQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AggOp::Sum => "sum",
            AggOp::Avg => "avg",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Count => "count",
            AggOp::Group => "group",
            AggOp::Stddev => "stddev",
            AggOp::Stdvar => "stdvar",
            AggOp::Topk => "topk",
            AggOp::Bottomk => "bottomk",
            AggOp::Quantile => "quantile",
            AggOp::CountValues => "count_values",
        }
    }

    /// Parse an aggregation keyword.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "sum" => AggOp::Sum,
            "avg" => AggOp::Avg,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            "count" => AggOp::Count,
            "group" => AggOp::Group,
            "stddev" => AggOp::Stddev,
            "stdvar" => AggOp::Stdvar,
            "topk" => AggOp::Topk,
            "bottomk" => AggOp::Bottomk,
            "quantile" => AggOp::Quantile,
            "count_values" => AggOp::CountValues,
            _ => return None,
        })
    }

    /// True when the operator takes a scalar parameter before the vector
    /// (`topk(3, v)`, `quantile(0.9, v)`, `count_values("l", v)`).
    pub fn takes_param(&self) -> bool {
        matches!(
            self,
            AggOp::Topk | AggOp::Bottomk | AggOp::Quantile | AggOp::CountValues
        )
    }
}

/// `by (…)` / `without (…)` grouping modifier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Grouping {
    /// No modifier: aggregate everything into one group.
    None,
    /// `by (labels)`.
    By(Vec<String>),
    /// `without (labels)`.
    Without(Vec<String>),
}

/// Vector-matching modifier on binary operations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VectorMatching {
    /// `on (labels)` when `Some(true)`, `ignoring (labels)` when
    /// `Some(false)`, no modifier when `None`.
    pub on: Option<bool>,
    /// The labels named in `on`/`ignoring`.
    pub labels: Vec<String>,
    /// `group_left` / `group_right` side, with extra labels to copy.
    pub group: Option<(GroupSide, Vec<String>)>,
}

/// Which side is the "many" side in a many-to-one match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupSide {
    /// `group_left`: left is the many side.
    Left,
    /// `group_right`: right is the many side.
    Right,
}

/// A parsed PromQL expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Scalar literal.
    NumberLiteral(f64),
    /// String literal (only valid as a function argument).
    StringLiteral(String),
    /// Instant vector selector: `name{matchers} offset 5m`.
    VectorSelector {
        /// Metric name (may be empty when only matchers are given).
        name: Option<String>,
        /// Label matchers, not including the implicit name matcher.
        matchers: Vec<Matcher>,
        /// `offset` in milliseconds (0 when absent).
        offset_ms: i64,
    },
    /// Range vector selector: `selector[5m]`.
    MatrixSelector {
        /// The inner instant selector.
        selector: Box<Expr>,
        /// Window length in milliseconds.
        range_ms: i64,
    },
    /// Subquery: `expr[range:step]` — evaluate an instant expression at
    /// `step` intervals over `range`, producing a range vector.
    Subquery {
        /// The inner instant expression.
        expr: Box<Expr>,
        /// Window length in milliseconds.
        range_ms: i64,
        /// Evaluation step in milliseconds (`None` = engine default).
        step_ms: Option<i64>,
        /// `offset` in milliseconds.
        offset_ms: i64,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// `bool` modifier on comparisons.
        bool_modifier: bool,
        /// Vector matching modifiers.
        matching: VectorMatching,
    },
    /// Aggregation: `sum by (l) (expr)`.
    Aggregate {
        /// Operator.
        op: AggOp,
        /// Optional scalar/string parameter (topk, quantile, count_values).
        param: Option<Box<Expr>>,
        /// The aggregated expression.
        expr: Box<Expr>,
        /// Grouping modifier.
        grouping: Grouping,
    },
    /// Function call: `rate(m[5m])`.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Parenthesised expression (kept for faithful formatting).
    Paren(Box<Expr>),
}

impl Expr {
    /// Collect every metric name referenced by vector selectors, in
    /// first-appearance order. Used by execution-accuracy analysis and
    /// by the copilot's "relevant metrics" presentation.
    pub fn metric_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk_names(&mut out);
        out
    }

    /// True when any vector selector's metric name cannot be resolved
    /// statically — no literal name and no `=` matcher on `__name__`
    /// (i.e. a name-pattern selector). Routers that partition series
    /// by metric family use this to fall back from single-shard
    /// pushdown to a full scatter-gather.
    pub fn has_dynamic_selector(&self) -> bool {
        match self {
            Expr::VectorSelector { name, matchers, .. } => {
                name.is_none()
                    && !matchers.iter().any(|m| {
                        m.name == dio_tsdb::labels::NAME_LABEL && m.op == dio_tsdb::MatchOp::Eq
                    })
            }
            Expr::MatrixSelector { selector, .. } => selector.has_dynamic_selector(),
            Expr::Subquery { expr, .. } => expr.has_dynamic_selector(),
            Expr::Neg(e) | Expr::Paren(e) => e.has_dynamic_selector(),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.has_dynamic_selector() || rhs.has_dynamic_selector()
            }
            Expr::Aggregate { param, expr, .. } => {
                param.as_deref().is_some_and(Expr::has_dynamic_selector)
                    || expr.has_dynamic_selector()
            }
            Expr::Call { args, .. } => args.iter().any(Expr::has_dynamic_selector),
            Expr::NumberLiteral(_) | Expr::StringLiteral(_) => false,
        }
    }

    fn walk_names(&self, out: &mut Vec<String>) {
        match self {
            Expr::VectorSelector { name, matchers, .. } => {
                if let Some(n) = name {
                    if !out.contains(n) {
                        out.push(n.clone());
                    }
                } else {
                    for m in matchers {
                        if m.name == "__name__" && !out.contains(&m.value) {
                            out.push(m.value.clone());
                        }
                    }
                }
            }
            Expr::MatrixSelector { selector, .. } => selector.walk_names(out),
            Expr::Subquery { expr, .. } => expr.walk_names(out),
            Expr::Neg(e) | Expr::Paren(e) => e.walk_names(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk_names(out);
                rhs.walk_names(out);
            }
            Expr::Aggregate { param, expr, .. } => {
                if let Some(p) = param {
                    p.walk_names(out);
                }
                expr.walk_names(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk_names(out);
                }
            }
            Expr::NumberLiteral(_) | Expr::StringLiteral(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering_matches_prometheus() {
        assert!(BinOp::Pow.precedence() > BinOp::Mul.precedence());
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_set_op());
        assert!(!BinOp::Div.is_set_op());
        assert!(BinOp::Pow.is_right_assoc());
        assert!(!BinOp::Sub.is_right_assoc());
    }

    #[test]
    fn agg_parse_round_trip() {
        for op in [
            AggOp::Sum,
            AggOp::Avg,
            AggOp::Topk,
            AggOp::Quantile,
            AggOp::CountValues,
        ] {
            assert_eq!(AggOp::parse(op.as_str()), Some(op));
        }
        assert_eq!(AggOp::parse("mean"), None);
        assert!(AggOp::Topk.takes_param());
        assert!(!AggOp::Sum.takes_param());
    }

    #[test]
    fn metric_names_collects_unique_in_order() {
        let e = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::VectorSelector {
                name: Some("success".into()),
                matchers: vec![],
                offset_ms: 0,
            }),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::VectorSelector {
                    name: Some("attempt".into()),
                    matchers: vec![],
                    offset_ms: 0,
                }),
                rhs: Box::new(Expr::VectorSelector {
                    name: Some("success".into()),
                    matchers: vec![],
                    offset_ms: 0,
                }),
                bool_modifier: false,
                matching: VectorMatching::default(),
            }),
            bool_modifier: false,
            matching: VectorMatching::default(),
        };
        assert_eq!(e.metric_names(), vec!["success", "attempt"]);
    }
}

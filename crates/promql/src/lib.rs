//! # dio-promql
//!
//! A PromQL implementation: lexer, parser, AST, formatter, and an
//! evaluation engine over [`dio_tsdb::MetricStore`].
//!
//! The paper's copilot generates **PromQL** ("The PromQL language is
//! chosen as it is popular with operator deployments", §4) and measures
//! *execution accuracy* by running generated queries against a metrics
//! database. Prometheus itself is a Go system, so this crate implements
//! the language natively. Supported surface (everything the generated,
//! reference, and few-shot queries use, plus standard PromQL breadth):
//!
//! * instant and range vector selectors with label matchers and offsets;
//! * arithmetic and comparison binary operators with full vector
//!   matching (`on`/`ignoring`, `group_left`/`group_right`, `bool`);
//! * logical set operators `and`/`or`/`unless`;
//! * aggregations `sum avg min max count group stddev stdvar topk
//!   bottomk quantile count_values` with `by`/`without`;
//! * range functions `rate irate increase delta idelta resets changes
//!   *_over_time deriv predict_linear`;
//! * instant functions `abs ceil floor round exp ln log2 log10 sqrt sgn
//!   clamp clamp_min clamp_max scalar vector time timestamp sort
//!   sort_desc absent label_replace label_join histogram_quantile`.
//!
//! Divergences from Prometheus are deliberate and documented:
//! `rate`/`increase` use simple first-to-last extrapolation-free
//! computation (both the generated and reference queries run through
//! this same engine, so execution-accuracy comparisons are exact), and
//! regex matchers support the anchored subset described in
//! [`dio_tsdb::matchers`].
//!
//! ```
//! use dio_promql::{parse, Engine};
//! use dio_tsdb::{Labels, MetricStore, Sample};
//!
//! let mut store = MetricStore::new();
//! for (t, v) in [(0, 0.0), (60_000, 60.0), (120_000, 120.0)] {
//!     store.append(Labels::name_only("reqs_total"), Sample::new(t, v)).unwrap();
//! }
//! let engine = Engine::new(store);
//! let value = engine.instant_query("sum(rate(reqs_total[2m]))", 120_000).unwrap();
//! assert_eq!(value.as_scalar_like(), Some(1.0)); // 1 request/second
//! ```

pub mod ast;
pub mod batch;
pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod printer;
pub mod value;

pub use ast::Expr;
pub use batch::SeriesBatch;
pub use engine::{Engine, EngineOptions, ExecutorKind, QueryStats, RangeResult};
pub use exec::ExecCtx;
pub use plan::{PhysicalPlan, PlanNode, ScanSpec};
pub use error::{EvalError, ParseError};
pub use explain::explain_query;
pub use parser::parse;
pub use printer::format_expr;
pub use value::{InstantVector, RangeVector, Value, VectorSample};

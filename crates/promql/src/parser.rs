//! PromQL recursive-descent / Pratt parser.

use crate::ast::{AggOp, BinOp, Expr, GroupSide, Grouping, VectorMatching};
use crate::error::ParseError;
use crate::lexer::{lex, SpannedToken, Token};
use dio_tsdb::{MatchOp, Matcher};

/// Parse a PromQL expression into an AST.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let expr = p.parse_expr(0)?;
    if !p.at_end() {
        return Err(ParseError::new(
            format!("unexpected trailing input: {:?}", p.peek().unwrap().token),
            p.peek().unwrap().offset,
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&SpannedToken> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn offset(&self) -> usize {
        self.peek().map(|t| t.offset).unwrap_or(self.input_len)
    }

    fn next(&mut self) -> Option<SpannedToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.token == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(ParseError::new(
                format!("expected {what}, found {:?}", t.token),
                t.offset,
            )),
            None => Err(ParseError::new(
                format!("expected {what}, found end of input"),
                self.input_len,
            )),
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(SpannedToken {
                token: Token::Ident(s),
                ..
            }) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Pratt expression parser.
    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_binop() {
                Some(op) if op.precedence() >= min_prec => op,
                _ => break,
            };
            self.pos += 1; // consume operator

            // `bool` modifier.
            let mut bool_modifier = false;
            if self.peek_ident() == Some("bool") {
                if !op.is_comparison() {
                    return Err(ParseError::new(
                        "bool modifier only allowed on comparison operators",
                        self.offset(),
                    ));
                }
                bool_modifier = true;
                self.pos += 1;
            }

            // Vector matching: on/ignoring + group_left/group_right.
            let mut matching = VectorMatching::default();
            match self.peek_ident() {
                Some("on") => {
                    self.pos += 1;
                    matching.on = Some(true);
                    matching.labels = self.parse_label_list()?;
                }
                Some("ignoring") => {
                    self.pos += 1;
                    matching.on = Some(false);
                    matching.labels = self.parse_label_list()?;
                }
                _ => {}
            }
            match self.peek_ident() {
                Some("group_left") => {
                    self.pos += 1;
                    let extra = self.parse_optional_label_list()?;
                    matching.group = Some((GroupSide::Left, extra));
                }
                Some("group_right") => {
                    self.pos += 1;
                    let extra = self.parse_optional_label_list()?;
                    matching.group = Some((GroupSide::Right, extra));
                }
                _ => {}
            }

            let next_min = if op.is_right_assoc() {
                op.precedence()
            } else {
                op.precedence() + 1
            };
            let rhs = self.parse_expr(next_min)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                bool_modifier,
                matching,
            };
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<BinOp> {
        match self.peek().map(|t| &t.token) {
            Some(Token::Plus) => Some(BinOp::Add),
            Some(Token::Minus) => Some(BinOp::Sub),
            Some(Token::Star) => Some(BinOp::Mul),
            Some(Token::Slash) => Some(BinOp::Div),
            Some(Token::Percent) => Some(BinOp::Mod),
            Some(Token::Caret) => Some(BinOp::Pow),
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::Ne),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Gte) => Some(BinOp::Gte),
            Some(Token::Lte) => Some(BinOp::Lte),
            Some(Token::Ident(s)) => match s.as_str() {
                "and" => Some(BinOp::And),
                "or" => Some(BinOp::Or),
                "unless" => Some(BinOp::Unless),
                _ => None,
            },
            _ => None,
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek().map(|t| &t.token), Some(Token::Minus)) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        if matches!(self.peek().map(|t| &t.token), Some(Token::Plus)) {
            self.pos += 1;
            return self.parse_unary();
        }
        self.parse_postfix()
    }

    /// Primary expression plus postfix `[range]` and `offset`.
    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;

        // Range selector or subquery.
        if matches!(self.peek().map(|t| &t.token), Some(Token::LBracket)) {
            let off = self.offset();
            self.pos += 1;
            let range_ms = match self.next() {
                Some(SpannedToken {
                    token: Token::Duration(ms),
                    ..
                }) => ms,
                Some(t) => {
                    return Err(ParseError::new(
                        format!("expected duration in range selector, found {:?}", t.token),
                        t.offset,
                    ))
                }
                None => return Err(ParseError::new("expected duration", self.input_len)),
            };
            if matches!(self.peek().map(|t| &t.token), Some(Token::Colon)) {
                // Subquery: expr[range:step] with optional step.
                self.pos += 1;
                let step_ms = match self.peek().map(|t| &t.token) {
                    Some(Token::Duration(ms)) => {
                        let ms = *ms;
                        self.pos += 1;
                        Some(ms)
                    }
                    _ => None,
                };
                self.expect(&Token::RBracket, "']'")?;
                if let Some(step) = step_ms {
                    if step <= 0 {
                        return Err(ParseError::new("subquery step must be positive", off));
                    }
                }
                expr = Expr::Subquery {
                    expr: Box::new(expr),
                    range_ms,
                    step_ms,
                    offset_ms: 0,
                };
            } else {
                self.expect(&Token::RBracket, "']'")?;
                match &expr {
                    Expr::VectorSelector { .. } => {}
                    _ => {
                        return Err(ParseError::new(
                            "range selector only allowed on vector selectors (use [range:step] for subqueries)",
                            off,
                        ))
                    }
                }
                expr = Expr::MatrixSelector {
                    selector: Box::new(expr),
                    range_ms,
                };
            }
        }

        // Offset modifier.
        if self.peek_ident() == Some("offset") {
            self.pos += 1;
            let off_ms = match self.next() {
                Some(SpannedToken {
                    token: Token::Duration(ms),
                    ..
                }) => ms,
                Some(t) => {
                    return Err(ParseError::new(
                        format!("expected duration after offset, found {:?}", t.token),
                        t.offset,
                    ))
                }
                None => return Err(ParseError::new("expected duration", self.input_len)),
            };
            apply_offset(&mut expr, off_ms, self.offset())?;
        }

        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let tok = match self.peek() {
            Some(t) => t.clone(),
            None => {
                return Err(ParseError::new(
                    "unexpected end of input",
                    self.input_len,
                ))
            }
        };
        match tok.token {
            Token::Number(n) => {
                self.pos += 1;
                Ok(Expr::NumberLiteral(n))
            }
            Token::Duration(ms) => {
                // A bare duration outside [..] is a number of seconds in
                // Prometheus (e.g. `5m` == 300); accept that.
                self.pos += 1;
                Ok(Expr::NumberLiteral(ms as f64 / 1000.0))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::StringLiteral(s))
            }
            Token::LParen => {
                self.pos += 1;
                let inner = self.parse_expr(0)?;
                self.expect(&Token::RParen, "')'")?;
                Ok(Expr::Paren(Box::new(inner)))
            }
            Token::LBrace => {
                // Selector with no metric name.
                let matchers = self.parse_matchers()?;
                Ok(Expr::VectorSelector {
                    name: None,
                    matchers,
                    offset_ms: 0,
                })
            }
            Token::Ident(name) => {
                self.pos += 1;
                // Aggregation?
                if let Some(agg) = AggOp::parse(&name) {
                    if self.is_agg_context() {
                        return self.parse_aggregate(agg);
                    }
                }
                // Function call?
                if matches!(self.peek().map(|t| &t.token), Some(Token::LParen)) {
                    return self.parse_call(name);
                }
                // Vector selector.
                let matchers = if matches!(self.peek().map(|t| &t.token), Some(Token::LBrace)) {
                    self.parse_matchers()?
                } else {
                    Vec::new()
                };
                Ok(Expr::VectorSelector {
                    name: Some(name),
                    matchers,
                    offset_ms: 0,
                })
            }
            other => Err(ParseError::new(
                format!("unexpected token {other:?}"),
                tok.offset,
            )),
        }
    }

    /// After an aggregation keyword, the next token must be `(`, `by` or
    /// `without` for it to actually be an aggregation (e.g. a metric
    /// could be named `sum_of_things`, but a bare `sum` followed by `{`
    /// is a selector for a metric literally named `sum`).
    fn is_agg_context(&self) -> bool {
        match self.peek().map(|t| &t.token) {
            Some(Token::LParen) => true,
            Some(Token::Ident(s)) => s == "by" || s == "without",
            _ => false,
        }
    }

    fn parse_aggregate(&mut self, op: AggOp) -> Result<Expr, ParseError> {
        // Optional leading by/without.
        let mut grouping = Grouping::None;
        if let Some(kw) = self.peek_ident() {
            if kw == "by" || kw == "without" {
                let by = kw == "by";
                self.pos += 1;
                let labels = self.parse_label_list()?;
                grouping = if by {
                    Grouping::By(labels)
                } else {
                    Grouping::Without(labels)
                };
            }
        }
        self.expect(&Token::LParen, "'('")?;
        let first = self.parse_expr(0)?;
        let (param, expr) = if matches!(self.peek().map(|t| &t.token), Some(Token::Comma)) {
            self.pos += 1;
            let second = self.parse_expr(0)?;
            (Some(Box::new(first)), second)
        } else {
            (None, first)
        };
        self.expect(&Token::RParen, "')'")?;
        if op.takes_param() && param.is_none() {
            return Err(ParseError::new(
                format!("{} requires a parameter", op.as_str()),
                self.offset(),
            ));
        }
        if !op.takes_param() && param.is_some() {
            return Err(ParseError::new(
                format!("{} takes no parameter", op.as_str()),
                self.offset(),
            ));
        }
        // Optional trailing by/without.
        if let Some(kw) = self.peek_ident() {
            if kw == "by" || kw == "without" {
                if grouping != Grouping::None {
                    return Err(ParseError::new("duplicate grouping modifier", self.offset()));
                }
                let by = kw == "by";
                self.pos += 1;
                let labels = self.parse_label_list()?;
                grouping = if by {
                    Grouping::By(labels)
                } else {
                    Grouping::Without(labels)
                };
            }
        }
        Ok(Expr::Aggregate {
            op,
            param,
            expr: Box::new(expr),
            grouping,
        })
    }

    fn parse_call(&mut self, func: String) -> Result<Expr, ParseError> {
        self.expect(&Token::LParen, "'('")?;
        let mut args = Vec::new();
        if !matches!(self.peek().map(|t| &t.token), Some(Token::RParen)) {
            loop {
                args.push(self.parse_expr(0)?);
                if matches!(self.peek().map(|t| &t.token), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Expr::Call { func, args })
    }

    fn parse_matchers(&mut self) -> Result<Vec<Matcher>, ParseError> {
        self.expect(&Token::LBrace, "'{'")?;
        let mut matchers = Vec::new();
        if !matches!(self.peek().map(|t| &t.token), Some(Token::RBrace)) {
            loop {
                let name = match self.next() {
                    Some(SpannedToken {
                        token: Token::Ident(n),
                        ..
                    }) => n,
                    Some(t) => {
                        return Err(ParseError::new(
                            format!("expected label name, found {:?}", t.token),
                            t.offset,
                        ))
                    }
                    None => return Err(ParseError::new("expected label name", self.input_len)),
                };
                let op = match self.next() {
                    Some(SpannedToken {
                        token: Token::Assign,
                        ..
                    }) => MatchOp::Eq,
                    Some(SpannedToken {
                        token: Token::NotEq,
                        ..
                    }) => MatchOp::Ne,
                    Some(SpannedToken {
                        token: Token::ReMatch,
                        ..
                    }) => MatchOp::Re,
                    Some(SpannedToken {
                        token: Token::NotReMatch,
                        ..
                    }) => MatchOp::Nre,
                    Some(t) => {
                        return Err(ParseError::new(
                            format!("expected matcher operator, found {:?}", t.token),
                            t.offset,
                        ))
                    }
                    None => return Err(ParseError::new("expected matcher operator", self.input_len)),
                };
                let value = match self.next() {
                    Some(SpannedToken {
                        token: Token::Str(v),
                        ..
                    }) => v,
                    Some(t) => {
                        return Err(ParseError::new(
                            format!("expected quoted label value, found {:?}", t.token),
                            t.offset,
                        ))
                    }
                    None => return Err(ParseError::new("expected label value", self.input_len)),
                };
                matchers.push(Matcher { name, op, value });
                match self.peek().map(|t| &t.token) {
                    Some(Token::Comma) => {
                        self.pos += 1;
                        // Allow trailing comma.
                        if matches!(self.peek().map(|t| &t.token), Some(Token::RBrace)) {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::RBrace, "'}'")?;
        Ok(matchers)
    }

    fn parse_label_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Token::LParen, "'('")?;
        let mut labels = Vec::new();
        if !matches!(self.peek().map(|t| &t.token), Some(Token::RParen)) {
            loop {
                match self.next() {
                    Some(SpannedToken {
                        token: Token::Ident(n),
                        ..
                    }) => labels.push(n),
                    Some(t) => {
                        return Err(ParseError::new(
                            format!("expected label name, found {:?}", t.token),
                            t.offset,
                        ))
                    }
                    None => return Err(ParseError::new("expected label name", self.input_len)),
                }
                if matches!(self.peek().map(|t| &t.token), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(labels)
    }

    /// group_left/group_right may be followed by an optional label list.
    fn parse_optional_label_list(&mut self) -> Result<Vec<String>, ParseError> {
        if matches!(self.peek().map(|t| &t.token), Some(Token::LParen)) {
            self.parse_label_list()
        } else {
            Ok(Vec::new())
        }
    }
}

fn apply_offset(expr: &mut Expr, off_ms: i64, pos: usize) -> Result<(), ParseError> {
    match expr {
        Expr::VectorSelector { offset_ms, .. } => {
            *offset_ms = off_ms;
            Ok(())
        }
        Expr::Subquery { offset_ms, .. } => {
            *offset_ms = off_ms;
            Ok(())
        }
        Expr::MatrixSelector { selector, .. } => apply_offset(selector, off_ms, pos),
        _ => Err(ParseError::new(
            "offset only allowed on selectors",
            pos,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_selector() {
        let e = parse("amfcc_n1_auth_request").unwrap();
        assert_eq!(
            e,
            Expr::VectorSelector {
                name: Some("amfcc_n1_auth_request".into()),
                matchers: vec![],
                offset_ms: 0
            }
        );
    }

    #[test]
    fn parses_selector_with_matchers() {
        let e = parse(r#"m{instance="amf-0", nf=~"a.*"}"#).unwrap();
        match e {
            Expr::VectorSelector { name, matchers, .. } => {
                assert_eq!(name.as_deref(), Some("m"));
                assert_eq!(matchers.len(), 2);
                assert_eq!(matchers[0], Matcher::eq("instance", "amf-0"));
                assert_eq!(matchers[1], Matcher::re("nf", "a.*"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nameless_selector() {
        let e = parse(r#"{__name__="m", x!="y"}"#).unwrap();
        match e {
            Expr::VectorSelector { name, matchers, .. } => {
                assert_eq!(name, None);
                assert_eq!(matchers.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_matrix_and_offset() {
        let e = parse("m[5m] offset 1h").unwrap();
        match e {
            Expr::MatrixSelector { selector, range_ms } => {
                assert_eq!(range_ms, 300_000);
                match *selector {
                    Expr::VectorSelector { offset_ms, .. } => assert_eq!(offset_ms, 3_600_000),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_rate_call() {
        let e = parse("rate(m[5m])").unwrap();
        match e {
            Expr::Call { func, args } => {
                assert_eq!(func, "rate");
                assert_eq!(args.len(), 1);
                assert!(matches!(args[0], Expr::MatrixSelector { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_aggregation_with_by() {
        let e = parse("sum by (instance) (rate(m[1m]))").unwrap();
        match e {
            Expr::Aggregate {
                op,
                grouping,
                param,
                ..
            } => {
                assert_eq!(op, AggOp::Sum);
                assert_eq!(grouping, Grouping::By(vec!["instance".into()]));
                assert!(param.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_trailing_grouping() {
        let e = parse("sum(m) without (instance)").unwrap();
        match e {
            Expr::Aggregate { grouping, .. } => {
                assert_eq!(grouping, Grouping::Without(vec!["instance".into()]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_topk_with_param() {
        let e = parse("topk(3, m)").unwrap();
        match e {
            Expr::Aggregate { op, param, .. } => {
                assert_eq!(op, AggOp::Topk);
                assert_eq!(*param.unwrap(), Expr::NumberLiteral(3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn topk_without_param_is_error() {
        assert!(parse("topk(m)").is_err());
        assert!(parse("sum(3, m)").is_err());
    }

    #[test]
    fn parses_paper_success_rate_shape() {
        // The expression shape from §4.2.3.
        let e = parse(
            "100 * sum(amflcs_lcs_ni_lr_success) / sum(amflcs_lcs_ni_lr_attempt)",
        )
        .unwrap();
        assert_eq!(
            e.metric_names(),
            vec!["amflcs_lcs_ni_lr_success", "amflcs_lcs_ni_lr_attempt"]
        );
    }

    #[test]
    fn precedence_mul_before_add() {
        let e = parse("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pow_is_right_assoc() {
        let e = parse("2 ^ 3 ^ 2").unwrap();
        match e {
            Expr::Binary { op: BinOp::Pow, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_bool_comparison() {
        let e = parse("m > bool 5").unwrap();
        match e {
            Expr::Binary { bool_modifier, .. } => assert!(bool_modifier),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("m + bool 5").is_err());
    }

    #[test]
    fn parses_on_group_left() {
        let e = parse("a / on (instance) group_left (nf) b").unwrap();
        match e {
            Expr::Binary { matching, .. } => {
                assert_eq!(matching.on, Some(true));
                assert_eq!(matching.labels, vec!["instance"]);
                let (side, extra) = matching.group.unwrap();
                assert_eq!(side, GroupSide::Left);
                assert_eq!(extra, vec!["nf"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_ignoring() {
        let e = parse("a * ignoring (cause) b").unwrap();
        match e {
            Expr::Binary { matching, .. } => {
                assert_eq!(matching.on, Some(false));
                assert_eq!(matching.labels, vec!["cause"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_set_ops() {
        let e = parse("a and b or c unless d").unwrap();
        // or has lowest precedence: (a and b) or (c unless d)
        match e {
            Expr::Binary { op: BinOp::Or, lhs, rhs, .. } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::And, .. }));
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Unless, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_unary_minus() {
        let e = parse("-m + 3").unwrap();
        match e {
            Expr::Binary { op: BinOp::Add, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Neg(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_label_replace_with_strings() {
        let e = parse(r#"label_replace(m, "dst", "$1", "src", "(.*)")"#).unwrap();
        match e {
            Expr::Call { func, args } => {
                assert_eq!(func, "label_replace");
                assert_eq!(args.len(), 5);
                assert!(matches!(args[1], Expr::StringLiteral(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("m)").is_err());
        assert!(parse("sum(m) extra").is_err());
    }

    #[test]
    fn rejects_range_on_non_selector() {
        assert!(parse("(a + b)[5m]").is_err());
        assert!(parse("rate(m)[5m]").is_err());
    }

    #[test]
    fn rejects_offset_on_non_selector() {
        assert!(parse("(a + b) offset 5m").is_err());
    }

    #[test]
    fn metric_named_like_agg_keyword_is_selector() {
        // `sum` followed by `{...}` is a metric named sum.
        let e = parse(r#"sum{x="1"}"#).unwrap();
        assert!(matches!(e, Expr::VectorSelector { .. }));
    }

    #[test]
    fn parses_nested_parens() {
        let e = parse("((m))").unwrap();
        assert!(matches!(e, Expr::Paren(_)));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }
}

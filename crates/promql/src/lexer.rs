//! PromQL lexer.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// Identifier or keyword (`sum`, `rate`, `metric_name`, `by`, …).
    Ident(String),
    /// Numeric literal (including `1e9`, `.5`, `0x1f` is not supported).
    Number(f64),
    /// String literal (single or double quoted), unescaped.
    Str(String),
    /// Duration literal, milliseconds (e.g. `5m` → 300000).
    Duration(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Gte,
    /// `<=`
    Lte,
    /// `=`
    Assign,
    /// `=~`
    ReMatch,
    /// `!~`
    NotReMatch,
    /// `:` (subquery step separator; colons *inside* identifiers stay
    /// part of the identifier, as in recording-rule names)
    Colon,
}

/// A token plus its byte offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Tokenise a PromQL expression.
pub fn lex(input: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        // Decode the full char so multi-byte UTF-8 is either handled
        // (strings) or rejected cleanly (everywhere else) without ever
        // slicing inside a code point.
        let c = input[i..].chars().next().expect("i is a char boundary");
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(SpannedToken { token: Token::LParen, offset: start });
                i += 1;
            }
            ')' => {
                out.push(SpannedToken { token: Token::RParen, offset: start });
                i += 1;
            }
            '{' => {
                out.push(SpannedToken { token: Token::LBrace, offset: start });
                i += 1;
            }
            '}' => {
                out.push(SpannedToken { token: Token::RBrace, offset: start });
                i += 1;
            }
            '[' => {
                out.push(SpannedToken { token: Token::LBracket, offset: start });
                i += 1;
            }
            ']' => {
                out.push(SpannedToken { token: Token::RBracket, offset: start });
                i += 1;
            }
            ',' => {
                out.push(SpannedToken { token: Token::Comma, offset: start });
                i += 1;
            }
            '+' => {
                out.push(SpannedToken { token: Token::Plus, offset: start });
                i += 1;
            }
            '-' => {
                out.push(SpannedToken { token: Token::Minus, offset: start });
                i += 1;
            }
            '*' => {
                out.push(SpannedToken { token: Token::Star, offset: start });
                i += 1;
            }
            '/' => {
                out.push(SpannedToken { token: Token::Slash, offset: start });
                i += 1;
            }
            '%' => {
                out.push(SpannedToken { token: Token::Percent, offset: start });
                i += 1;
            }
            '^' => {
                out.push(SpannedToken { token: Token::Caret, offset: start });
                i += 1;
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken { token: Token::EqEq, offset: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'~' {
                    out.push(SpannedToken { token: Token::ReMatch, offset: start });
                    i += 2;
                } else {
                    out.push(SpannedToken { token: Token::Assign, offset: start });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken { token: Token::NotEq, offset: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'~' {
                    out.push(SpannedToken { token: Token::NotReMatch, offset: start });
                    i += 2;
                } else {
                    return Err(ParseError::new("unexpected '!'", start));
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken { token: Token::Gte, offset: start });
                    i += 2;
                } else {
                    out.push(SpannedToken { token: Token::Gt, offset: start });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken { token: Token::Lte, offset: start });
                    i += 2;
                } else {
                    out.push(SpannedToken { token: Token::Lt, offset: start });
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                let mut closed = false;
                // Char-aware scan: string literals may contain arbitrary
                // UTF-8 (label values are free-form).
                let mut chars = input[i..].char_indices().peekable();
                while let Some((off, ch)) = chars.next() {
                    if ch == '\\' {
                        match chars.next() {
                            Some((esc_off, esc)) => {
                                s.push(match esc {
                                    'n' => '\n',
                                    't' => '\t',
                                    '\\' => '\\',
                                    '"' => '"',
                                    '\'' => '\'',
                                    other => other,
                                });
                                let _ = esc_off;
                            }
                            None => break,
                        }
                    } else if ch == quote {
                        closed = true;
                        i += off + ch.len_utf8();
                        break;
                    } else {
                        s.push(ch);
                    }
                }
                if !closed {
                    return Err(ParseError::new("unterminated string literal", start));
                }
                out.push(SpannedToken { token: Token::Str(s), offset: start });
            }
            '0'..='9' | '.' => {
                let (tok, next) = lex_number_or_duration(input, i)?;
                out.push(SpannedToken { token: tok, offset: start });
                i = next;
            }
            ':' => {
                out.push(SpannedToken { token: Token::Colon, offset: start });
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = bytes[j];
                    if ch.is_ascii_alphanumeric() || ch == b'_' || ch == b':' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(SpannedToken {
                    token: Token::Ident(input[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(format!("unexpected character '{other}'"), start));
            }
        }
    }
    Ok(out)
}

/// Parse a number, or a duration when a unit suffix follows.
fn lex_number_or_duration(input: &str, start: usize) -> Result<(Token, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut i = start;
    // Mantissa digits and dot.
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
        i += 1;
    }
    // Exponent.
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let num: f64 = input[start..i]
                .parse()
                .map_err(|_| ParseError::new("invalid number", start))?;
            return Ok((Token::Number(num), i));
        }
    }
    // Duration suffix?
    if i < bytes.len() {
        let rest = &input[i..];
        for (suffix, ms) in [
            ("ms", 1i64),
            ("s", 1000),
            ("m", 60_000),
            ("h", 3_600_000),
            ("d", 86_400_000),
            ("w", 604_800_000),
            ("y", 31_536_000_000),
        ] {
            if rest.starts_with(suffix) {
                // Ensure the suffix isn't the start of an identifier
                // (`5months` is invalid, not a duration).
                let after = i + suffix.len();
                let next_ok = after >= bytes.len()
                    || !( (bytes[after] as char).is_ascii_alphanumeric() || bytes[after] == b'_');
                // Longest match: check "ms" before "m" — ordering in the
                // array handles that.
                if next_ok {
                    let num: f64 = input[start..i]
                        .parse()
                        .map_err(|_| ParseError::new("invalid duration", start))?;
                    return Ok((Token::Duration((num * ms as f64) as i64), after));
                }
            }
        }
    }
    let text = &input[start..i];
    if text == "." {
        return Err(ParseError::new("lone '.' is not a number", start));
    }
    let num: f64 = text
        .parse()
        .map_err(|_| ParseError::new("invalid number", start))?;
    Ok((Token::Number(num), i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_selector_with_matchers() {
        assert_eq!(
            toks(r#"metric{nf="amf",proc=~"auth.*"}"#),
            vec![
                Token::Ident("metric".into()),
                Token::LBrace,
                Token::Ident("nf".into()),
                Token::Assign,
                Token::Str("amf".into()),
                Token::Comma,
                Token::Ident("proc".into()),
                Token::ReMatch,
                Token::Str("auth.*".into()),
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn lexes_durations() {
        assert_eq!(toks("[5m]"), vec![Token::LBracket, Token::Duration(300_000), Token::RBracket]);
        assert_eq!(toks("30s"), vec![Token::Duration(30_000)]);
        assert_eq!(toks("100ms"), vec![Token::Duration(100)]);
        assert_eq!(toks("1h"), vec![Token::Duration(3_600_000)]);
        assert_eq!(toks("2d"), vec![Token::Duration(172_800_000)]);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42"), vec![Token::Number(42.0)]);
        assert_eq!(toks("4.25"), vec![Token::Number(4.25)]);
        assert_eq!(toks("1e9"), vec![Token::Number(1e9)]);
        assert_eq!(toks("2.5e-3"), vec![Token::Number(2.5e-3)]);
        assert_eq!(toks(".5"), vec![Token::Number(0.5)]);
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a + b - c * d / e % f ^ g"),
            vec![
                Token::Ident("a".into()),
                Token::Plus,
                Token::Ident("b".into()),
                Token::Minus,
                Token::Ident("c".into()),
                Token::Star,
                Token::Ident("d".into()),
                Token::Slash,
                Token::Ident("e".into()),
                Token::Percent,
                Token::Ident("f".into()),
                Token::Caret,
                Token::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn lexes_comparisons() {
        assert_eq!(
            toks("a == b != c >= d <= e > f < g"),
            vec![
                Token::Ident("a".into()),
                Token::EqEq,
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Ident("c".into()),
                Token::Gte,
                Token::Ident("d".into()),
                Token::Lte,
                Token::Ident("e".into()),
                Token::Gt,
                Token::Ident("f".into()),
                Token::Lt,
                Token::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\"b""#), vec![Token::Str("a\"b".into())]);
        assert_eq!(toks(r#"'x\n'"#), vec![Token::Str("x\n".into())]);
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex(r#""abc"#).is_err());
    }

    #[test]
    fn errors_on_bad_char() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("a # comment\n+ b"), vec![
            Token::Ident("a".into()),
            Token::Plus,
            Token::Ident("b".into()),
        ]);
    }

    #[test]
    fn identifier_with_colon_for_recording_rules() {
        assert_eq!(toks("job:rate:5m"), vec![Token::Ident("job:rate:5m".into())]);
    }

    #[test]
    fn duration_not_confused_with_identifier() {
        // `5months` must not lex as the duration 5m + `onths`; the
        // suffix check falls back to Number(5) + Ident("months"),
        // which the parser then rejects as adjacent tokens.
        assert_eq!(
            toks("5months"),
            vec![Token::Number(5.0), Token::Ident("months".into())]
        );
        assert!(crate::parser::parse("5months").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let ts = lex("ab + cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 3);
        assert_eq!(ts[2].offset, 5);
    }
}

//! The vectorized executor.
//!
//! Evaluates a [`PhysicalPlan`] against decoded column batches. The
//! context memoises each scan's batches, so a range query decodes and
//! matches every selector **once** and each step is two binary
//! searches plus the kernel arithmetic per series — this is where the
//! order-of-magnitude win over the per-step interpreter comes from.
//!
//! Everything observable matches the interpreter exactly: result
//! values (bit-for-bit — shared kernels, same op order), result
//! ordering (same sorts in the same order), and the samples-visited
//! accounting (charged per window in storage order, so a shared budget
//! trips at the same total with the same message).

use crate::batch::SeriesBatch;
use crate::engine::RangeResult;
use crate::error::EvalError;
use crate::eval::kernels::ParamPos;
use crate::eval::{binop, Evaluator};
use crate::plan::{PhysicalPlan, PlanNode};
use crate::value::{RangeSeries, Value, VectorSample};
use dio_tsdb::{Labels, MetricStore, Sample};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// One selector's materialised batches plus everything about the
/// result that is invariant across evaluation steps.
///
/// The interpreter re-derives all of this *every step*: it re-sorts
/// outputs by labels, re-clones label sets, and re-drops metric names.
/// For a fixed store the series set behind a selector never changes
/// between steps, so the executor computes each once:
///
/// * `order_full` — batch indices sorted by full labels, the order
///   instant and matrix scans emit in ([`crate::eval::sort_vector`] is
///   a stable sort, so sorting any present-subset of an already-sorted
///   sequence reproduces the induced order);
/// * `order_fused` — indices sorted by (name-dropped labels, full
///   labels): the order that replays the interpreter's
///   sort-by-full-labels → kernel → drop names → stable re-sort
///   sequence for fused range kernels;
/// * `dropped` — per-batch name-dropped labels, cloned per step as a
///   reference-count bump.
struct ScanData {
    batches: Vec<SeriesBatch>,
    order_full: Vec<usize>,
    order_fused: Vec<usize>,
    dropped: Vec<Labels>,
}

impl ScanData {
    fn build(batches: Vec<SeriesBatch>) -> ScanData {
        let dropped: Vec<Labels> = batches.iter().map(|b| b.labels.drop_name()).collect();
        let mut order_full: Vec<usize> = (0..batches.len()).collect();
        order_full.sort_by(|&a, &b| batches[a].labels.cmp(&batches[b].labels));
        let mut order_fused = order_full.clone();
        order_fused.sort_by(|&a, &b| dropped[a].cmp(&dropped[b]));
        ScanData {
            batches,
            order_full,
            order_fused,
            dropped,
        }
    }
}

/// One memoised scan: the lower time bound it was materialised from
/// and the decoded batches.
type ScanSlot = Option<(i64, Rc<ScanData>)>;

/// The evaluation grid of a range query: `steps` timestamps starting
/// at `start`, `step_ms` apart.
#[derive(Clone, Copy)]
pub struct StepGrid {
    /// First evaluation timestamp.
    pub start: i64,
    /// Number of steps (inclusive of both ends).
    pub steps: usize,
    /// Spacing between steps in milliseconds.
    pub step_ms: i64,
}

/// Execution context: one per query (instant) or per range query, so
/// scan memoisation spans every evaluation step.
pub struct ExecCtx<'a> {
    store: &'a MetricStore,
    plan: &'a PhysicalPlan,
    lookback_ms: i64,
    max_samples: usize,
    samples_visited: Cell<usize>,
    /// Per-scan memo: the materialised lower time bound and the
    /// decoded batches. Re-built only if a later evaluation needs an
    /// earlier bound (range steps ascend, so normally built once).
    scans: RefCell<Vec<ScanSlot>>,
}

impl<'a> ExecCtx<'a> {
    /// A fresh context over `plan`.
    pub fn new(
        store: &'a MetricStore,
        plan: &'a PhysicalPlan,
        lookback_ms: i64,
        max_samples: usize,
    ) -> Self {
        ExecCtx {
            store,
            plan,
            lookback_ms,
            max_samples,
            samples_visited: Cell::new(0),
            scans: RefCell::new(vec![None; plan.scans.len()]),
        }
    }

    /// Samples charged so far (cumulative across steps).
    pub fn samples_visited(&self) -> usize {
        self.samples_visited.get()
    }

    /// Reset the sample counter (range queries apply the budget per
    /// step, matching the interpreter's fresh evaluator per step).
    pub fn reset_samples(&self) {
        self.samples_visited.set(0);
    }

    /// Evaluate the plan root at timestamp `ts`.
    pub fn eval(&self, ts: i64) -> Result<Value, EvalError> {
        self.eval_node(&self.plan.root, ts)
    }

    fn charge(&self, n: usize) -> Result<(), EvalError> {
        let total = self.samples_visited.get() + n;
        self.samples_visited.set(total);
        if self.max_samples > 0 && total > self.max_samples {
            return Err(EvalError::LimitExceeded(format!(
                "query touched {total} samples, limit is {}",
                self.max_samples
            )));
        }
        Ok(())
    }

    /// Materialised batches for scan `scan`, in storage order (the
    /// order the interpreter charges in). Built on first touch and
    /// reused by every later node and step; materialisation is bounded
    /// below by the earliest timestamp the query can reach from `ts`
    /// (offset + widest range + lookback), so an instant query over a
    /// year of sealed chunks decodes only the recent ones. Sealed
    /// chunks are skipped by min/max metadata without decoding;
    /// left-partial chunks come in whole, which only adds early
    /// samples the window binary-searches step over — windows, values,
    /// and charge totals are unchanged.
    fn scan_data(&self, scan: usize, ts: i64) -> Rc<ScanData> {
        let spec = &self.plan.scans[scan];
        let needed_lo = ts
            .saturating_sub(spec.offset_ms)
            .saturating_sub(spec.max_range_ms)
            .saturating_sub(self.lookback_ms);
        if let Some((lo, data)) = &self.scans.borrow()[scan] {
            if *lo <= needed_lo {
                return Rc::clone(data);
            }
        }
        let cache = self.store.page_cache();
        let batches: Vec<SeriesBatch> = self
            .store
            .select_indices(&spec.matchers)
            .into_iter()
            .map(|id| {
                let series = self.store.series_at(id);
                let cols = series.cols_from(needed_lo, cache);
                SeriesBatch {
                    labels: series.labels().clone(),
                    ts: cols.ts,
                    vals: cols.vals,
                }
            })
            .collect();
        let rc = Rc::new(ScanData::build(batches));
        self.scans.borrow_mut()[scan] = Some((needed_lo, Rc::clone(&rc)));
        rc
    }

    /// Whole-range fast path: when the plan root is a fused range
    /// kernel, evaluate every step in one pass per series, pushing
    /// points straight into per-series buffers. This skips the
    /// per-step `Value::Vector` allocation and the label-keyed
    /// accumulation the generic range loop needs, which is most of the
    /// per-step overhead for `rate(m[5m])`-shaped panel queries.
    /// Returns `None` when the root isn't a fused kernel (the caller
    /// falls back to the step loop).
    ///
    /// Everything observable matches the step loop: per-step budget
    /// reset and storage-order charging, param evaluation order, and
    /// the output — batches sharing name-dropped labels merge into one
    /// series in emission order, exactly as the generic loop's
    /// label-keyed accumulator merges them, and `order_fused` keeps the
    /// result label-sorted.
    pub fn eval_range(
        &self,
        grid: StepGrid,
    ) -> Option<Result<Vec<RangeResult>, EvalError>> {
        match &self.plan.root {
            PlanNode::FusedRange {
                scan,
                range_ms,
                kernel,
                param,
            } => Some(self.range_fused(*scan, *range_ms, kernel, param, grid)),
            PlanNode::InstantScan { scan } => Some(self.range_instant(*scan, grid)),
            _ => None,
        }
    }

    /// Whole-range fast path for a bare selector root — plotting raw
    /// series over time. Full labels are unique per store, so each
    /// batch maps to exactly one output series; per step this is a
    /// cursor advance and a lookback check per series.
    fn range_instant(&self, scan: usize, grid: StepGrid) -> Result<Vec<RangeResult>, EvalError> {
        let StepGrid { start, steps, step_ms } = grid;
        let data = self.scan_data(scan, start);
        let offset_ms = self.plan.scans[scan].offset_ms;
        let n = data.batches.len();
        let mut points: Vec<Vec<Sample>> = vec![Vec::new(); n];
        // First column index with ts > at, advanced monotonically.
        let mut cursors: Vec<usize> = vec![0; n];
        for k in 0..steps {
            let ts = start + k as i64 * step_ms;
            self.reset_samples();
            let at = ts - offset_ms;
            for (i, batch) in data.batches.iter().enumerate() {
                let mut c = cursors[i];
                while c < batch.ts.len() && batch.ts[c] <= at {
                    c += 1;
                }
                cursors[i] = c;
                if c > 0 && at - batch.ts[c - 1] <= self.lookback_ms {
                    self.charge(1)?;
                    points[i].push(Sample::new(ts, batch.vals[c - 1]));
                }
            }
        }
        Ok(data
            .order_full
            .iter()
            .filter_map(|&i| {
                if points[i].is_empty() {
                    return None;
                }
                Some(RangeResult {
                    labels: data.batches[i].labels.clone(),
                    points: std::mem::take(&mut points[i]),
                })
            })
            .collect())
    }

    fn range_fused(
        &self,
        scan: usize,
        range_ms: i64,
        kernel: &crate::eval::kernels::RangeKernel,
        param: &Option<Box<PlanNode>>,
        grid: StepGrid,
    ) -> Result<Vec<RangeResult>, EvalError> {
        let StepGrid { start, steps, step_ms } = grid;
        let data = self.scan_data(scan, start);
        let offset_ms = self.plan.scans[scan].offset_ms;
        let n = data.batches.len();
        // Runs of equal dropped labels are consecutive in `order_fused`
        // (it is sorted by them); each run becomes one output series.
        let mut groups: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && data.dropped[data.order_fused[j]] == data.dropped[data.order_fused[i]] {
                j += 1;
            }
            groups.push((i, j));
            i = j;
        }
        let mut points: Vec<Vec<Sample>> = vec![Vec::new(); groups.len()];
        let mut windows: Vec<(usize, usize)> = vec![(0, 0); n];
        for k in 0..steps {
            let ts = start + k as i64 * step_ms;
            self.reset_samples();
            let mut p = 0.0;
            if kernel.param_pos() == Some(ParamPos::BeforeMatrix) {
                p = self.param_scalar(kernel.name(), param, ts)?;
            }
            let at = ts - offset_ms;
            for (i, batch) in data.batches.iter().enumerate() {
                // Steps ascend, so last step's bounds are valid hints.
                let (lo, hi) = batch.window_from(at - range_ms, at, windows[i]);
                if hi > lo {
                    self.charge(hi - lo)?;
                }
                windows[i] = (lo, hi);
            }
            if kernel.param_pos() == Some(ParamPos::AfterMatrix) {
                p = self.param_scalar(kernel.name(), param, ts)?;
            }
            for (g, &(g_lo, g_hi)) in groups.iter().enumerate() {
                for &i in &data.order_fused[g_lo..g_hi] {
                    let (lo, hi) = windows[i];
                    if hi <= lo {
                        continue;
                    }
                    let batch = &data.batches[i];
                    if let Some(value) = kernel.apply(p, &batch.ts[lo..hi], &batch.vals[lo..hi]) {
                        points[g].push(Sample::new(ts, value));
                    }
                }
            }
        }
        Ok(groups
            .iter()
            .zip(points)
            .filter(|(_, pts)| !pts.is_empty())
            .map(|(&(g_lo, _), pts)| RangeResult {
                labels: data.dropped[data.order_fused[g_lo]].clone(),
                points: pts,
            })
            .collect())
    }

    fn eval_node(&self, node: &PlanNode, ts: i64) -> Result<Value, EvalError> {
        match node {
            PlanNode::Number(n) => Ok(Value::Scalar(*n)),
            PlanNode::String(s) => Ok(Value::Str(s.clone())),
            PlanNode::InstantScan { scan } => {
                let data = self.scan_data(*scan, ts);
                let at = ts - self.plan.scans[*scan].offset_ms;
                // Probe and charge in storage order (the interpreter's
                // order, so budget trips at the same totals)…
                let mut values: Vec<Option<f64>> = Vec::with_capacity(data.batches.len());
                for batch in &data.batches {
                    let v = batch.value_at(at, self.lookback_ms);
                    if v.is_some() {
                        self.charge(1)?;
                    }
                    values.push(v);
                }
                // …then emit in the precomputed label order: no
                // per-step sort, labels clone is a refcount bump.
                let mut out = Vec::with_capacity(data.batches.len());
                for &i in &data.order_full {
                    if let Some(value) = values[i] {
                        out.push(VectorSample {
                            labels: data.batches[i].labels.clone(),
                            value,
                        });
                    }
                }
                Ok(Value::Vector(out))
            }
            PlanNode::RangeScan { scan, range_ms } => {
                let data = self.scan_data(*scan, ts);
                let at = ts - self.plan.scans[*scan].offset_ms;
                let mut windows: Vec<(usize, usize)> = Vec::with_capacity(data.batches.len());
                for batch in &data.batches {
                    let (lo, hi) = batch.window(at - range_ms, at);
                    if hi > lo {
                        self.charge(hi - lo)?;
                    }
                    windows.push((lo, hi));
                }
                let mut out = Vec::with_capacity(data.batches.len());
                for &i in &data.order_full {
                    let (lo, hi) = windows[i];
                    if hi > lo {
                        let batch = &data.batches[i];
                        out.push(RangeSeries {
                            labels: batch.labels.clone(),
                            samples: batch.ts[lo..hi]
                                .iter()
                                .zip(&batch.vals[lo..hi])
                                .map(|(&t, &v)| Sample::new(t, v))
                                .collect(),
                        });
                    }
                }
                Ok(Value::Matrix(out))
            }
            PlanNode::FusedRange {
                scan,
                range_ms,
                kernel,
                param,
            } => {
                // Argument-resolution order mirrors the interpreter:
                // `quantile_over_time(φ, m[r])` evaluates φ before the
                // matrix, `predict_linear(m[r], h)` after.
                let mut p = 0.0;
                if kernel.param_pos() == Some(ParamPos::BeforeMatrix) {
                    p = self.param_scalar(kernel.name(), param, ts)?;
                }
                let data = self.scan_data(*scan, ts);
                let at = ts - self.plan.scans[*scan].offset_ms;
                // Charge in storage order (interpreter order).
                let mut windows: Vec<(usize, usize)> = Vec::with_capacity(data.batches.len());
                for batch in &data.batches {
                    let (lo, hi) = batch.window(at - range_ms, at);
                    if hi > lo {
                        self.charge(hi - lo)?;
                    }
                    windows.push((lo, hi));
                }
                if kernel.param_pos() == Some(ParamPos::AfterMatrix) {
                    p = self.param_scalar(kernel.name(), param, ts)?;
                }
                // The interpreter sorts the matrix by full labels, runs
                // the kernel, drops names, then stable-sorts by the
                // dropped labels. `order_fused` is that exact composed
                // permutation, precomputed once — per step this is just
                // the kernel arithmetic plus refcount bumps.
                let mut out = Vec::with_capacity(data.batches.len());
                for &i in &data.order_fused {
                    let (lo, hi) = windows[i];
                    if hi <= lo {
                        continue;
                    }
                    let batch = &data.batches[i];
                    if let Some(value) =
                        kernel.apply(p, &batch.ts[lo..hi], &batch.vals[lo..hi])
                    {
                        out.push(VectorSample {
                            labels: data.dropped[i].clone(),
                            value,
                        });
                    }
                }
                Ok(Value::Vector(out))
            }
            PlanNode::Neg(inner) => match self.eval_node(inner, ts)? {
                Value::Scalar(v) => Ok(Value::Scalar(-v)),
                Value::Vector(v) => Ok(Value::Vector(
                    v.into_iter()
                        .map(|s| VectorSample {
                            labels: s.labels.drop_name(),
                            value: -s.value,
                        })
                        .collect(),
                )),
                other => Err(EvalError::TypeMismatch(format!(
                    "cannot negate {}",
                    other.type_name()
                ))),
            },
            PlanNode::Binary {
                op,
                lhs,
                rhs,
                bool_modifier,
                matching,
            } => {
                let l = self.eval_node(lhs, ts)?;
                let r = self.eval_node(rhs, ts)?;
                binop::eval_binary(*op, l, r, *bool_modifier, matching)
            }
            PlanNode::Aggregate {
                op,
                param,
                input,
                grouping,
            } => {
                let param_val = match param {
                    Some(p) => Some(self.eval_node(p, ts)?),
                    None => None,
                };
                let inner = self.eval_node(input, ts)?;
                crate::eval::aggregate::eval_aggregate(*op, param_val, inner, grouping)
            }
            PlanNode::Interp(expr) => {
                // Hand the sub-expression to the interpreter with the
                // shared sample budget threaded through, then absorb
                // its accounting.
                let ev = Evaluator::with_visited(
                    self.store,
                    self.lookback_ms,
                    self.max_samples,
                    self.samples_visited.get(),
                );
                let out = ev.eval(expr, ts);
                self.samples_visited.set(ev.samples_visited());
                out
            }
        }
    }

    fn param_scalar(
        &self,
        func: &str,
        param: &Option<Box<PlanNode>>,
        ts: i64,
    ) -> Result<f64, EvalError> {
        let node = param
            .as_deref()
            .expect("planner fuses parameterised kernels only with a param");
        match self.eval_node(node, ts)? {
            Value::Scalar(s) => Ok(s),
            other => Err(EvalError::TypeMismatch(format!(
                "{func} requires a scalar argument, got {}",
                other.type_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use dio_tsdb::Labels;

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        for inst in ["a", "b"] {
            let l = Labels::from_pairs([("__name__", "reqs_total"), ("i", inst)]);
            for k in 0..=10i64 {
                st.append(l.clone(), Sample::new(k * 60_000, (k * 60) as f64))
                    .unwrap();
            }
        }
        st
    }

    fn both(q: &str, ts: i64) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
        let st = store();
        let expr = parse(q).unwrap();
        let plan = crate::plan::plan(&expr);
        let ctx = ExecCtx::new(&st, &plan, 300_000, 0);
        let vectorized = ctx.eval(ts);
        let ev = Evaluator::new(&st, 300_000, 0);
        let interp = ev.eval(&expr, ts);
        (vectorized, interp)
    }

    #[test]
    fn agrees_with_interpreter_on_core_shapes() {
        for q in [
            "reqs_total",
            "reqs_total[5m]",
            "sum(rate(reqs_total[5m]))",
            "avg_over_time(reqs_total[7m])",
            "quantile_over_time(0.5, reqs_total[10m])",
            "predict_linear(reqs_total[10m], 60)",
            "-reqs_total",
            "sum by (i) (reqs_total) / 2",
            "topk(1, reqs_total)",
        ] {
            let (v, i) = both(q, 600_000);
            assert_eq!(v, i, "{q}");
        }
    }

    #[test]
    fn scan_memoisation_survives_steps() {
        let st = store();
        let expr = parse("sum(rate(reqs_total[5m]))").unwrap();
        let plan = crate::plan::plan(&expr);
        let ctx = ExecCtx::new(&st, &plan, 300_000, 0);
        let a = ctx.eval(300_000).unwrap();
        let b = ctx.eval(600_000).unwrap();
        assert_ne!(a, Value::Vector(vec![]));
        assert_ne!(b, Value::Vector(vec![]));
        // One scan, materialised once.
        assert_eq!(ctx.scans.borrow().iter().filter(|s| s.is_some()).count(), 1);
    }

    #[test]
    fn budget_trips_like_interpreter() {
        let st = store();
        let expr = parse("sum(rate(reqs_total[10m]))").unwrap();
        let plan = crate::plan::plan(&expr);
        let ctx = ExecCtx::new(&st, &plan, 300_000, 5);
        let err = ctx.eval(600_000).unwrap_err();
        let ev = Evaluator::new(&st, 300_000, 5);
        let ierr = ev.eval(&expr, 600_000).unwrap_err();
        assert_eq!(err, ierr);
    }

    #[test]
    fn interp_fallback_charges_shared_budget() {
        let st = store();
        // Subquery → interp node; budget must still apply.
        let expr = parse("max_over_time(sum(reqs_total)[5m:1m])").unwrap();
        let plan = crate::plan::plan(&expr);
        assert_eq!(plan.root.opcode(), "interp");
        let ctx = ExecCtx::new(&st, &plan, 300_000, 3);
        assert!(matches!(
            ctx.eval(600_000),
            Err(EvalError::LimitExceeded(_))
        ));
        let ctx = ExecCtx::new(&st, &plan, 300_000, 0);
        let v = ctx.eval(600_000).unwrap();
        assert!(ctx.samples_visited() > 0);
        let ev = Evaluator::new(&st, 300_000, 0);
        assert_eq!(v, ev.eval(&expr, 600_000).unwrap());
        assert_eq!(ctx.samples_visited(), ev.samples_visited());
    }
}

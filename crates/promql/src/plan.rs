//! Physical query plans.
//!
//! The planner compiles a parsed PromQL AST into a small tree of batch
//! operators plus a side table of *scans* — deduplicatable selector
//! specs the executor materialises (and memoises) as decoded column
//! batches. Everything the batch operators don't cover compiles to an
//! [`PlanNode::Interp`] node that defers to the tree-walking
//! interpreter, which doubles as the differential-testing oracle: the
//! two engines must agree byte-for-byte on every query.
//!
//! Operator set (see DESIGN.md for the full opcode table):
//!
//! | opcode        | PromQL shape                              |
//! |---------------|-------------------------------------------|
//! | `number`      | scalar literal                            |
//! | `string`      | string literal                            |
//! | `scan`        | `name{matchers} offset o`                 |
//! | `range_scan`  | `sel[r]`                                  |
//! | `fused_range` | `rate(sel[r])`, `avg_over_time(…)`, …     |
//! | `neg`         | `-expr`                                   |
//! | `binop`       | arithmetic / comparison / set operators   |
//! | `agg`         | `sum by (l) (…)`, `topk(k, …)`, …         |
//! | `interp`      | everything else (subqueries, `absent`, …) |

use crate::ast::{AggOp, BinOp, Expr, Grouping, VectorMatching};
use crate::eval::kernels::RangeKernel;
use dio_tsdb::{MatchOp, Matcher};

/// One physical selector: the full matcher list (including the
/// implicit `__name__` matcher) plus the selector offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSpec {
    /// Matchers, including the implicit name matcher.
    pub matchers: Vec<Matcher>,
    /// `offset` in milliseconds.
    pub offset_ms: i64,
    /// Widest `[range]` referencing this scan, in milliseconds (0 for
    /// instant-only scans). Not part of the dedup key; the executor
    /// uses it to bound how far back it must materialise columns.
    pub max_range_ms: i64,
}

/// A batch operator in the physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scalar literal.
    Number(f64),
    /// String literal.
    String(String),
    /// Instant-vector selector over scan `scan`.
    InstantScan {
        /// Index into [`PhysicalPlan::scans`].
        scan: usize,
    },
    /// Range-vector selector over scan `scan`.
    RangeScan {
        /// Index into [`PhysicalPlan::scans`].
        scan: usize,
        /// Window length in milliseconds.
        range_ms: i64,
    },
    /// A range function fused with its selector: the kernel runs
    /// directly over column windows, never materialising a matrix.
    FusedRange {
        /// Index into [`PhysicalPlan::scans`].
        scan: usize,
        /// Window length in milliseconds.
        range_ms: i64,
        /// The shared column kernel.
        kernel: RangeKernel,
        /// Compiled scalar parameter (`quantile_over_time`,
        /// `predict_linear`).
        param: Option<Box<PlanNode>>,
    },
    /// Unary negation.
    Neg(Box<PlanNode>),
    /// Binary operator over two sub-plans.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<PlanNode>,
        /// Right operand.
        rhs: Box<PlanNode>,
        /// `bool` modifier on comparisons.
        bool_modifier: bool,
        /// Vector matching modifiers.
        matching: VectorMatching,
    },
    /// Aggregation over a sub-plan.
    Aggregate {
        /// Operator.
        op: AggOp,
        /// Compiled parameter (topk, quantile, count_values).
        param: Option<Box<PlanNode>>,
        /// The aggregated sub-plan.
        input: Box<PlanNode>,
        /// Grouping modifier.
        grouping: Grouping,
    },
    /// Fallback: evaluate the expression with the tree-walking
    /// interpreter (subqueries, `histogram_quantile`, `absent`, label
    /// manipulation, time functions, …).
    Interp(Expr),
}

impl PlanNode {
    /// Short opcode name, for explain output and tests.
    pub fn opcode(&self) -> &'static str {
        match self {
            PlanNode::Number(_) => "number",
            PlanNode::String(_) => "string",
            PlanNode::InstantScan { .. } => "scan",
            PlanNode::RangeScan { .. } => "range_scan",
            PlanNode::FusedRange { .. } => "fused_range",
            PlanNode::Neg(_) => "neg",
            PlanNode::Binary { .. } => "binop",
            PlanNode::Aggregate { .. } => "agg",
            PlanNode::Interp(_) => "interp",
        }
    }
}

/// A compiled query: operator tree plus the scan table.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Root operator.
    pub root: PlanNode,
    /// Physical selectors referenced by scan index. Identical
    /// selectors share one entry (and thus one materialised batch set).
    pub scans: Vec<ScanSpec>,
}

/// Compile `expr` into a physical plan.
pub fn plan(expr: &Expr) -> PhysicalPlan {
    let mut planner = Planner { scans: Vec::new() };
    let root = planner.compile(expr);
    PhysicalPlan {
        root,
        scans: planner.scans,
    }
}

struct Planner {
    scans: Vec<ScanSpec>,
}

impl Planner {
    fn compile(&mut self, expr: &Expr) -> PlanNode {
        match expr {
            Expr::NumberLiteral(n) => PlanNode::Number(*n),
            Expr::StringLiteral(s) => PlanNode::String(s.clone()),
            Expr::Paren(e) => self.compile(e),
            Expr::VectorSelector {
                name,
                matchers,
                offset_ms,
            } => PlanNode::InstantScan {
                scan: self.scan(name.as_deref(), matchers, *offset_ms, 0),
            },
            Expr::MatrixSelector { selector, range_ms } => {
                match self.compile_range_scan(selector, *range_ms) {
                    Some(node) => node,
                    // A non-selector inside `[..]`: let the interpreter
                    // produce its type error.
                    None => PlanNode::Interp(expr.clone()),
                }
            }
            Expr::Neg(e) => PlanNode::Neg(Box::new(self.compile(e))),
            Expr::Binary {
                op,
                lhs,
                rhs,
                bool_modifier,
                matching,
            } => PlanNode::Binary {
                op: *op,
                lhs: Box::new(self.compile(lhs)),
                rhs: Box::new(self.compile(rhs)),
                bool_modifier: *bool_modifier,
                matching: matching.clone(),
            },
            Expr::Aggregate {
                op,
                param,
                expr: inner,
                grouping,
            } => PlanNode::Aggregate {
                op: *op,
                param: param.as_ref().map(|p| Box::new(self.compile(p))),
                input: Box::new(self.compile(inner)),
                grouping: grouping.clone(),
            },
            Expr::Call { func, args } => self
                .compile_call(func, args)
                .unwrap_or_else(|| PlanNode::Interp(expr.clone())),
            // Subqueries re-evaluate an instant expression at many
            // inner steps; the interpreter handles them.
            Expr::Subquery { .. } => PlanNode::Interp(expr.clone()),
        }
    }

    /// Fuse a range-family call onto its selector scan. `None` when the
    /// shape doesn't fit (wrong arity, subquery argument, exotic
    /// function) — the caller falls back to the interpreter.
    fn compile_call(&mut self, func: &str, args: &[Expr]) -> Option<PlanNode> {
        let kernel = RangeKernel::from_name(func)?;
        let (param_expr, matrix_expr) = match kernel.param_pos() {
            None => {
                if args.len() != 1 {
                    return None;
                }
                (None, &args[0])
            }
            Some(crate::eval::kernels::ParamPos::BeforeMatrix) => {
                if args.len() != 2 {
                    return None;
                }
                (Some(&args[0]), &args[1])
            }
            Some(crate::eval::kernels::ParamPos::AfterMatrix) => {
                if args.len() != 2 {
                    return None;
                }
                (Some(&args[1]), &args[0])
            }
        };
        let (selector, range_ms) = match peel(matrix_expr) {
            Expr::MatrixSelector { selector, range_ms } => (selector, *range_ms),
            _ => return None, // subquery or scalar argument: interpreter
        };
        let PlanNode::RangeScan { scan, .. } = self.compile_range_scan(selector, range_ms)?
        else {
            return None;
        };
        let param = param_expr.map(|p| Box::new(self.compile(p)));
        Some(PlanNode::FusedRange {
            scan,
            range_ms,
            kernel,
            param,
        })
    }

    fn compile_range_scan(&mut self, selector: &Expr, range_ms: i64) -> Option<PlanNode> {
        let Expr::VectorSelector {
            name,
            matchers,
            offset_ms,
        } = selector
        else {
            return None;
        };
        Some(PlanNode::RangeScan {
            scan: self.scan(name.as_deref(), matchers, *offset_ms, range_ms),
            range_ms,
        })
    }

    /// Intern a selector spec, reusing an existing scan when an
    /// identical selector already appeared in the query.
    fn scan(
        &mut self,
        name: Option<&str>,
        matchers: &[Matcher],
        offset_ms: i64,
        range_ms: i64,
    ) -> usize {
        let mut all = Vec::with_capacity(matchers.len() + 1);
        if let Some(n) = name {
            all.push(Matcher {
                name: "__name__".to_string(),
                op: MatchOp::Eq,
                value: n.to_string(),
            });
        }
        all.extend(matchers.iter().cloned());
        // Dedup on (matchers, offset) only; a scan shared between
        // ranges keeps the widest window.
        if let Some(i) = self
            .scans
            .iter()
            .position(|s| s.matchers == all && s.offset_ms == offset_ms)
        {
            self.scans[i].max_range_ms = self.scans[i].max_range_ms.max(range_ms);
            return i;
        }
        self.scans.push(ScanSpec {
            matchers: all,
            offset_ms,
            max_range_ms: range_ms,
        });
        self.scans.len() - 1
    }
}

/// Strip parentheses.
fn peel(expr: &Expr) -> &Expr {
    match expr {
        Expr::Paren(e) => peel(e),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan_of(q: &str) -> PhysicalPlan {
        plan(&parse(q).unwrap())
    }

    #[test]
    fn selector_compiles_to_scan() {
        let p = plan_of(r#"up{instance="a"} offset 5m"#);
        assert_eq!(p.root.opcode(), "scan");
        assert_eq!(p.scans.len(), 1);
        assert_eq!(p.scans[0].offset_ms, 300_000);
        assert_eq!(p.scans[0].matchers.len(), 2);
        assert_eq!(p.scans[0].matchers[0].value, "up");
    }

    #[test]
    fn rate_fuses_onto_scan() {
        let p = plan_of("sum(rate(reqs_total[5m]))");
        let PlanNode::Aggregate { input, .. } = &p.root else {
            panic!("expected agg root, got {}", p.root.opcode());
        };
        let PlanNode::FusedRange {
            kernel, range_ms, ..
        } = input.as_ref()
        else {
            panic!("expected fused_range, got {}", input.opcode());
        };
        assert_eq!(*kernel, RangeKernel::Rate);
        assert_eq!(*range_ms, 300_000);
    }

    #[test]
    fn parameterised_kernels_fuse() {
        let p = plan_of("quantile_over_time(0.9, m[10m])");
        let PlanNode::FusedRange { kernel, param, .. } = &p.root else {
            panic!("expected fused_range");
        };
        assert_eq!(*kernel, RangeKernel::Quantile);
        assert_eq!(param.as_deref(), Some(&PlanNode::Number(0.9)));
        let p = plan_of("predict_linear(m[10m], 60)");
        let PlanNode::FusedRange { kernel, param, .. } = &p.root else {
            panic!("expected fused_range");
        };
        assert_eq!(*kernel, RangeKernel::PredictLinear);
        assert_eq!(param.as_deref(), Some(&PlanNode::Number(60.0)));
    }

    #[test]
    fn identical_selectors_share_a_scan() {
        let p = plan_of("rate(m[5m]) / rate(m[10m]) + avg_over_time(m[5m])");
        // Same selector `m` appears three times; one scan suffices.
        assert_eq!(p.scans.len(), 1);
    }

    #[test]
    fn distinct_selectors_get_distinct_scans() {
        let p = plan_of(r#"a / a{x="1"} + (a offset 1m)"#);
        assert_eq!(p.scans.len(), 3);
    }

    #[test]
    fn exotic_shapes_fall_back_to_interp() {
        assert_eq!(plan_of("absent(m)").root.opcode(), "interp");
        assert_eq!(plan_of("max_over_time(sum(m)[5m:1m])").root.opcode(), "interp");
        assert_eq!(plan_of("histogram_quantile(0.9, m_bucket)").root.opcode(), "interp");
        // Wrong arity on a kernel function: interpreter reports it.
        assert_eq!(plan_of("rate(m[5m], 3)").root.opcode(), "interp");
    }

    #[test]
    fn binary_over_mixed_children() {
        let p = plan_of("sum(rate(a[5m])) / scalar(b)");
        let PlanNode::Binary { lhs, rhs, .. } = &p.root else {
            panic!("expected binop");
        };
        assert_eq!(lhs.opcode(), "agg");
        assert_eq!(rhs.opcode(), "interp");
    }
}

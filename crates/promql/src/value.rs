//! Query result value types.

use dio_tsdb::{Labels, Sample};
use serde::{Deserialize, Serialize};

/// One labelled point of an instant vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorSample {
    /// Series identity.
    pub labels: Labels,
    /// Value at the evaluation timestamp.
    pub value: f64,
}

/// An instant vector: zero or more labelled values at one timestamp.
pub type InstantVector = Vec<VectorSample>;

/// One labelled series of a range vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeSeries {
    /// Series identity.
    pub labels: Labels,
    /// Samples inside the window.
    pub samples: Vec<Sample>,
}

/// A range vector: per-series windows of raw samples.
pub type RangeVector = Vec<RangeSeries>;

/// The result of evaluating an expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A scalar number.
    Scalar(f64),
    /// A string (only produced by string literals).
    Str(String),
    /// An instant vector.
    Vector(InstantVector),
    /// A range vector (matrix).
    Matrix(RangeVector),
}

impl Value {
    /// Type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Str(_) => "string",
            Value::Vector(_) => "instant vector",
            Value::Matrix(_) => "range vector",
        }
    }

    /// Interpret the value as a single number, the way execution
    /// accuracy compares answers: a scalar directly, or a vector with
    /// exactly one sample. `None` for empty/multi-sample vectors,
    /// strings, and matrices.
    pub fn as_scalar_like(&self) -> Option<f64> {
        match self {
            Value::Scalar(v) => Some(*v),
            Value::Vector(v) if v.len() == 1 => Some(v[0].value),
            _ => None,
        }
    }

    /// All numeric values, sorted, used for multi-sample comparisons.
    pub fn numeric_values(&self) -> Vec<f64> {
        let mut vals = match self {
            Value::Scalar(v) => vec![*v],
            Value::Vector(v) => v.iter().map(|s| s.value).collect(),
            Value::Matrix(m) => m
                .iter()
                .flat_map(|s| s.samples.iter().map(|p| p.value))
                .collect(),
            Value::Str(_) => Vec::new(),
        };
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_like_conversions() {
        assert_eq!(Value::Scalar(2.0).as_scalar_like(), Some(2.0));
        let one = Value::Vector(vec![VectorSample {
            labels: Labels::empty(),
            value: 7.0,
        }]);
        assert_eq!(one.as_scalar_like(), Some(7.0));
        let two = Value::Vector(vec![
            VectorSample {
                labels: Labels::empty(),
                value: 1.0,
            },
            VectorSample {
                labels: Labels::from_pairs([("a", "b")]),
                value: 2.0,
            },
        ]);
        assert_eq!(two.as_scalar_like(), None);
        assert_eq!(Value::Vector(vec![]).as_scalar_like(), None);
        assert_eq!(Value::Str("x".into()).as_scalar_like(), None);
    }

    #[test]
    fn numeric_values_sorted() {
        let v = Value::Vector(vec![
            VectorSample {
                labels: Labels::empty(),
                value: 3.0,
            },
            VectorSample {
                labels: Labels::from_pairs([("a", "b")]),
                value: 1.0,
            },
        ]);
        assert_eq!(v.numeric_values(), vec![1.0, 3.0]);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Scalar(1.0).type_name(), "scalar");
        assert_eq!(Value::Vector(vec![]).type_name(), "instant vector");
        assert_eq!(Value::Matrix(vec![]).type_name(), "range vector");
        assert_eq!(Value::Str("s".into()).type_name(), "string");
    }
}

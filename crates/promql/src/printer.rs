//! AST formatting back to PromQL text.

use crate::ast::{Expr, GroupSide, Grouping, VectorMatching};

/// Render an expression as canonical PromQL.
pub fn format_expr(expr: &Expr) -> String {
    match expr {
        Expr::NumberLiteral(n) => format_number(*n),
        Expr::StringLiteral(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Expr::VectorSelector {
            name,
            matchers,
            offset_ms,
        } => {
            let mut out = String::new();
            if let Some(n) = name {
                out.push_str(n);
            }
            if !matchers.is_empty() || name.is_none() {
                let parts: Vec<String> = matchers.iter().map(|m| m.to_string()).collect();
                out.push('{');
                out.push_str(&parts.join(","));
                out.push('}');
            }
            if *offset_ms != 0 {
                out.push_str(&format!(" offset {}", format_duration(*offset_ms)));
            }
            out
        }
        Expr::MatrixSelector { selector, range_ms } => {
            // offset prints after the range in PromQL.
            match selector.as_ref() {
                Expr::VectorSelector {
                    name,
                    matchers,
                    offset_ms,
                } => {
                    let inner = format_expr(&Expr::VectorSelector {
                        name: name.clone(),
                        matchers: matchers.clone(),
                        offset_ms: 0,
                    });
                    let mut out = format!("{inner}[{}]", format_duration(*range_ms));
                    if *offset_ms != 0 {
                        out.push_str(&format!(" offset {}", format_duration(*offset_ms)));
                    }
                    out
                }
                other => format!("{}[{}]", format_expr(other), format_duration(*range_ms)),
            }
        }
        Expr::Subquery {
            expr,
            range_ms,
            step_ms,
            offset_ms,
        } => {
            let step = step_ms.map(format_duration).unwrap_or_default();
            let mut out = format!(
                "{}[{}:{}]",
                format_expr(expr),
                format_duration(*range_ms),
                step
            );
            if *offset_ms != 0 {
                out.push_str(&format!(" offset {}", format_duration(*offset_ms)));
            }
            out
        }
        Expr::Neg(e) => format!("-{}", format_expr(e)),
        Expr::Binary {
            op,
            lhs,
            rhs,
            bool_modifier,
            matching,
        } => {
            let mut mid = op.as_str().to_string();
            if *bool_modifier {
                mid.push_str(" bool");
            }
            mid.push_str(&format_matching(matching));
            format!("{} {} {}", format_expr(lhs), mid, format_expr(rhs))
        }
        Expr::Aggregate {
            op,
            param,
            expr,
            grouping,
        } => {
            let grouping_str = match grouping {
                Grouping::None => String::new(),
                Grouping::By(ls) => format!(" by ({})", ls.join(", ")),
                Grouping::Without(ls) => format!(" without ({})", ls.join(", ")),
            };
            let inner = match param {
                Some(p) => format!("{}, {}", format_expr(p), format_expr(expr)),
                None => format_expr(expr),
            };
            format!("{}{}({})", op.as_str(), grouping_str, inner)
        }
        Expr::Call { func, args } => {
            let parts: Vec<String> = args.iter().map(format_expr).collect();
            format!("{func}({})", parts.join(", "))
        }
        Expr::Paren(e) => format!("({})", format_expr(e)),
    }
}

fn format_matching(m: &VectorMatching) -> String {
    let mut out = String::new();
    match m.on {
        Some(true) => out.push_str(&format!(" on ({})", m.labels.join(", "))),
        Some(false) => out.push_str(&format!(" ignoring ({})", m.labels.join(", "))),
        None => {}
    }
    if let Some((side, extra)) = &m.group {
        let kw = match side {
            GroupSide::Left => "group_left",
            GroupSide::Right => "group_right",
        };
        if extra.is_empty() {
            out.push_str(&format!(" {kw}"));
        } else {
            out.push_str(&format!(" {kw} ({})", extra.join(", ")));
        }
    }
    out
}

fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Millisecond duration to the shortest PromQL duration literal.
pub fn format_duration(ms: i64) -> String {
    for (unit_ms, suffix) in [
        (604_800_000i64, "w"),
        (86_400_000, "d"),
        (3_600_000, "h"),
        (60_000, "m"),
        (1_000, "s"),
    ] {
        if ms % unit_ms == 0 && ms / unit_ms > 0 {
            return format!("{}{}", ms / unit_ms, suffix);
        }
    }
    format!("{ms}ms")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(q: &str) {
        let e1 = parse(q).unwrap();
        let printed = format_expr(&e1);
        let e2 = parse(&printed).unwrap_or_else(|err| panic!("reparse of {printed:?}: {err}"));
        assert_eq!(e1, e2, "round trip changed AST for {q} -> {printed}");
    }

    #[test]
    fn round_trips_core_shapes() {
        for q in [
            "metric_name",
            r#"m{a="1",b!~"x.*"}"#,
            "rate(m[5m])",
            "sum by (nf) (rate(m[5m]))",
            "sum(rate(m[5m])) by (nf)", // normalises to leading by
            "topk(3, m)",
            "100 * sum(s) / sum(a)",
            "a / on (i) group_left (nf) b",
            "a unless ignoring (cause) b",
            "m[5m] offset 1h",
            "-m + 3",
            "(a + b) * c",
            "m > bool 5",
            r#"label_replace(m, "d", "$1", "s", "(.*)")"#,
            "quantile(0.99, m)",
            "avg_over_time(m[30s])",
            "max_over_time(rate(m[5m])[30m:1m])",
            "avg_over_time(sum(m)[1h:])",
            "sum(rate(m[5m]))[10m:30s] offset 5m",
        ] {
            round_trip(q);
        }
    }

    #[test]
    fn subquery_formats_as_expected() {
        assert_eq!(
            format_expr(&parse("max_over_time(rate(m[5m])[30m:1m])").unwrap()),
            "max_over_time(rate(m[5m])[30m:1m])"
        );
        assert_eq!(
            format_expr(&parse("avg_over_time(sum(m)[1h:])").unwrap()),
            "avg_over_time(sum(m)[1h:])"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(300_000), "5m");
        assert_eq!(format_duration(1_000), "1s");
        assert_eq!(format_duration(3_600_000), "1h");
        assert_eq!(format_duration(86_400_000), "1d");
        assert_eq!(format_duration(500), "500ms");
        assert_eq!(format_duration(90_000), "90s");
    }

    #[test]
    fn formats_expected_strings() {
        assert_eq!(
            format_expr(&parse("sum by (nf) (rate(m[5m]))").unwrap()),
            "sum by (nf)(rate(m[5m]))"
        );
        assert_eq!(
            format_expr(&parse("100*sum(s)/sum(a)").unwrap()),
            "100 * sum(s) / sum(a)"
        );
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_expr(&Expr::NumberLiteral(100.0)), "100");
        assert_eq!(format_expr(&Expr::NumberLiteral(0.5)), "0.5");
    }
}

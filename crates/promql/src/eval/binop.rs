//! Binary operator evaluation with full vector matching.

use crate::ast::{BinOp, GroupSide, VectorMatching};
use crate::error::EvalError;
use crate::eval::sort_vector;
use crate::value::{Value, VectorSample};
use dio_tsdb::Labels;
use std::collections::HashMap;

/// Evaluate `lhs op rhs`.
pub fn eval_binary(
    op: BinOp,
    lhs: Value,
    rhs: Value,
    bool_modifier: bool,
    matching: &VectorMatching,
) -> Result<Value, EvalError> {
    if op.is_set_op() {
        return eval_set_op(op, lhs, rhs, matching);
    }
    match (lhs, rhs) {
        (Value::Scalar(l), Value::Scalar(r)) => {
            if op.is_comparison() && !bool_modifier {
                return Err(EvalError::TypeMismatch(
                    "comparisons between scalars must use the bool modifier".to_string(),
                ));
            }
            Ok(Value::Scalar(if op.is_comparison() {
                bool_to_f64(compare(op, l, r))
            } else {
                arith(op, l, r)
            }))
        }
        (Value::Vector(v), Value::Scalar(s)) => {
            Ok(Value::Vector(vector_scalar(op, v, s, bool_modifier, false)))
        }
        (Value::Scalar(s), Value::Vector(v)) => {
            Ok(Value::Vector(vector_scalar(op, v, s, bool_modifier, true)))
        }
        (Value::Vector(l), Value::Vector(r)) => {
            eval_vector_vector(op, l, r, bool_modifier, matching)
        }
        (l, r) => Err(EvalError::TypeMismatch(format!(
            "binary operator {} not defined between {} and {}",
            op.as_str(),
            l.type_name(),
            r.type_name()
        ))),
    }
}

fn arith(op: BinOp, l: f64, r: f64) -> f64 {
    match op {
        BinOp::Add => l + r,
        BinOp::Sub => l - r,
        BinOp::Mul => l * r,
        BinOp::Div => l / r, // IEEE: x/0 = ±inf, 0/0 = NaN, as in Prometheus
        // Prometheus uses Go's math.Mod (sign of dividend).
        BinOp::Mod => l % r,
        BinOp::Pow => l.powf(r),
        _ => unreachable!("comparison handled separately"),
    }
}

fn compare(op: BinOp, l: f64, r: f64) -> bool {
    match op {
        BinOp::Eq => l == r,
        BinOp::Ne => l != r,
        BinOp::Gt => l > r,
        BinOp::Lt => l < r,
        BinOp::Gte => l >= r,
        BinOp::Lte => l <= r,
        _ => unreachable!("arith handled separately"),
    }
}

fn bool_to_f64(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Vector ⊕ scalar (or scalar ⊕ vector when `swapped`).
fn vector_scalar(
    op: BinOp,
    v: Vec<VectorSample>,
    s: f64,
    bool_modifier: bool,
    swapped: bool,
) -> Vec<VectorSample> {
    let mut out = Vec::with_capacity(v.len());
    for sample in v {
        let (l, r) = if swapped {
            (s, sample.value)
        } else {
            (sample.value, s)
        };
        if op.is_comparison() {
            let keep = compare(op, l, r);
            if bool_modifier {
                out.push(VectorSample {
                    labels: sample.labels.drop_name(),
                    value: bool_to_f64(keep),
                });
            } else if keep {
                out.push(sample);
            }
        } else {
            out.push(VectorSample {
                labels: sample.labels.drop_name(),
                value: arith(op, l, r),
            });
        }
    }
    sort_vector(&mut out);
    out
}

/// The match signature of a sample under on/ignoring.
fn signature(labels: &Labels, matching: &VectorMatching) -> Labels {
    match matching.on {
        Some(true) => {
            let names: Vec<&str> = matching.labels.iter().map(|s| s.as_str()).collect();
            labels.keep_only(&names)
        }
        Some(false) => {
            let names: Vec<&str> = matching.labels.iter().map(|s| s.as_str()).collect();
            labels.drop_listed_and_name(&names)
        }
        None => labels.drop_name(),
    }
}

fn eval_vector_vector(
    op: BinOp,
    lhs: Vec<VectorSample>,
    rhs: Vec<VectorSample>,
    bool_modifier: bool,
    matching: &VectorMatching,
) -> Result<Value, EvalError> {
    // The "one" side is indexed by signature; the "many" side iterates.
    let (many, one, many_is_left) = match matching.group {
        Some((GroupSide::Left, _)) => (lhs, rhs, true),
        Some((GroupSide::Right, _)) => (rhs, lhs, false),
        None => (lhs, rhs, true),
    };

    let mut one_index: HashMap<Labels, &VectorSample> = HashMap::new();
    for s in &one {
        let sig = signature(&s.labels, matching);
        if one_index.insert(sig.clone(), s).is_some() {
            return Err(EvalError::VectorMatch(format!(
                "many-to-many matching not allowed: duplicate signature {sig} on the {} side",
                if many_is_left { "right" } else { "left" }
            )));
        }
    }

    // Without group_*, each signature on the many side must also be
    // unique (one-to-one).
    if matching.group.is_none() {
        let mut seen: HashMap<Labels, ()> = HashMap::new();
        for s in &many {
            let sig = signature(&s.labels, matching);
            if seen.insert(sig.clone(), ()).is_some() {
                return Err(EvalError::VectorMatch(format!(
                    "many-to-many matching not allowed: duplicate signature {sig} on the left side"
                )));
            }
        }
    }

    let extra_labels: &[String] = match &matching.group {
        Some((_, extra)) => extra.as_slice(),
        None => &[],
    };

    let mut out = Vec::new();
    for m in &many {
        let sig = signature(&m.labels, matching);
        let Some(o) = one_index.get(&sig) else {
            continue;
        };
        let (l, r) = if many_is_left {
            (m.value, o.value)
        } else {
            (o.value, m.value)
        };
        if op.is_comparison() {
            let keep = compare(op, l, r);
            if bool_modifier {
                out.push(VectorSample {
                    labels: m.labels.drop_name(),
                    value: bool_to_f64(keep),
                });
            } else if keep {
                // Filter comparisons keep the *left*-hand sample.
                let kept = if many_is_left { m } else { *o };
                out.push(kept.clone());
            }
        } else {
            // Result labels: the many side's signature-relevant labels
            // (name dropped), plus any group_* extra labels copied from
            // the one side.
            let mut labels = m.labels.drop_name();
            for extra in extra_labels {
                if let Some(v) = o.labels.get(extra) {
                    labels = labels.with(extra.clone(), v.to_string());
                } else {
                    labels = labels.without(extra);
                }
            }
            out.push(VectorSample {
                labels,
                value: arith(op, l, r),
            });
        }
    }
    sort_vector(&mut out);
    Ok(Value::Vector(out))
}

fn eval_set_op(
    op: BinOp,
    lhs: Value,
    rhs: Value,
    matching: &VectorMatching,
) -> Result<Value, EvalError> {
    let (l, r) = match (lhs, rhs) {
        (Value::Vector(l), Value::Vector(r)) => (l, r),
        (l, r) => {
            return Err(EvalError::TypeMismatch(format!(
                "set operator {} requires instant vectors, got {} and {}",
                op.as_str(),
                l.type_name(),
                r.type_name()
            )))
        }
    };
    let rhs_sigs: std::collections::HashSet<Labels> = r
        .iter()
        .map(|s| signature(&s.labels, matching))
        .collect();
    let mut out: Vec<VectorSample> = match op {
        BinOp::And => l
            .into_iter()
            .filter(|s| rhs_sigs.contains(&signature(&s.labels, matching)))
            .collect(),
        BinOp::Unless => l
            .into_iter()
            .filter(|s| !rhs_sigs.contains(&signature(&s.labels, matching)))
            .collect(),
        BinOp::Or => {
            let lhs_sigs: std::collections::HashSet<Labels> = l
                .iter()
                .map(|s| signature(&s.labels, matching))
                .collect();
            let mut v = l;
            v.extend(
                r.into_iter()
                    .filter(|s| !lhs_sigs.contains(&signature(&s.labels, matching))),
            );
            v
        }
        _ => unreachable!(),
    };
    sort_vector(&mut out);
    Ok(Value::Vector(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(pairs: &[(&[(&str, &str)], f64)]) -> Vec<VectorSample> {
        pairs
            .iter()
            .map(|(ls, v)| VectorSample {
                labels: Labels::from_pairs(ls.iter().map(|(a, b)| (*a, *b))),
                value: *v,
            })
            .collect()
    }

    fn no_match() -> VectorMatching {
        VectorMatching::default()
    }

    #[test]
    fn scalar_scalar_arith() {
        let v = eval_binary(
            BinOp::Add,
            Value::Scalar(2.0),
            Value::Scalar(3.0),
            false,
            &no_match(),
        )
        .unwrap();
        assert_eq!(v, Value::Scalar(5.0));
    }

    #[test]
    fn scalar_comparison_requires_bool() {
        assert!(eval_binary(
            BinOp::Gt,
            Value::Scalar(2.0),
            Value::Scalar(1.0),
            false,
            &no_match()
        )
        .is_err());
        let v = eval_binary(
            BinOp::Gt,
            Value::Scalar(2.0),
            Value::Scalar(1.0),
            true,
            &no_match(),
        )
        .unwrap();
        assert_eq!(v, Value::Scalar(1.0));
    }

    #[test]
    fn vector_scalar_arithmetic_drops_name() {
        let v = vs(&[(&[("__name__", "m"), ("i", "a")], 10.0)]);
        let out = eval_binary(
            BinOp::Mul,
            Value::Vector(v),
            Value::Scalar(2.0),
            false,
            &no_match(),
        )
        .unwrap();
        match out {
            Value::Vector(v) => {
                assert_eq!(v[0].value, 20.0);
                assert_eq!(v[0].labels.name(), None);
                assert_eq!(v[0].labels.get("i"), Some("a"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scalar_vector_subtraction_order() {
        let v = vs(&[(&[("i", "a")], 10.0)]);
        let out = eval_binary(
            BinOp::Sub,
            Value::Scalar(100.0),
            Value::Vector(v),
            false,
            &no_match(),
        )
        .unwrap();
        assert_eq!(out.as_scalar_like(), Some(90.0));
    }

    #[test]
    fn vector_comparison_filters() {
        let v = vs(&[(&[("i", "a")], 1.0), (&[("i", "b")], 10.0)]);
        let out = eval_binary(
            BinOp::Gt,
            Value::Vector(v),
            Value::Scalar(5.0),
            false,
            &no_match(),
        )
        .unwrap();
        match out {
            Value::Vector(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].labels.get("i"), Some("b"));
                assert_eq!(v[0].value, 10.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn vector_comparison_bool_keeps_all() {
        let v = vs(&[(&[("i", "a")], 1.0), (&[("i", "b")], 10.0)]);
        let out = eval_binary(
            BinOp::Gt,
            Value::Vector(v),
            Value::Scalar(5.0),
            true,
            &no_match(),
        )
        .unwrap();
        match out {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!(v[0].value, 0.0);
                assert_eq!(v[1].value, 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn one_to_one_matches_on_identical_labels() {
        let l = vs(&[
            (&[("__name__", "success"), ("i", "a")], 90.0),
            (&[("__name__", "success"), ("i", "b")], 80.0),
        ]);
        let r = vs(&[
            (&[("__name__", "attempt"), ("i", "a")], 100.0),
            (&[("__name__", "attempt"), ("i", "b")], 100.0),
        ]);
        let out = eval_binary(
            BinOp::Div,
            Value::Vector(l),
            Value::Vector(r),
            false,
            &no_match(),
        )
        .unwrap();
        match out {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!(v[0].value, 0.9);
                assert_eq!(v[1].value, 0.8);
                assert_eq!(v[0].labels.name(), None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unmatched_samples_drop_out() {
        let l = vs(&[(&[("i", "a")], 1.0), (&[("i", "b")], 2.0)]);
        let r = vs(&[(&[("i", "a")], 10.0)]);
        let out = eval_binary(
            BinOp::Add,
            Value::Vector(l),
            Value::Vector(r),
            false,
            &no_match(),
        )
        .unwrap();
        match out {
            Value::Vector(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].value, 11.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn many_to_many_is_error() {
        let l = vs(&[
            (&[("i", "a"), ("c", "x")], 1.0),
            (&[("i", "a"), ("c", "y")], 2.0),
        ]);
        let r = vs(&[(&[("i", "a")], 10.0)]);
        let matching = VectorMatching {
            on: Some(true),
            labels: vec!["i".into()],
            group: None,
        };
        assert!(matches!(
            eval_binary(
                BinOp::Add,
                Value::Vector(l),
                Value::Vector(r),
                false,
                &matching
            ),
            Err(EvalError::VectorMatch(_))
        ));
    }

    #[test]
    fn group_left_allows_many_to_one() {
        let l = vs(&[
            (&[("i", "a"), ("c", "x")], 1.0),
            (&[("i", "a"), ("c", "y")], 2.0),
        ]);
        let r = vs(&[(&[("i", "a"), ("nf", "amf")], 10.0)]);
        let matching = VectorMatching {
            on: Some(true),
            labels: vec!["i".into()],
            group: Some((GroupSide::Left, vec!["nf".into()])),
        };
        let out = eval_binary(
            BinOp::Div,
            Value::Vector(l),
            Value::Vector(r),
            false,
            &matching,
        )
        .unwrap();
        match out {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!(v[0].value, 0.1);
                assert_eq!(v[1].value, 0.2);
                // group_left extra label copied from the one side.
                assert_eq!(v[0].labels.get("nf"), Some("amf"));
                // many-side labels preserved.
                assert!(v.iter().any(|s| s.labels.get("c") == Some("x")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ignoring_drops_label_from_signature() {
        let l = vs(&[(&[("i", "a"), ("cause", "timeout")], 5.0)]);
        let r = vs(&[(&[("i", "a")], 50.0)]);
        let matching = VectorMatching {
            on: Some(false),
            labels: vec!["cause".into()],
            group: None,
        };
        let out = eval_binary(
            BinOp::Div,
            Value::Vector(l),
            Value::Vector(r),
            false,
            &matching,
        )
        .unwrap();
        assert_eq!(out.as_scalar_like(), Some(0.1));
    }

    #[test]
    fn and_or_unless_semantics() {
        let l = vs(&[(&[("i", "a")], 1.0), (&[("i", "b")], 2.0)]);
        let r = vs(&[(&[("i", "b")], 9.0), (&[("i", "c")], 9.0)]);
        let and = eval_binary(
            BinOp::And,
            Value::Vector(l.clone()),
            Value::Vector(r.clone()),
            false,
            &no_match(),
        )
        .unwrap();
        match and {
            Value::Vector(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].labels.get("i"), Some("b"));
                assert_eq!(v[0].value, 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let or = eval_binary(
            BinOp::Or,
            Value::Vector(l.clone()),
            Value::Vector(r.clone()),
            false,
            &no_match(),
        )
        .unwrap();
        match or {
            Value::Vector(v) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        let unless = eval_binary(
            BinOp::Unless,
            Value::Vector(l),
            Value::Vector(r),
            false,
            &no_match(),
        )
        .unwrap();
        match unless {
            Value::Vector(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].labels.get("i"), Some("a"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn division_by_zero_follows_ieee() {
        let out = eval_binary(
            BinOp::Div,
            Value::Scalar(1.0),
            Value::Scalar(0.0),
            false,
            &no_match(),
        )
        .unwrap();
        assert_eq!(out, Value::Scalar(f64::INFINITY));
    }

    #[test]
    fn matrix_operand_is_type_error() {
        assert!(eval_binary(
            BinOp::Add,
            Value::Matrix(vec![]),
            Value::Scalar(1.0),
            false,
            &no_match()
        )
        .is_err());
    }
}

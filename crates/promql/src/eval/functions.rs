//! PromQL function library.

use crate::ast::Expr;
use crate::error::EvalError;
use crate::eval::kernels::{ParamPos, RangeKernel};
use crate::eval::{drop_names, scalar_to_vector, sort_vector, Evaluator};
use crate::value::{RangeVector, Value, VectorSample};
use dio_tsdb::{MatchOp, Labels};

/// Evaluate a function call.
pub fn eval_call(
    ev: &Evaluator<'_>,
    func: &str,
    args: &[Expr],
    ts: i64,
) -> Result<Value, EvalError> {
    // The range-vector family — rate, *_over_time, predict_linear, … —
    // dispatches through the shared column kernels (the same code the
    // vectorized executor runs).
    if let Some(kernel) = RangeKernel::from_name(func) {
        return eval_range_kernel(ev, kernel, args, ts);
    }
    match func {
        // ---- simple math on instant vectors ----
        "abs" => math_fn(ev, func, args, ts, f64::abs),
        "ceil" => math_fn(ev, func, args, ts, f64::ceil),
        "floor" => math_fn(ev, func, args, ts, f64::floor),
        "exp" => math_fn(ev, func, args, ts, f64::exp),
        "ln" => math_fn(ev, func, args, ts, f64::ln),
        "log2" => math_fn(ev, func, args, ts, f64::log2),
        "log10" => math_fn(ev, func, args, ts, f64::log10),
        "sqrt" => math_fn(ev, func, args, ts, f64::sqrt),
        "sgn" => math_fn(ev, func, args, ts, |v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                v // preserves 0 and NaN
            }
        }),
        "round" => {
            if args.is_empty() || args.len() > 2 {
                return Err(EvalError::BadArguments(
                    "round takes 1 or 2 arguments".to_string(),
                ));
            }
            let to = if args.len() == 2 {
                scalar_arg(ev, func, &args[1], ts)?
            } else {
                1.0
            };
            if to <= 0.0 {
                return Err(EvalError::BadArguments(
                    "round() second argument must be positive".to_string(),
                ));
            }
            math_fn(ev, func, &args[..1], ts, move |v| (v / to).round() * to)
        }
        "clamp" => {
            expect_args(func, args, 3)?;
            let lo = scalar_arg(ev, func, &args[1], ts)?;
            let hi = scalar_arg(ev, func, &args[2], ts)?;
            math_fn(ev, func, &args[..1], ts, move |v| v.clamp(lo, hi.max(lo)))
        }
        "clamp_min" => {
            expect_args(func, args, 2)?;
            let lo = scalar_arg(ev, func, &args[1], ts)?;
            math_fn(ev, func, &args[..1], ts, move |v| v.max(lo))
        }
        "clamp_max" => {
            expect_args(func, args, 2)?;
            let hi = scalar_arg(ev, func, &args[1], ts)?;
            math_fn(ev, func, &args[..1], ts, move |v| v.min(hi))
        }

        // ---- conversions and utilities ----
        "scalar" => {
            expect_args(func, args, 1)?;
            match ev.eval(&args[0], ts)? {
                Value::Vector(v) if v.len() == 1 => Ok(Value::Scalar(v[0].value)),
                Value::Vector(_) => Ok(Value::Scalar(f64::NAN)),
                Value::Scalar(s) => Ok(Value::Scalar(s)),
                other => Err(EvalError::TypeMismatch(format!(
                    "scalar() requires an instant vector, got {}",
                    other.type_name()
                ))),
            }
        }
        "vector" => {
            expect_args(func, args, 1)?;
            match ev.eval(&args[0], ts)? {
                Value::Scalar(s) => Ok(Value::Vector(scalar_to_vector(s))),
                other => Err(EvalError::TypeMismatch(format!(
                    "vector() requires a scalar, got {}",
                    other.type_name()
                ))),
            }
        }
        "time" => {
            expect_args(func, args, 0)?;
            Ok(Value::Scalar(ts as f64 / 1000.0))
        }
        "timestamp" => {
            expect_args(func, args, 1)?;
            let v = vector_arg(ev, func, &args[0], ts)?;
            Ok(Value::Vector(
                v.into_iter()
                    .map(|s| VectorSample {
                        labels: s.labels.drop_name(),
                        value: ts as f64 / 1000.0,
                    })
                    .collect(),
            ))
        }
        "sort" | "sort_desc" => {
            expect_args(func, args, 1)?;
            let mut v = vector_arg(ev, func, &args[0], ts)?;
            v.sort_by(|a, b| {
                let ord = a.value.partial_cmp(&b.value).unwrap_or(std::cmp::Ordering::Equal);
                if func == "sort" {
                    ord
                } else {
                    ord.reverse()
                }
                .then_with(|| a.labels.cmp(&b.labels))
            });
            Ok(Value::Vector(v))
        }
        "absent" => {
            expect_args(func, args, 1)?;
            let v = vector_arg(ev, func, &args[0], ts)?;
            if !v.is_empty() {
                return Ok(Value::Vector(vec![]));
            }
            // Derive labels from equality matchers when the argument is a
            // plain selector, as Prometheus does.
            let labels = match &args[0] {
                Expr::VectorSelector { name, matchers, .. } => {
                    let mut l = Labels::empty();
                    if let Some(n) = name {
                        l = l.with("__name__", n.clone()).drop_name(); // name not included
                        let _ = n;
                    }
                    for m in matchers {
                        if m.op == MatchOp::Eq {
                            l = l.with(m.name.clone(), m.value.clone());
                        }
                    }
                    l
                }
                _ => Labels::empty(),
            };
            Ok(Value::Vector(vec![VectorSample { labels, value: 1.0 }]))
        }
        "histogram_quantile" => {
            expect_args(func, args, 2)?;
            let phi = scalar_arg(ev, func, &args[0], ts)?;
            let v = vector_arg(ev, func, &args[1], ts)?;
            histogram_quantile(phi, v)
        }
        "label_replace" => {
            expect_args(func, args, 5)?;
            let v = vector_arg(ev, func, &args[0], ts)?;
            let dst = string_arg(ev, func, &args[1], ts)?;
            let repl = string_arg(ev, func, &args[2], ts)?;
            let src = string_arg(ev, func, &args[3], ts)?;
            let pattern = string_arg(ev, func, &args[4], ts)?;
            label_replace(v, &dst, &repl, &src, &pattern)
        }
        "minute" | "hour" | "day_of_week" | "day_of_month" | "day_of_year" | "month"
        | "year" | "days_in_month" => {
            // Time functions take an optional vector of timestamps
            // (seconds); default is the evaluation time.
            if args.len() > 1 {
                return Err(EvalError::BadArguments(format!(
                    "{func} takes at most 1 argument"
                )));
            }
            let inputs: Vec<VectorSample> = if let Some(arg) = args.first() {
                vector_arg(ev, func, arg, ts)?
            } else {
                scalar_to_vector(ts as f64 / 1000.0)
            };
            let mut out: Vec<VectorSample> = inputs
                .into_iter()
                .map(|s| {
                    let civil = CivilTime::from_unix_seconds(s.value as i64);
                    let value = match func {
                        "minute" => civil.minute as f64,
                        "hour" => civil.hour as f64,
                        "day_of_week" => civil.day_of_week as f64,
                        "day_of_month" => civil.day as f64,
                        "day_of_year" => civil.day_of_year as f64,
                        "month" => civil.month as f64,
                        "year" => civil.year as f64,
                        _ => civil.days_in_month as f64,
                    };
                    VectorSample {
                        labels: s.labels.drop_name(),
                        value,
                    }
                })
                .collect();
            sort_vector(&mut out);
            Ok(Value::Vector(out))
        }
        "label_join" => {
            if args.len() < 3 {
                return Err(EvalError::BadArguments(
                    "label_join takes at least 3 arguments".to_string(),
                ));
            }
            let v = vector_arg(ev, func, &args[0], ts)?;
            let dst = string_arg(ev, func, &args[1], ts)?;
            let sep = string_arg(ev, func, &args[2], ts)?;
            let mut srcs = Vec::new();
            for a in &args[3..] {
                srcs.push(string_arg(ev, func, a, ts)?);
            }
            let mut out: Vec<VectorSample> = v
                .into_iter()
                .map(|s| {
                    let joined: Vec<&str> = srcs
                        .iter()
                        .map(|src| s.labels.get(src).unwrap_or(""))
                        .collect();
                    VectorSample {
                        labels: s.labels.with(dst.clone(), joined.join(&sep)),
                        value: s.value,
                    }
                })
                .collect();
            sort_vector(&mut out);
            Ok(Value::Vector(out))
        }
        other => Err(EvalError::UnknownFunction(other.to_string())),
    }
}

// ---------- helpers ----------

/// Civil (proleptic Gregorian, UTC) time decomposition, via Howard
/// Hinnant's days-from-civil algorithm — no external time crate.
struct CivilTime {
    year: i64,
    /// 1–12.
    month: u32,
    /// 1–31.
    day: u32,
    /// 0–23.
    hour: u32,
    /// 0–59.
    minute: u32,
    /// 0 = Sunday … 6 = Saturday (Prometheus `day_of_week`).
    day_of_week: u32,
    /// 1–366.
    day_of_year: u32,
    /// 28–31.
    days_in_month: u32,
}

impl CivilTime {
    fn from_unix_seconds(secs: i64) -> Self {
        let days = secs.div_euclid(86_400);
        let secs_of_day = secs.rem_euclid(86_400);

        // civil_from_days (Hinnant).
        let z = days + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097); // day of era [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11], March-based
        let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = if month <= 2 { y + 1 } else { y };

        let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
        let days_in_month = match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            _ => {
                if leap {
                    29
                } else {
                    28
                }
            }
        };
        let cumulative = [0u32, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];
        let mut day_of_year = cumulative[(month - 1) as usize] + day;
        if leap && month > 2 {
            day_of_year += 1;
        }
        // 1970-01-01 was a Thursday (dow 4 with Sunday = 0).
        let day_of_week = (days + 4).rem_euclid(7) as u32;

        CivilTime {
            year,
            month,
            day,
            hour: (secs_of_day / 3600) as u32,
            minute: ((secs_of_day / 60) % 60) as u32,
            day_of_week,
            day_of_year,
            days_in_month,
        }
    }
}

fn expect_args(func: &str, args: &[Expr], n: usize) -> Result<(), EvalError> {
    if args.len() != n {
        return Err(EvalError::BadArguments(format!(
            "{func} takes {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

fn vector_arg(
    ev: &Evaluator<'_>,
    func: &str,
    arg: &Expr,
    ts: i64,
) -> Result<Vec<VectorSample>, EvalError> {
    match ev.eval(arg, ts)? {
        Value::Vector(v) => Ok(v),
        other => Err(EvalError::TypeMismatch(format!(
            "{func} requires an instant vector, got {}",
            other.type_name()
        ))),
    }
}

fn matrix_arg(
    ev: &Evaluator<'_>,
    func: &str,
    arg: &Expr,
    ts: i64,
) -> Result<RangeVector, EvalError> {
    match ev.eval(arg, ts)? {
        Value::Matrix(m) => Ok(m),
        other => Err(EvalError::TypeMismatch(format!(
            "{func} requires a range vector, got {}",
            other.type_name()
        ))),
    }
}

fn scalar_arg(ev: &Evaluator<'_>, func: &str, arg: &Expr, ts: i64) -> Result<f64, EvalError> {
    match ev.eval(arg, ts)? {
        Value::Scalar(s) => Ok(s),
        other => Err(EvalError::TypeMismatch(format!(
            "{func} requires a scalar argument, got {}",
            other.type_name()
        ))),
    }
}

fn string_arg(ev: &Evaluator<'_>, func: &str, arg: &Expr, ts: i64) -> Result<String, EvalError> {
    match ev.eval(arg, ts)? {
        Value::Str(s) => Ok(s),
        other => Err(EvalError::TypeMismatch(format!(
            "{func} requires a string argument, got {}",
            other.type_name()
        ))),
    }
}

/// Evaluate a range-family call: resolve arguments in the same order
/// Prometheus (and our error messages) expect, then run the kernel
/// over every series window.
fn eval_range_kernel(
    ev: &Evaluator<'_>,
    kernel: RangeKernel,
    args: &[Expr],
    ts: i64,
) -> Result<Value, EvalError> {
    let func = kernel.name();
    let (param, matrix) = match kernel.param_pos() {
        None => {
            expect_args(func, args, 1)?;
            (0.0, matrix_arg(ev, func, &args[0], ts)?)
        }
        Some(ParamPos::BeforeMatrix) => {
            expect_args(func, args, 2)?;
            let p = scalar_arg(ev, func, &args[0], ts)?;
            (p, matrix_arg(ev, func, &args[1], ts)?)
        }
        Some(ParamPos::AfterMatrix) => {
            expect_args(func, args, 2)?;
            let m = matrix_arg(ev, func, &args[0], ts)?;
            (scalar_arg(ev, func, &args[1], ts)?, m)
        }
    };
    Ok(Value::Vector(apply_kernel_over_matrix(
        matrix, kernel, param,
    )))
}

/// Run `kernel` over every series of a materialised range vector,
/// dropping the metric name from surviving series and sorting — the
/// interpreter half of the shared-kernel contract.
pub(crate) fn apply_kernel_over_matrix(
    matrix: RangeVector,
    kernel: RangeKernel,
    param: f64,
) -> Vec<VectorSample> {
    let mut out: Vec<VectorSample> = matrix
        .into_iter()
        .filter_map(|series| {
            let (ts_col, vals): (Vec<i64>, Vec<f64>) = series
                .samples
                .iter()
                .map(|s| (s.timestamp_ms, s.value))
                .unzip();
            kernel.apply(param, &ts_col, &vals).map(|value| VectorSample {
                labels: series.labels.drop_name(),
                value,
            })
        })
        .collect();
    sort_vector(&mut out);
    out
}

fn math_fn<F>(
    ev: &Evaluator<'_>,
    func: &str,
    args: &[Expr],
    ts: i64,
    f: F,
) -> Result<Value, EvalError>
where
    F: Fn(f64) -> f64,
{
    expect_args(func, args, 1)?;
    match ev.eval(&args[0], ts)? {
        Value::Vector(v) => {
            let mut out: Vec<VectorSample> = drop_names(v)
                .into_iter()
                .map(|s| VectorSample {
                    labels: s.labels,
                    value: f(s.value),
                })
                .collect();
            sort_vector(&mut out);
            Ok(Value::Vector(out))
        }
        // Accepting scalars here is a small ergonomic extension over
        // Prometheus (which only defines these on vectors).
        Value::Scalar(s) => Ok(Value::Scalar(f(s))),
        other => Err(EvalError::TypeMismatch(format!(
            "{func} requires an instant vector, got {}",
            other.type_name()
        ))),
    }
}

/// `histogram_quantile` over `<basename>_bucket`-style series with `le`
/// labels.
fn histogram_quantile(phi: f64, v: Vec<VectorSample>) -> Result<Value, EvalError> {
    use std::collections::HashMap;
    // Group by labels minus le (and name).
    let mut groups: HashMap<Labels, Vec<(f64, f64)>> = HashMap::new();
    for s in v {
        let Some(le) = s.labels.get("le") else {
            continue; // non-bucket series are ignored
        };
        let le_val = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>().unwrap_or(f64::NAN)
        };
        if le_val.is_nan() {
            continue;
        }
        let key = s.labels.drop_name().without("le");
        groups.entry(key).or_default().push((le_val, s.value));
    }
    let mut out = Vec::new();
    for (labels, mut buckets) in groups {
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if buckets.len() < 2 || !buckets.last().unwrap().0.is_infinite() {
            continue; // need at least one finite bucket plus +Inf
        }
        let total = buckets.last().unwrap().1;
        if total <= 0.0 {
            continue;
        }
        let rank = phi.clamp(0.0, 1.0) * total;
        let mut result = f64::NAN;
        let mut prev_le = 0.0;
        let mut prev_count = 0.0;
        for &(le, count) in &buckets {
            if count >= rank {
                if le.is_infinite() {
                    result = prev_le;
                } else {
                    let bucket_span = count - prev_count;
                    result = if bucket_span <= 0.0 {
                        le
                    } else {
                        prev_le + (le - prev_le) * ((rank - prev_count) / bucket_span)
                    };
                }
                break;
            }
            prev_le = le;
            prev_count = count;
        }
        out.push(VectorSample {
            labels,
            value: result,
        });
    }
    sort_vector(&mut out);
    Ok(Value::Vector(out))
}

/// `label_replace` with the supported pattern subset: the regex must be
/// fully matched; a single capture group of the form `(.*)`/`(.+)` is
/// supported, optionally surrounded by literal text.
fn label_replace(
    v: Vec<VectorSample>,
    dst: &str,
    repl: &str,
    src: &str,
    pattern: &str,
) -> Result<Value, EvalError> {
    let mut out = Vec::with_capacity(v.len());
    for s in v {
        let value = s.labels.get(src).unwrap_or("").to_string();
        let (matched, capture) = match_with_capture(pattern, &value);
        let labels = if matched {
            let new_val = repl.replace("$1", &capture);
            if new_val.is_empty() {
                s.labels.without(dst)
            } else {
                s.labels.with(dst.to_string(), new_val)
            }
        } else {
            s.labels.clone()
        };
        out.push(VectorSample {
            labels,
            value: s.value,
        });
    }
    sort_vector(&mut out);
    Ok(Value::Vector(out))
}

/// Match `text` against `pattern`, returning (matched, first-capture).
fn match_with_capture(pattern: &str, text: &str) -> (bool, String) {
    if let (Some(open), Some(close)) = (pattern.find('('), pattern.rfind(')')) {
        if open < close {
            let prefix = &pattern[..open];
            let group = &pattern[open + 1..close];
            let suffix = &pattern[close + 1..];
            if (group == ".*" || group == ".+")
                && text.starts_with(prefix)
                && text.ends_with(suffix)
                && text.len() >= prefix.len() + suffix.len()
            {
                let mid = &text[prefix.len()..text.len() - suffix.len()];
                if group == ".+" && mid.is_empty() {
                    return (false, String::new());
                }
                return (true, mid.to_string());
            }
            return (false, String::new());
        }
    }
    (
        dio_tsdb::matchers::pattern_match(pattern, text),
        String::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use dio_tsdb::{MetricStore, Sample};

    /// Store with a counter (60/min) and a gauge.
    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        let counter = Labels::from_pairs([("__name__", "reqs_total"), ("i", "a")]);
        for k in 0..=10i64 {
            st.append(counter.clone(), Sample::new(k * 60_000, (k * 60) as f64))
                .unwrap();
        }
        let gauge = Labels::from_pairs([("__name__", "temp"), ("i", "a")]);
        for (k, v) in [(0i64, 10.0), (1, 12.0), (2, 9.0), (3, 15.0)] {
            st.append(gauge.clone(), Sample::new(k * 60_000, v)).unwrap();
        }
        st
    }

    fn eval(q: &str, ts: i64) -> Result<Value, EvalError> {
        let st = store();
        let ev = Evaluator::new(&st, 300_000, 0);
        ev.eval(&parse(q).unwrap(), ts)
    }

    #[test]
    fn rate_of_steady_counter() {
        let v = eval("rate(reqs_total[5m])", 600_000).unwrap();
        assert!((v.as_scalar_like().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn increase_over_window() {
        let v = eval("increase(reqs_total[5m])", 600_000).unwrap();
        // 5 samples in (300s, 600s] → window covers 240s → 240 events.
        assert!((v.as_scalar_like().unwrap() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn rate_handles_counter_reset() {
        let mut st = MetricStore::new();
        let l = Labels::name_only("c");
        for (t, v) in [(0i64, 0.0), (60_000, 100.0), (120_000, 20.0), (180_000, 50.0)] {
            st.append(l.clone(), Sample::new(t, v)).unwrap();
        }
        let ev = Evaluator::new(&st, 300_000, 0);
        let v = ev.eval(&parse("increase(c[10m])").unwrap(), 180_000).unwrap();
        // 0→100 (+100), reset→20 (+20), 20→50 (+30) = 150.
        assert_eq!(v.as_scalar_like(), Some(150.0));
    }

    #[test]
    fn irate_uses_last_two_points() {
        let v = eval("irate(reqs_total[5m])", 600_000).unwrap();
        assert!((v.as_scalar_like().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delta_and_idelta_on_gauge() {
        let v = eval("delta(temp[5m])", 180_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(5.0)); // 15 - 10
        let v = eval("idelta(temp[5m])", 180_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(6.0)); // 15 - 9
    }

    #[test]
    fn resets_and_changes() {
        let v = eval("resets(temp[5m])", 180_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(1.0)); // 12 → 9
        let v = eval("changes(temp[5m])", 180_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(3.0));
    }

    #[test]
    fn over_time_family() {
        assert_eq!(
            eval("avg_over_time(temp[5m])", 180_000).unwrap().as_scalar_like(),
            Some(11.5)
        );
        assert_eq!(
            eval("sum_over_time(temp[5m])", 180_000).unwrap().as_scalar_like(),
            Some(46.0)
        );
        assert_eq!(
            eval("min_over_time(temp[5m])", 180_000).unwrap().as_scalar_like(),
            Some(9.0)
        );
        assert_eq!(
            eval("max_over_time(temp[5m])", 180_000).unwrap().as_scalar_like(),
            Some(15.0)
        );
        assert_eq!(
            eval("count_over_time(temp[5m])", 180_000).unwrap().as_scalar_like(),
            Some(4.0)
        );
        assert_eq!(
            eval("last_over_time(temp[5m])", 180_000).unwrap().as_scalar_like(),
            Some(15.0)
        );
        assert_eq!(
            eval("present_over_time(temp[5m])", 180_000).unwrap().as_scalar_like(),
            Some(1.0)
        );
        assert_eq!(
            eval("quantile_over_time(0.5, temp[5m])", 180_000)
                .unwrap()
                .as_scalar_like(),
            Some(11.0)
        );
    }

    #[test]
    fn deriv_and_predict_linear() {
        let v = eval("deriv(reqs_total[10m])", 600_000).unwrap();
        assert!((v.as_scalar_like().unwrap() - 1.0).abs() < 1e-9);
        let v = eval("predict_linear(reqs_total[10m], 60)", 600_000).unwrap();
        assert!((v.as_scalar_like().unwrap() - 660.0).abs() < 1e-6);
    }

    #[test]
    fn math_functions() {
        assert_eq!(eval("abs(-3)", 0).unwrap(), Value::Scalar(3.0));
        assert_eq!(eval("ceil(1.2)", 0).unwrap(), Value::Scalar(2.0));
        assert_eq!(eval("floor(1.8)", 0).unwrap(), Value::Scalar(1.0));
        assert_eq!(eval("sqrt(16)", 0).unwrap(), Value::Scalar(4.0));
        assert_eq!(eval("log2(8)", 0).unwrap(), Value::Scalar(3.0));
        assert_eq!(eval("sgn(-7)", 0).unwrap(), Value::Scalar(-1.0));
        assert_eq!(eval("round(2.7)", 0).unwrap(), Value::Scalar(3.0));
        assert_eq!(eval("round(2.7, 0.5)", 0).unwrap(), Value::Scalar(2.5));
    }

    #[test]
    fn clamp_family() {
        let v = eval("clamp(temp, 10, 12)", 180_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(12.0)); // 15 clamped
        let v = eval("clamp_min(temp, 20)", 180_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(20.0));
        let v = eval("clamp_max(temp, 3)", 180_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(3.0));
    }

    #[test]
    fn scalar_vector_time_timestamp() {
        assert_eq!(eval("scalar(temp)", 180_000).unwrap(), Value::Scalar(15.0));
        assert_eq!(
            eval("vector(42)", 0).unwrap().as_scalar_like(),
            Some(42.0)
        );
        assert_eq!(eval("time()", 120_000).unwrap(), Value::Scalar(120.0));
        assert_eq!(
            eval("timestamp(temp)", 180_000).unwrap().as_scalar_like(),
            Some(180.0)
        );
    }

    #[test]
    fn sort_functions() {
        let mut st = MetricStore::new();
        for (i, v) in [("a", 3.0), ("b", 1.0), ("c", 2.0)] {
            st.append(
                Labels::from_pairs([("__name__", "m"), ("i", i)]),
                Sample::new(0, v),
            )
            .unwrap();
        }
        let ev = Evaluator::new(&st, 300_000, 0);
        match ev.eval(&parse("sort(m)").unwrap(), 0).unwrap() {
            Value::Vector(v) => {
                let vals: Vec<f64> = v.iter().map(|s| s.value).collect();
                assert_eq!(vals, vec![1.0, 2.0, 3.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match ev.eval(&parse("sort_desc(m)").unwrap(), 0).unwrap() {
            Value::Vector(v) => {
                let vals: Vec<f64> = v.iter().map(|s| s.value).collect();
                assert_eq!(vals, vec![3.0, 2.0, 1.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn absent_semantics() {
        let v = eval("absent(nonexistent_metric)", 0).unwrap();
        match v {
            Value::Vector(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].value, 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let v = eval("absent(temp)", 180_000).unwrap();
        assert_eq!(v, Value::Vector(vec![]));
        // Equality matchers become labels.
        let v = eval(r#"absent(nope{nf="amf"})"#, 0).unwrap();
        match v {
            Value::Vector(v) => assert_eq!(v[0].labels.get("nf"), Some("amf")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let mut st = MetricStore::new();
        for (le, count) in [("0.1", 10.0), ("0.5", 60.0), ("1", 90.0), ("+Inf", 100.0)] {
            st.append(
                Labels::from_pairs([("__name__", "lat_bucket"), ("le", le)]),
                Sample::new(0, count),
            )
            .unwrap();
        }
        let ev = Evaluator::new(&st, 300_000, 0);
        let v = ev
            .eval(&parse("histogram_quantile(0.5, lat_bucket)").unwrap(), 0)
            .unwrap();
        // rank 50: in (0.1, 0.5] bucket: 0.1 + 0.4*(40/50) = 0.42
        assert!((v.as_scalar_like().unwrap() - 0.42).abs() < 1e-9);
        // φ above the last finite bucket returns its lower bound.
        let v = ev
            .eval(&parse("histogram_quantile(0.99, lat_bucket)").unwrap(), 0)
            .unwrap();
        assert!((v.as_scalar_like().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn label_replace_with_capture() {
        let mut st = MetricStore::new();
        st.append(
            Labels::from_pairs([("__name__", "m"), ("instance", "amf-0")]),
            Sample::new(0, 1.0),
        )
        .unwrap();
        let ev = Evaluator::new(&st, 300_000, 0);
        let v = ev
            .eval(
                &parse(r#"label_replace(m, "nf", "$1", "instance", "(.*)-0")"#).unwrap(),
                0,
            )
            .unwrap();
        match v {
            Value::Vector(v) => assert_eq!(v[0].labels.get("nf"), Some("amf")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn label_join_concatenates() {
        let mut st = MetricStore::new();
        st.append(
            Labels::from_pairs([("__name__", "m"), ("a", "x"), ("b", "y")]),
            Sample::new(0, 1.0),
        )
        .unwrap();
        let ev = Evaluator::new(&st, 300_000, 0);
        let v = ev
            .eval(
                &parse(r#"label_join(m, "ab", "-", "a", "b")"#).unwrap(),
                0,
            )
            .unwrap();
        match v {
            Value::Vector(v) => assert_eq!(v[0].labels.get("ab"), Some("x-y")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_function_errors() {
        assert!(matches!(
            eval("frobnicate(temp)", 0),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn wrong_arity_errors() {
        assert!(eval("rate(temp[5m], 3)", 0).is_err());
        assert!(eval("clamp(temp)", 0).is_err());
        assert!(eval("time(3)", 0).is_err());
    }

    #[test]
    fn rate_requires_matrix() {
        assert!(matches!(
            eval("rate(temp)", 180_000),
            Err(EvalError::TypeMismatch(_))
        ));
    }

    #[test]
    fn rate_single_sample_yields_empty() {
        let v = eval("rate(temp[30s])", 0).unwrap();
        assert_eq!(v, Value::Vector(vec![]));
    }
}

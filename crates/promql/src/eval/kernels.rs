//! Range-function kernels over decoded columns.
//!
//! Each kernel is the computation of one range-vector function —
//! `rate`, `avg_over_time`, `predict_linear`, … — expressed over a
//! timestamp column and a value column. Both engines call *the same*
//! kernel code: the tree-walking interpreter unzips each window into
//! columns, the vectorized executor slices windows straight out of
//! decoded chunk columns. Sharing the arithmetic (same operations in
//! the same order) is what makes the two engines byte-identical, which
//! the differential harness then enforces.

use crate::eval::aggregate::quantile;

/// Where the scalar parameter sits in the PromQL argument list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamPos {
    /// `quantile_over_time(φ, m[5m])`.
    BeforeMatrix,
    /// `predict_linear(m[5m], horizon)`.
    AfterMatrix,
}

/// A range-vector function kernel. One window in, one optional value
/// out (`None` drops the series from the result, as Prometheus does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RangeKernel {
    /// `rate`: counter increase per second, with reset detection.
    Rate,
    /// `increase`: total counter increase over the window.
    Increase,
    /// `irate`: instantaneous rate from the last two points.
    Irate,
    /// `delta`: last minus first value.
    Delta,
    /// `idelta`: last minus second-to-last value.
    Idelta,
    /// `resets`: number of counter resets.
    Resets,
    /// `changes`: number of value changes.
    Changes,
    /// `deriv`: least-squares slope per second.
    Deriv,
    /// `avg_over_time`.
    Avg,
    /// `sum_over_time`.
    Sum,
    /// `min_over_time`.
    Min,
    /// `max_over_time`.
    Max,
    /// `count_over_time`.
    Count,
    /// `last_over_time`.
    Last,
    /// `present_over_time`.
    Present,
    /// `stddev_over_time` (population).
    Stddev,
    /// `stdvar_over_time` (population).
    Stdvar,
    /// `quantile_over_time(φ, m[r])`.
    Quantile,
    /// `predict_linear(m[r], horizon)`.
    PredictLinear,
}

impl RangeKernel {
    /// Map a PromQL function name to its kernel.
    pub fn from_name(func: &str) -> Option<RangeKernel> {
        Some(match func {
            "rate" => RangeKernel::Rate,
            "increase" => RangeKernel::Increase,
            "irate" => RangeKernel::Irate,
            "delta" => RangeKernel::Delta,
            "idelta" => RangeKernel::Idelta,
            "resets" => RangeKernel::Resets,
            "changes" => RangeKernel::Changes,
            "deriv" => RangeKernel::Deriv,
            "avg_over_time" => RangeKernel::Avg,
            "sum_over_time" => RangeKernel::Sum,
            "min_over_time" => RangeKernel::Min,
            "max_over_time" => RangeKernel::Max,
            "count_over_time" => RangeKernel::Count,
            "last_over_time" => RangeKernel::Last,
            "present_over_time" => RangeKernel::Present,
            "stddev_over_time" => RangeKernel::Stddev,
            "stdvar_over_time" => RangeKernel::Stdvar,
            "quantile_over_time" => RangeKernel::Quantile,
            "predict_linear" => RangeKernel::PredictLinear,
            _ => return None,
        })
    }

    /// The PromQL function name.
    pub fn name(&self) -> &'static str {
        match self {
            RangeKernel::Rate => "rate",
            RangeKernel::Increase => "increase",
            RangeKernel::Irate => "irate",
            RangeKernel::Delta => "delta",
            RangeKernel::Idelta => "idelta",
            RangeKernel::Resets => "resets",
            RangeKernel::Changes => "changes",
            RangeKernel::Deriv => "deriv",
            RangeKernel::Avg => "avg_over_time",
            RangeKernel::Sum => "sum_over_time",
            RangeKernel::Min => "min_over_time",
            RangeKernel::Max => "max_over_time",
            RangeKernel::Count => "count_over_time",
            RangeKernel::Last => "last_over_time",
            RangeKernel::Present => "present_over_time",
            RangeKernel::Stddev => "stddev_over_time",
            RangeKernel::Stdvar => "stdvar_over_time",
            RangeKernel::Quantile => "quantile_over_time",
            RangeKernel::PredictLinear => "predict_linear",
        }
    }

    /// Position of the scalar parameter, when the function takes one.
    pub fn param_pos(&self) -> Option<ParamPos> {
        match self {
            RangeKernel::Quantile => Some(ParamPos::BeforeMatrix),
            RangeKernel::PredictLinear => Some(ParamPos::AfterMatrix),
            _ => None,
        }
    }

    /// Apply the kernel to one window. `ts` and `vals` are parallel
    /// columns with strictly increasing timestamps; `param` is the
    /// scalar argument (ignored by parameterless kernels).
    pub fn apply(&self, param: f64, ts: &[i64], vals: &[f64]) -> Option<f64> {
        let n = vals.len();
        match self {
            RangeKernel::Rate => counter_increase(ts, vals).map(|(inc, secs)| inc / secs),
            RangeKernel::Increase => counter_increase(ts, vals).map(|(inc, _)| inc),
            RangeKernel::Irate => {
                if n < 2 {
                    return None;
                }
                let secs = (ts[n - 1] - ts[n - 2]) as f64 / 1000.0;
                if secs <= 0.0 {
                    return None;
                }
                let inc = if vals[n - 1] >= vals[n - 2] {
                    vals[n - 1] - vals[n - 2]
                } else {
                    vals[n - 1]
                };
                Some(inc / secs)
            }
            RangeKernel::Delta => {
                if n < 2 {
                    return None;
                }
                Some(vals[n - 1] - vals[0])
            }
            RangeKernel::Idelta => {
                if n < 2 {
                    return None;
                }
                Some(vals[n - 1] - vals[n - 2])
            }
            RangeKernel::Resets => {
                nonempty(vals).map(|v| v.windows(2).filter(|w| w[1] < w[0]).count() as f64)
            }
            RangeKernel::Changes => {
                nonempty(vals).map(|v| v.windows(2).filter(|w| w[1] != w[0]).count() as f64)
            }
            RangeKernel::Deriv => lsq_slope(ts, vals).map(|(slope, _)| slope),
            RangeKernel::Avg => {
                nonempty(vals).map(|v| v.iter().sum::<f64>() / v.len() as f64)
            }
            RangeKernel::Sum => nonempty(vals).map(|v| v.iter().sum()),
            RangeKernel::Min => {
                nonempty(vals).map(|v| v.iter().copied().fold(f64::INFINITY, f64::min))
            }
            RangeKernel::Max => {
                nonempty(vals).map(|v| v.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            }
            RangeKernel::Count => nonempty(vals).map(|v| v.len() as f64),
            RangeKernel::Last => vals.last().copied(),
            RangeKernel::Present => nonempty(vals).map(|_| 1.0),
            RangeKernel::Stddev => nonempty(vals).map(|v| pop_variance(v).sqrt()),
            RangeKernel::Stdvar => nonempty(vals).map(pop_variance),
            RangeKernel::Quantile => nonempty(vals).map(|v| quantile(param, v)),
            RangeKernel::PredictLinear => {
                lsq_slope(ts, vals).map(|(slope, last)| last + slope * param)
            }
        }
    }
}

fn nonempty(vals: &[f64]) -> Option<&[f64]> {
    if vals.is_empty() {
        None
    } else {
        Some(vals)
    }
}

/// Counter increase over a window with reset detection; returns the
/// total increase and the covered seconds. `None` with <2 samples.
///
/// Deliberate divergence from Prometheus: no boundary extrapolation —
/// both generated and reference queries run through this same engine,
/// so execution-accuracy comparisons stay exact (see crate docs).
fn counter_increase(ts: &[i64], vals: &[f64]) -> Option<(f64, f64)> {
    let n = vals.len();
    if n < 2 {
        return None;
    }
    let secs = (ts[n - 1] - ts[0]) as f64 / 1000.0;
    if secs <= 0.0 {
        return None;
    }
    let mut inc = 0.0;
    for w in vals.windows(2) {
        if w[1] >= w[0] {
            inc += w[1] - w[0];
        } else {
            // Counter reset: the new value is the increase since reset.
            inc += w[1];
        }
    }
    Some((inc, secs))
}

/// Population variance of the value column.
fn pop_variance(vals: &[f64]) -> f64 {
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// Least-squares slope (per second) and last value.
fn lsq_slope(ts: &[i64], vals: &[f64]) -> Option<(f64, f64)> {
    if vals.len() < 2 {
        return None;
    }
    let n = vals.len() as f64;
    let t0 = ts[0];
    let xs: Vec<f64> = ts.iter().map(|&t| (t - t0) as f64 / 1000.0).collect();
    let sx: f64 = xs.iter().sum();
    let sy: f64 = vals.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(vals).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some((slope, *vals.last().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in [
            RangeKernel::Rate,
            RangeKernel::Increase,
            RangeKernel::Irate,
            RangeKernel::Delta,
            RangeKernel::Idelta,
            RangeKernel::Resets,
            RangeKernel::Changes,
            RangeKernel::Deriv,
            RangeKernel::Avg,
            RangeKernel::Sum,
            RangeKernel::Min,
            RangeKernel::Max,
            RangeKernel::Count,
            RangeKernel::Last,
            RangeKernel::Present,
            RangeKernel::Stddev,
            RangeKernel::Stdvar,
            RangeKernel::Quantile,
            RangeKernel::PredictLinear,
        ] {
            assert_eq!(RangeKernel::from_name(k.name()), Some(k));
        }
        assert_eq!(RangeKernel::from_name("histogram_quantile"), None);
    }

    #[test]
    fn rate_with_reset() {
        let ts = [0, 60_000, 120_000, 180_000];
        let vals = [0.0, 100.0, 20.0, 50.0];
        // 0→100 (+100), reset→20 (+20), 20→50 (+30) = 150 over 180s.
        let inc = RangeKernel::Increase.apply(0.0, &ts, &vals).unwrap();
        assert_eq!(inc, 150.0);
        let rate = RangeKernel::Rate.apply(0.0, &ts, &vals).unwrap();
        assert!((rate - 150.0 / 180.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample_windows() {
        for k in [RangeKernel::Rate, RangeKernel::Delta, RangeKernel::Deriv] {
            assert_eq!(k.apply(0.0, &[], &[]), None);
            assert_eq!(k.apply(0.0, &[1000], &[3.0]), None);
        }
        assert_eq!(RangeKernel::Avg.apply(0.0, &[], &[]), None);
        assert_eq!(RangeKernel::Last.apply(0.0, &[1000], &[3.0]), Some(3.0));
        assert_eq!(RangeKernel::Count.apply(0.0, &[1000], &[3.0]), Some(1.0));
    }

    #[test]
    fn over_time_family_matches_hand_results() {
        let ts = [0, 1000, 2000, 3000];
        let vals = [10.0, 12.0, 9.0, 15.0];
        assert_eq!(RangeKernel::Avg.apply(0.0, &ts, &vals), Some(11.5));
        assert_eq!(RangeKernel::Sum.apply(0.0, &ts, &vals), Some(46.0));
        assert_eq!(RangeKernel::Min.apply(0.0, &ts, &vals), Some(9.0));
        assert_eq!(RangeKernel::Max.apply(0.0, &ts, &vals), Some(15.0));
        assert_eq!(RangeKernel::Resets.apply(0.0, &ts, &vals), Some(1.0));
        assert_eq!(RangeKernel::Changes.apply(0.0, &ts, &vals), Some(3.0));
        assert_eq!(RangeKernel::Quantile.apply(0.5, &ts, &vals), Some(11.0));
    }

    #[test]
    fn predict_linear_extrapolates() {
        let ts: Vec<i64> = (0..=10).map(|k| k * 60_000).collect();
        let vals: Vec<f64> = (0..=10).map(|k| (k * 60) as f64).collect();
        let v = RangeKernel::PredictLinear.apply(60.0, &ts, &vals).unwrap();
        assert!((v - 660.0).abs() < 1e-6);
        let d = RangeKernel::Deriv.apply(0.0, &ts, &vals).unwrap();
        assert!((d - 1.0).abs() < 1e-9);
    }
}

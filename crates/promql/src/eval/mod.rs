//! Expression evaluation.

pub mod aggregate;
pub mod binop;
pub mod functions;
pub mod kernels;

use crate::ast::Expr;
use crate::error::EvalError;
use crate::value::{RangeSeries, Value, VectorSample};
use dio_tsdb::{Labels, MatchOp, Matcher, MetricStore};
use std::cell::Cell;

/// Evaluation context: the store, the evaluation timestamp, and
/// execution limits (used by the sandbox).
pub struct Evaluator<'a> {
    /// The metric store queried by selectors.
    pub store: &'a MetricStore,
    /// Instant-vector lookback window in ms.
    pub lookback_ms: i64,
    /// Maximum samples any single query may touch (0 = unlimited).
    pub max_samples: usize,
    samples_visited: Cell<usize>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator with the given lookback and sample budget.
    pub fn new(store: &'a MetricStore, lookback_ms: i64, max_samples: usize) -> Self {
        Evaluator {
            store,
            lookback_ms,
            max_samples,
            samples_visited: Cell::new(0),
        }
    }

    /// An evaluator whose sample counter starts at `visited` — used by
    /// the vectorized executor's interpreter fallback so a shared
    /// budget trips at exactly the same total either way.
    pub(crate) fn with_visited(
        store: &'a MetricStore,
        lookback_ms: i64,
        max_samples: usize,
        visited: usize,
    ) -> Self {
        Evaluator {
            store,
            lookback_ms,
            max_samples,
            samples_visited: Cell::new(visited),
        }
    }

    /// Samples touched so far.
    pub fn samples_visited(&self) -> usize {
        self.samples_visited.get()
    }

    fn charge(&self, n: usize) -> Result<(), EvalError> {
        let total = self.samples_visited.get() + n;
        self.samples_visited.set(total);
        if self.max_samples > 0 && total > self.max_samples {
            return Err(EvalError::LimitExceeded(format!(
                "query touched {total} samples, limit is {}",
                self.max_samples
            )));
        }
        Ok(())
    }

    /// Evaluate `expr` at timestamp `ts` (ms since epoch).
    pub fn eval(&self, expr: &Expr, ts: i64) -> Result<Value, EvalError> {
        match expr {
            Expr::NumberLiteral(n) => Ok(Value::Scalar(*n)),
            Expr::StringLiteral(s) => Ok(Value::Str(s.clone())),
            Expr::Paren(e) => self.eval(e, ts),
            Expr::VectorSelector {
                name,
                matchers,
                offset_ms,
            } => self.eval_vector_selector(name.as_deref(), matchers, *offset_ms, ts),
            Expr::MatrixSelector { selector, range_ms } => {
                self.eval_matrix_selector(selector, *range_ms, ts)
            }
            Expr::Subquery {
                expr,
                range_ms,
                step_ms,
                offset_ms,
            } => self.eval_subquery(expr, *range_ms, *step_ms, *offset_ms, ts),
            Expr::Neg(e) => match self.eval(e, ts)? {
                Value::Scalar(v) => Ok(Value::Scalar(-v)),
                Value::Vector(v) => Ok(Value::Vector(
                    v.into_iter()
                        .map(|s| VectorSample {
                            labels: s.labels.drop_name(),
                            value: -s.value,
                        })
                        .collect(),
                )),
                other => Err(EvalError::TypeMismatch(format!(
                    "cannot negate {}",
                    other.type_name()
                ))),
            },
            Expr::Binary {
                op,
                lhs,
                rhs,
                bool_modifier,
                matching,
            } => {
                let l = self.eval(lhs, ts)?;
                let r = self.eval(rhs, ts)?;
                binop::eval_binary(*op, l, r, *bool_modifier, matching)
            }
            Expr::Aggregate {
                op,
                param,
                expr,
                grouping,
            } => {
                let param_val = match param {
                    Some(p) => Some(self.eval(p, ts)?),
                    None => None,
                };
                let inner = self.eval(expr, ts)?;
                aggregate::eval_aggregate(*op, param_val, inner, grouping)
            }
            Expr::Call { func, args } => functions::eval_call(self, func, args, ts),
        }
    }

    /// Build the full matcher list for a selector (adding the implicit
    /// `__name__` equality matcher).
    fn full_matchers(name: Option<&str>, matchers: &[Matcher]) -> Vec<Matcher> {
        let mut all = Vec::with_capacity(matchers.len() + 1);
        if let Some(n) = name {
            all.push(Matcher {
                name: "__name__".to_string(),
                op: MatchOp::Eq,
                value: n.to_string(),
            });
        }
        all.extend(matchers.iter().cloned());
        all
    }

    fn eval_vector_selector(
        &self,
        name: Option<&str>,
        matchers: &[Matcher],
        offset_ms: i64,
        ts: i64,
    ) -> Result<Value, EvalError> {
        let all = Self::full_matchers(name, matchers);
        let at = ts - offset_ms;
        let mut out = Vec::new();
        let cache = self.store.page_cache();
        for series in self.store.select(&all) {
            if let Some(sample) = series.sample_at_cached(at, self.lookback_ms, cache) {
                self.charge(1)?;
                out.push(VectorSample {
                    labels: series.labels().clone(),
                    value: sample.value,
                });
            }
        }
        sort_vector(&mut out);
        Ok(Value::Vector(out))
    }

    fn eval_matrix_selector(
        &self,
        selector: &Expr,
        range_ms: i64,
        ts: i64,
    ) -> Result<Value, EvalError> {
        let (name, matchers, offset_ms) = match selector {
            Expr::VectorSelector {
                name,
                matchers,
                offset_ms,
            } => (name.as_deref(), matchers, *offset_ms),
            _ => {
                return Err(EvalError::TypeMismatch(
                    "range selector requires a vector selector".to_string(),
                ))
            }
        };
        let all = Self::full_matchers(name, matchers);
        let at = ts - offset_ms;
        let mut out = Vec::new();
        let cache = self.store.page_cache();
        for series in self.store.select(&all) {
            let window = series.window_cached(at, range_ms, cache);
            if !window.is_empty() {
                self.charge(window.len())?;
                out.push(RangeSeries {
                    labels: series.labels().clone(),
                    samples: window,
                });
            }
        }
        out.sort_by(|a, b| a.labels.cmp(&b.labels));
        Ok(Value::Matrix(out))
    }
}

/// Default subquery step when `expr[range:]` omits it — Prometheus uses
/// the global evaluation interval; we fix one minute.
pub const DEFAULT_SUBQUERY_STEP_MS: i64 = 60_000;

impl<'a> Evaluator<'a> {
    /// Evaluate `expr[range:step] offset o`: run the inner instant
    /// expression at aligned steps within `(t - o - range, t - o]` and
    /// assemble per-series sample windows.
    fn eval_subquery(
        &self,
        expr: &Expr,
        range_ms: i64,
        step_ms: Option<i64>,
        offset_ms: i64,
        ts: i64,
    ) -> Result<Value, EvalError> {
        let step = step_ms.unwrap_or(DEFAULT_SUBQUERY_STEP_MS).max(1);
        let end = ts - offset_ms;
        let start = end - range_ms;
        // Prometheus aligns subquery steps to absolute time (multiples
        // of step), evaluating at the first aligned point > start.
        let mut t = (start / step) * step;
        while t <= start {
            t += step;
        }

        let mut series: Vec<RangeSeries> = Vec::new();
        let mut index: std::collections::HashMap<Labels, usize> =
            std::collections::HashMap::new();
        while t <= end {
            let v = self.eval(expr, t)?;
            let points: Vec<(Labels, f64)> = match v {
                Value::Scalar(x) => vec![(Labels::empty(), x)],
                Value::Vector(v) => v.into_iter().map(|s| (s.labels, s.value)).collect(),
                other => {
                    return Err(EvalError::TypeMismatch(format!(
                        "subquery inner expression must be instant vector or scalar, got {}",
                        other.type_name()
                    )))
                }
            };
            for (labels, value) in points {
                self.charge(1)?;
                let idx = match index.get(&labels) {
                    Some(&i) => i,
                    None => {
                        index.insert(labels.clone(), series.len());
                        series.push(RangeSeries {
                            labels,
                            samples: Vec::new(),
                        });
                        series.len() - 1
                    }
                };
                series[idx].samples.push(dio_tsdb::Sample::new(t, value));
            }
            t += step;
        }
        series.sort_by(|a, b| a.labels.cmp(&b.labels));
        Ok(Value::Matrix(series))
    }
}

/// Canonical ordering for instant vectors (by labels), keeping results
/// deterministic across runs.
pub fn sort_vector(v: &mut [VectorSample]) {
    v.sort_by(|a, b| a.labels.cmp(&b.labels));
}

/// Drop the metric name from every sample (what arithmetic does).
pub fn drop_names(v: Vec<VectorSample>) -> Vec<VectorSample> {
    v.into_iter()
        .map(|s| VectorSample {
            labels: s.labels.drop_name(),
            value: s.value,
        })
        .collect()
}

/// Build an empty-labels sample vector from a scalar (used by `vector()`).
pub fn scalar_to_vector(v: f64) -> Vec<VectorSample> {
    vec![VectorSample {
        labels: Labels::empty(),
        value: v,
    }]
}

//! Aggregation operator evaluation.

use crate::ast::{AggOp, Grouping};
use crate::error::EvalError;
use crate::eval::sort_vector;
use crate::value::{Value, VectorSample};
use dio_tsdb::Labels;
use std::collections::HashMap;

/// Evaluate an aggregation over an instant vector.
pub fn eval_aggregate(
    op: AggOp,
    param: Option<Value>,
    inner: Value,
    grouping: &Grouping,
) -> Result<Value, EvalError> {
    let vector = match inner {
        Value::Vector(v) => v,
        other => {
            return Err(EvalError::TypeMismatch(format!(
                "aggregation {} requires an instant vector, got {}",
                op.as_str(),
                other.type_name()
            )))
        }
    };

    // Group samples.
    let mut groups: Vec<(Labels, Vec<VectorSample>)> = Vec::new();
    let mut index: HashMap<Labels, usize> = HashMap::new();
    for s in vector {
        let key = group_key(&s.labels, grouping);
        match index.get(&key) {
            Some(&i) => groups[i].1.push(s),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![s]));
            }
        }
    }

    let mut out: Vec<VectorSample> = Vec::new();
    match op {
        AggOp::Topk | AggOp::Bottomk => {
            let k = param_scalar(&param, op)? as usize;
            for (_, mut members) in groups {
                members.sort_by(|a, b| {
                    let ord = a.value.partial_cmp(&b.value).unwrap_or(std::cmp::Ordering::Equal);
                    if op == AggOp::Topk {
                        ord.reverse()
                    } else {
                        ord
                    }
                    .then_with(|| a.labels.cmp(&b.labels))
                });
                // topk/bottomk keep the original sample labels.
                out.extend(members.into_iter().take(k));
            }
        }
        AggOp::CountValues => {
            let label = match &param {
                Some(Value::Str(s)) => s.clone(),
                _ => {
                    return Err(EvalError::BadArguments(
                        "count_values requires a string label parameter".to_string(),
                    ))
                }
            };
            let mut counts: Vec<(Labels, f64)> = Vec::new();
            let mut cidx: HashMap<Labels, usize> = HashMap::new();
            for (key, members) in groups {
                for m in members {
                    let value_str = format_value(m.value);
                    let k = key.with(label.clone(), value_str);
                    match cidx.get(&k) {
                        Some(&i) => counts[i].1 += 1.0,
                        None => {
                            cidx.insert(k.clone(), counts.len());
                            counts.push((k, 1.0));
                        }
                    }
                }
            }
            out.extend(counts.into_iter().map(|(labels, value)| VectorSample { labels, value }));
        }
        _ => {
            for (key, members) in groups {
                let values: Vec<f64> = members.iter().map(|m| m.value).collect();
                let value = match op {
                    AggOp::Sum => values.iter().sum(),
                    AggOp::Avg => values.iter().sum::<f64>() / values.len() as f64,
                    AggOp::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
                    AggOp::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    AggOp::Count => values.len() as f64,
                    AggOp::Group => 1.0,
                    AggOp::Stddev => variance(&values).sqrt(),
                    AggOp::Stdvar => variance(&values),
                    AggOp::Quantile => {
                        let phi = param_scalar(&param, op)?;
                        quantile(phi, &values)
                    }
                    AggOp::Topk | AggOp::Bottomk | AggOp::CountValues => unreachable!(),
                };
                out.push(VectorSample { labels: key, value });
            }
        }
    }
    sort_vector(&mut out);
    Ok(Value::Vector(out))
}

fn group_key(labels: &Labels, grouping: &Grouping) -> Labels {
    match grouping {
        Grouping::None => Labels::empty(),
        Grouping::By(names) => {
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            labels.keep_only(&refs)
        }
        Grouping::Without(names) => {
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            labels.drop_listed_and_name(&refs)
        }
    }
}

fn param_scalar(param: &Option<Value>, op: AggOp) -> Result<f64, EvalError> {
    match param {
        Some(Value::Scalar(v)) => Ok(*v),
        _ => Err(EvalError::BadArguments(format!(
            "{} requires a scalar parameter",
            op.as_str()
        ))),
    }
}

/// Population variance (what Prometheus stdvar computes).
fn variance(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// φ-quantile with linear interpolation (Prometheus semantics).
pub fn quantile(phi: f64, values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    if phi < 0.0 {
        return f64::NEG_INFINITY;
    }
    if phi > 1.0 {
        return f64::INFINITY;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let rank = phi * (n - 1.0);
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    sorted[lower] * (1.0 - weight) + sorted[upper.min(sorted.len() - 1)] * weight
}

/// Format a float like Prometheus does for count_values labels.
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(pairs: &[(&[(&str, &str)], f64)]) -> Value {
        Value::Vector(
            pairs
                .iter()
                .map(|(ls, v)| VectorSample {
                    labels: Labels::from_pairs(ls.iter().map(|(a, b)| (*a, *b))),
                    value: *v,
                })
                .collect(),
        )
    }

    fn sample_vec() -> Value {
        vs(&[
            (&[("__name__", "m"), ("i", "a"), ("nf", "amf")], 10.0),
            (&[("__name__", "m"), ("i", "b"), ("nf", "amf")], 20.0),
            (&[("__name__", "m"), ("i", "c"), ("nf", "smf")], 40.0),
        ])
    }

    #[test]
    fn sum_all() {
        let v = eval_aggregate(AggOp::Sum, None, sample_vec(), &Grouping::None).unwrap();
        assert_eq!(v.as_scalar_like(), Some(70.0));
        match v {
            Value::Vector(v) => assert!(v[0].labels.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sum_by_nf() {
        let v = eval_aggregate(
            AggOp::Sum,
            None,
            sample_vec(),
            &Grouping::By(vec!["nf".into()]),
        )
        .unwrap();
        match v {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                let amf = v.iter().find(|s| s.labels.get("nf") == Some("amf")).unwrap();
                assert_eq!(amf.value, 30.0);
                let smf = v.iter().find(|s| s.labels.get("nf") == Some("smf")).unwrap();
                assert_eq!(smf.value, 40.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sum_without_instance() {
        let v = eval_aggregate(
            AggOp::Sum,
            None,
            sample_vec(),
            &Grouping::Without(vec!["i".into()]),
        )
        .unwrap();
        match v {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                // __name__ must be dropped by without.
                assert!(v.iter().all(|s| s.labels.name().is_none()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn avg_min_max_count() {
        let avg = eval_aggregate(AggOp::Avg, None, sample_vec(), &Grouping::None).unwrap();
        assert!((avg.as_scalar_like().unwrap() - 70.0 / 3.0).abs() < 1e-9);
        let min = eval_aggregate(AggOp::Min, None, sample_vec(), &Grouping::None).unwrap();
        assert_eq!(min.as_scalar_like(), Some(10.0));
        let max = eval_aggregate(AggOp::Max, None, sample_vec(), &Grouping::None).unwrap();
        assert_eq!(max.as_scalar_like(), Some(40.0));
        let count = eval_aggregate(AggOp::Count, None, sample_vec(), &Grouping::None).unwrap();
        assert_eq!(count.as_scalar_like(), Some(3.0));
        let group = eval_aggregate(AggOp::Group, None, sample_vec(), &Grouping::None).unwrap();
        assert_eq!(group.as_scalar_like(), Some(1.0));
    }

    #[test]
    fn stddev_stdvar() {
        let v = vs(&[(&[("i", "a")], 2.0), (&[("i", "b")], 4.0)]);
        let var = eval_aggregate(AggOp::Stdvar, None, v.clone(), &Grouping::None).unwrap();
        assert_eq!(var.as_scalar_like(), Some(1.0));
        let dev = eval_aggregate(AggOp::Stddev, None, v, &Grouping::None).unwrap();
        assert_eq!(dev.as_scalar_like(), Some(1.0));
    }

    #[test]
    fn topk_keeps_labels_and_sorts() {
        let v = eval_aggregate(
            AggOp::Topk,
            Some(Value::Scalar(2.0)),
            sample_vec(),
            &Grouping::None,
        )
        .unwrap();
        match v {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                // Original labels kept (name included).
                assert!(v.iter().all(|s| s.labels.name() == Some("m")));
                let vals: Vec<f64> = v.iter().map(|s| s.value).collect();
                assert!(vals.contains(&40.0) && vals.contains(&20.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bottomk() {
        let v = eval_aggregate(
            AggOp::Bottomk,
            Some(Value::Scalar(1.0)),
            sample_vec(),
            &Grouping::None,
        )
        .unwrap();
        match v {
            Value::Vector(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].value, 10.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantile_interpolates() {
        let v = vs(&[
            (&[("i", "a")], 0.0),
            (&[("i", "b")], 10.0),
            (&[("i", "c")], 20.0),
        ]);
        let q = eval_aggregate(
            AggOp::Quantile,
            Some(Value::Scalar(0.5)),
            v,
            &Grouping::None,
        )
        .unwrap();
        assert_eq!(q.as_scalar_like(), Some(10.0));
    }

    #[test]
    fn count_values_counts_distinct() {
        let v = vs(&[
            (&[("i", "a")], 5.0),
            (&[("i", "b")], 5.0),
            (&[("i", "c")], 7.0),
        ]);
        let out = eval_aggregate(
            AggOp::CountValues,
            Some(Value::Str("v".into())),
            v,
            &Grouping::None,
        )
        .unwrap();
        match out {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                let five = v.iter().find(|s| s.labels.get("v") == Some("5")).unwrap();
                assert_eq!(five.value, 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_on_scalar_is_error() {
        assert!(eval_aggregate(AggOp::Sum, None, Value::Scalar(1.0), &Grouping::None).is_err());
    }

    #[test]
    fn topk_requires_scalar_param() {
        assert!(eval_aggregate(
            AggOp::Topk,
            Some(Value::Str("x".into())),
            sample_vec(),
            &Grouping::None
        )
        .is_err());
    }

    #[test]
    fn empty_vector_aggregates_to_empty() {
        let out = eval_aggregate(AggOp::Sum, None, Value::Vector(vec![]), &Grouping::None).unwrap();
        assert_eq!(out, Value::Vector(vec![]));
    }

    #[test]
    fn quantile_edge_cases() {
        assert!(quantile(0.5, &[]).is_nan());
        assert_eq!(quantile(-0.1, &[1.0]), f64::NEG_INFINITY);
        assert_eq!(quantile(1.1, &[1.0]), f64::INFINITY);
        assert_eq!(quantile(0.0, &[3.0, 1.0, 2.0]), 1.0);
        assert_eq!(quantile(1.0, &[3.0, 1.0, 2.0]), 3.0);
    }
}

//! The query engine: parse + evaluate against a [`MetricStore`].

use crate::ast::Expr;
use crate::error::EvalError;
use crate::eval::Evaluator;
use crate::exec::ExecCtx;
use crate::parser::parse;
use crate::plan;
use crate::value::Value;
use dio_tsdb::{Labels, MetricStore, Sample, DEFAULT_LOOKBACK_MS};
use serde::{Deserialize, Serialize};

/// Which evaluation engine runs a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutorKind {
    /// Plan the AST into batch operators and execute over decoded
    /// column batches (the default; scans are memoised across range
    /// steps).
    #[default]
    Vectorized,
    /// Walk the AST per step. Kept as the differential-testing oracle;
    /// results are byte-identical to the vectorized engine.
    Interpreter,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Instant-selector lookback window (ms).
    pub lookback_ms: i64,
    /// Per-query sample budget (0 = unlimited). The sandbox sets this.
    pub max_samples: usize,
    /// Maximum steps a range query may evaluate.
    pub max_range_steps: usize,
    /// Evaluation engine (vectorized unless overridden).
    #[serde(default)]
    pub executor: ExecutorKind,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            lookback_ms: DEFAULT_LOOKBACK_MS,
            max_samples: 0,
            max_range_steps: 11_000,
            executor: ExecutorKind::Vectorized,
        }
    }
}

/// Statistics about an executed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryStats {
    /// Samples touched during evaluation.
    pub samples_visited: usize,
}

/// Multiply-shift hasher for pointer keys: on the per-sample
/// accumulation path the default SipHash costs more than the lookup it
/// guards, and the keys are already well-distributed addresses.
#[derive(Default, Clone, Copy)]
struct PtrHasher(u64);

impl std::hash::Hasher for PtrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_usize(&mut self, n: usize) {
        let mut h = (n as u64 ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
        self.0 = h;
    }
}

type PtrMap = std::collections::HashMap<usize, usize, std::hash::BuildHasherDefault<PtrHasher>>;

/// One series of a range-query result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeResult {
    /// Series identity.
    pub labels: Labels,
    /// One point per evaluation step.
    pub points: Vec<Sample>,
}

/// A PromQL query engine bound to a store.
///
/// The store rides behind an [`Arc`] so many engines — one per serving
/// worker — can evaluate concurrently over a single resident copy of
/// the data. Evaluation is read-only (`&self`); mutation for ingestion
/// goes through [`Engine::store_mut`], which copy-on-writes when the
/// store is shared.
#[derive(Debug, Clone)]
pub struct Engine {
    store: std::sync::Arc<MetricStore>,
    options: EngineOptions,
}

impl Engine {
    /// Engine with default options.
    pub fn new(store: MetricStore) -> Self {
        Engine {
            store: std::sync::Arc::new(store),
            options: EngineOptions::default(),
        }
    }

    /// Engine with explicit options.
    pub fn with_options(store: MetricStore, options: EngineOptions) -> Self {
        Engine {
            store: std::sync::Arc::new(store),
            options,
        }
    }

    /// Engine over an already-shared store (no copy): the concurrent
    /// serving path, where every worker reads the same resident tsdb.
    pub fn with_options_shared(store: std::sync::Arc<MetricStore>, options: EngineOptions) -> Self {
        Engine { store, options }
    }

    /// The underlying store.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// The shared handle to the store (cheap clone; no data copy).
    pub fn store_arc(&self) -> std::sync::Arc<MetricStore> {
        std::sync::Arc::clone(&self.store)
    }

    /// Mutable access to the store (for ingestion). Copy-on-write: if
    /// other engines share the store, this engine splits off its own
    /// copy first.
    pub fn store_mut(&mut self) -> &mut MetricStore {
        std::sync::Arc::make_mut(&mut self.store)
    }

    /// The configured options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Parse and evaluate at a single timestamp.
    pub fn instant_query(&self, query: &str, ts: i64) -> Result<Value, EvalError> {
        let expr = parse(query).map_err(|e| EvalError::Other(e.to_string()))?;
        self.instant_query_expr(&expr, ts).map(|(v, _)| v)
    }

    /// Evaluate a pre-parsed expression, returning stats too.
    pub fn instant_query_expr(
        &self,
        expr: &Expr,
        ts: i64,
    ) -> Result<(Value, QueryStats), EvalError> {
        match self.options.executor {
            ExecutorKind::Vectorized => {
                let plan = plan::plan(expr);
                let ctx = ExecCtx::new(
                    &self.store,
                    &plan,
                    self.options.lookback_ms,
                    self.options.max_samples,
                );
                let value = ctx.eval(ts)?;
                Ok((
                    value,
                    QueryStats {
                        samples_visited: ctx.samples_visited(),
                    },
                ))
            }
            ExecutorKind::Interpreter => {
                let ev =
                    Evaluator::new(&self.store, self.options.lookback_ms, self.options.max_samples);
                let value = ev.eval(expr, ts)?;
                Ok((
                    value,
                    QueryStats {
                        samples_visited: ev.samples_visited(),
                    },
                ))
            }
        }
    }

    /// Evaluate over `[start, end]` at `step` intervals — Prometheus
    /// range queries, used for dashboard panels. The expression must
    /// produce scalars or instant vectors per step.
    pub fn range_query(
        &self,
        query: &str,
        start: i64,
        end: i64,
        step_ms: i64,
    ) -> Result<Vec<RangeResult>, EvalError> {
        if step_ms <= 0 {
            return Err(EvalError::BadArguments("step must be positive".to_string()));
        }
        if end < start {
            return Err(EvalError::BadArguments(
                "range end before start".to_string(),
            ));
        }
        let steps = ((end - start) / step_ms) as usize + 1;
        if steps > self.options.max_range_steps {
            return Err(EvalError::LimitExceeded(format!(
                "range query would evaluate {steps} steps, limit is {}",
                self.options.max_range_steps
            )));
        }
        let expr = parse(query).map_err(|e| EvalError::Other(e.to_string()))?;

        // Plan once; the execution context memoises selector scans, so
        // every series is matched and decoded a single time no matter
        // how many steps follow.
        let compiled = match self.options.executor {
            ExecutorKind::Vectorized => Some(plan::plan(&expr)),
            ExecutorKind::Interpreter => None,
        };
        let ctx = compiled.as_ref().map(|p| {
            ExecCtx::new(
                &self.store,
                p,
                self.options.lookback_ms,
                self.options.max_samples,
            )
        });

        // Fused-kernel roots (`rate(m[5m])` panels) take a whole-range
        // fast path that accumulates per-series points directly.
        if let Some(ctx) = &ctx {
            let grid = crate::exec::StepGrid {
                start,
                steps,
                step_ms,
            };
            if let Some(result) = ctx.eval_range(grid) {
                return result;
            }
        }

        let mut series: Vec<RangeResult> = Vec::new();
        let mut index: std::collections::HashMap<Labels, usize> = std::collections::HashMap::new();
        let mut by_ptr: PtrMap = PtrMap::default();
        for k in 0..steps {
            let ts = start + k as i64 * step_ms;
            let value = match &ctx {
                Some(ctx) => {
                    // The sample budget is per step, as with the
                    // interpreter's per-step evaluators.
                    ctx.reset_samples();
                    ctx.eval(ts)?
                }
                None => self.instant_query_expr(&expr, ts)?.0,
            };
            let samples: Vec<(Labels, f64)> = match value {
                Value::Scalar(v) => vec![(Labels::empty(), v)],
                Value::Vector(v) => v.into_iter().map(|s| (s.labels, s.value)).collect(),
                other => {
                    return Err(EvalError::TypeMismatch(format!(
                        "range query steps must produce scalars or instant vectors, got {}",
                        other.type_name()
                    )))
                }
            };
            for (labels, v) in samples {
                // Pointer fast path: the vectorized executor emits the
                // same shared `Labels` allocation every step, so equal
                // pointers prove equal content without hashing the
                // strings. Fresh allocations (the interpreter path)
                // fall back to the content map.
                let idx = match by_ptr.get(&labels.ptr_id()) {
                    Some(&i) => i,
                    None => match index.get(&labels) {
                        // Same content in a different allocation (the
                        // interpreter mints fresh labels per step);
                        // registering its transient pointer would risk
                        // a reused address aliasing, so don't.
                        Some(&i) => i,
                        None => {
                            let i = series.len();
                            // Pinned for the query's lifetime by the
                            // clone stored in `series` below.
                            by_ptr.insert(labels.ptr_id(), i);
                            index.insert(labels.clone(), i);
                            series.push(RangeResult {
                                labels,
                                points: Vec::new(),
                            });
                            i
                        }
                    },
                };
                series[idx].points.push(Sample::new(ts, v));
            }
        }
        series.sort_by(|a, b| a.labels.cmp(&b.labels));
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let mut store = MetricStore::new();
        for inst in ["amf-0", "amf-1"] {
            let attempt = Labels::from_pairs([
                ("__name__", "reg_attempt"),
                ("instance", inst),
            ]);
            let success = Labels::from_pairs([
                ("__name__", "reg_success"),
                ("instance", inst),
            ]);
            for k in 0..=10i64 {
                store
                    .append(attempt.clone(), Sample::new(k * 60_000, (k * 100) as f64))
                    .unwrap();
                store
                    .append(success.clone(), Sample::new(k * 60_000, (k * 90) as f64))
                    .unwrap();
            }
        }
        Engine::new(store)
    }

    #[test]
    fn instant_query_end_to_end() {
        let e = engine();
        let v = e.instant_query("sum(reg_attempt)", 600_000).unwrap();
        assert_eq!(v.as_scalar_like(), Some(2000.0));
    }

    #[test]
    fn success_rate_expression() {
        let e = engine();
        let v = e
            .instant_query("100 * sum(reg_success) / sum(reg_attempt)", 600_000)
            .unwrap();
        assert!((v.as_scalar_like().unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn rate_query() {
        let e = engine();
        let v = e
            .instant_query("sum(rate(reg_attempt[5m]))", 600_000)
            .unwrap();
        // each instance grows 100/min = 5/3 per sec; two instances.
        assert!((v.as_scalar_like().unwrap() - 2.0 * 100.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn parse_error_reported() {
        let e = engine();
        let err = e.instant_query("sum(", 0).unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn stats_count_samples() {
        let e = engine();
        let expr = parse("sum(reg_attempt)").unwrap();
        let (_, stats) = e.instant_query_expr(&expr, 600_000).unwrap();
        assert_eq!(stats.samples_visited, 2);
    }

    #[test]
    fn sample_limit_enforced() {
        let mut e = engine();
        e.options.max_samples = 5;
        let err = e
            .instant_query("sum(rate(reg_attempt[10m]))", 600_000)
            .unwrap_err();
        assert!(matches!(err, EvalError::LimitExceeded(_)));
    }

    #[test]
    fn range_query_produces_series_per_instance() {
        let e = engine();
        let res = e
            .range_query("reg_attempt", 0, 300_000, 60_000)
            .unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].points.len(), 6);
        assert_eq!(res[0].points[5].value, 500.0);
    }

    #[test]
    fn range_query_limits_steps() {
        let mut e = engine();
        e.options.max_range_steps = 3;
        assert!(matches!(
            e.range_query("reg_attempt", 0, 600_000, 60_000),
            Err(EvalError::LimitExceeded(_))
        ));
    }

    #[test]
    fn range_query_validates_args() {
        let e = engine();
        assert!(e.range_query("m", 100, 0, 60_000).is_err());
        assert!(e.range_query("m", 0, 100, 0).is_err());
    }

    #[test]
    fn subquery_feeds_over_time_functions() {
        let e = engine();
        // max over the last 10 minutes of the 5m-rate: the counter grows
        // 100/min/instance, so the rate is constant at 200/60 ≈ 3.333.
        let v = e
            .instant_query("max_over_time(sum(rate(reg_attempt[5m]))[10m:1m])", 600_000)
            .unwrap();
        let x = v.as_scalar_like().expect("scalar-like");
        assert!((x - 200.0 / 60.0).abs() < 1e-9, "got {x}");
        // Default-step subquery works too.
        let v = e
            .instant_query("avg_over_time(sum(reg_attempt)[5m:])", 600_000)
            .unwrap();
        // Steps at 360..600s: values 1200,1400,1600,1800,2000 → mean 1600.
        assert_eq!(v.as_scalar_like(), Some(1600.0));
    }

    #[test]
    fn subquery_respects_offset() {
        let e = engine();
        let now = e
            .instant_query("max_over_time(sum(reg_attempt)[5m:1m])", 600_000)
            .unwrap()
            .as_scalar_like()
            .unwrap();
        let past = e
            .instant_query("max_over_time(sum(reg_attempt)[5m:1m] offset 5m)", 600_000)
            .unwrap()
            .as_scalar_like()
            .unwrap();
        assert!(past < now, "offset window must see older data: {past} vs {now}");
    }

    #[test]
    fn time_functions_decompose_civil_time() {
        let e = engine();
        // 2023-11-01T06:30:00Z = 1698820200s. It was a Wednesday (3).
        let ts = 1_698_820_200_000i64;
        for (q, expected) in [
            ("hour()", 6.0),
            ("minute()", 30.0),
            ("day_of_week()", 3.0),
            ("day_of_month()", 1.0),
            ("month()", 11.0),
            ("year()", 2023.0),
            ("days_in_month()", 30.0),
            ("day_of_year()", 305.0),
        ] {
            let v = e.instant_query(q, ts).unwrap();
            assert_eq!(v.as_scalar_like(), Some(expected), "{q}");
        }
        // Leap-year February.
        let feb2024 = 1_709_164_800_000i64; // 2024-02-29T00:00:00Z
        assert_eq!(
            e.instant_query("days_in_month()", feb2024)
                .unwrap()
                .as_scalar_like(),
            Some(29.0)
        );
        assert_eq!(
            e.instant_query("day_of_month()", feb2024)
                .unwrap()
                .as_scalar_like(),
            Some(29.0)
        );
    }

    #[test]
    fn vector_matching_by_instance() {
        let e = engine();
        let v = e
            .instant_query("reg_success / reg_attempt", 600_000)
            .unwrap();
        match v {
            Value::Vector(v) => {
                assert_eq!(v.len(), 2);
                for s in v {
                    assert!((s.value - 0.9).abs() < 1e-9);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

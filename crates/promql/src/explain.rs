//! Natural-language explanation of PromQL expressions.
//!
//! The copilot's response (paper Figure 1b) doesn't just show the query
//! — it explains what the query computes. This module renders an AST as
//! plain English, composed bottom-up so arbitrary generated expressions
//! explain themselves.

use crate::ast::{AggOp, BinOp, Expr, Grouping};
use crate::printer::format_duration;

/// Explain an expression in one English sentence (without the trailing
/// period).
pub fn explain_expr(expr: &Expr) -> String {
    match expr {
        Expr::NumberLiteral(n) => format!("the constant {n}"),
        Expr::StringLiteral(s) => format!("the string \"{s}\""),
        Expr::VectorSelector {
            name,
            matchers,
            offset_ms,
        } => {
            let mut out = match name {
                Some(n) => format!("the current value of `{n}`"),
                None => "the selected series".to_string(),
            };
            if !matchers.is_empty() {
                let parts: Vec<String> = matchers.iter().map(|m| m.to_string()).collect();
                out.push_str(&format!(" where {}", parts.join(" and ")));
            }
            if *offset_ms > 0 {
                out.push_str(&format!(", as of {} ago", format_duration(*offset_ms)));
            }
            out
        }
        Expr::MatrixSelector { selector, range_ms } => format!(
            "{} over the last {}",
            explain_expr(selector),
            format_duration(*range_ms)
        ),
        Expr::Subquery {
            expr,
            range_ms,
            step_ms,
            ..
        } => {
            let step = step_ms
                .map(|s| format!(" at {} resolution", format_duration(s)))
                .unwrap_or_default();
            format!(
                "{}, re-evaluated over the last {}{}",
                explain_expr(expr),
                format_duration(*range_ms),
                step
            )
        }
        Expr::Neg(e) => format!("the negation of {}", explain_expr(e)),
        Expr::Paren(e) => explain_expr(e),
        Expr::Binary { op, lhs, rhs, .. } => {
            let verb = match op {
                BinOp::Add => "plus",
                BinOp::Sub => "minus",
                BinOp::Mul => "multiplied by",
                BinOp::Div => "divided by",
                BinOp::Mod => "modulo",
                BinOp::Pow => "raised to",
                BinOp::Eq => "where it equals",
                BinOp::Ne => "where it differs from",
                BinOp::Gt => "where it exceeds",
                BinOp::Lt => "where it is below",
                BinOp::Gte => "where it is at least",
                BinOp::Lte => "where it is at most",
                BinOp::And => "intersected with",
                BinOp::Or => "united with",
                BinOp::Unless => "excluding",
            };
            format!("{} {} {}", explain_expr(lhs), verb, explain_expr(rhs))
        }
        Expr::Aggregate {
            op,
            param,
            expr,
            grouping,
        } => {
            let verb = match op {
                AggOp::Sum => "the sum of",
                AggOp::Avg => "the average of",
                AggOp::Min => "the minimum of",
                AggOp::Max => "the maximum of",
                AggOp::Count => "the number of series in",
                AggOp::Group => "the grouped presence of",
                AggOp::Stddev => "the standard deviation of",
                AggOp::Stdvar => "the variance of",
                AggOp::Topk => "the largest values of",
                AggOp::Bottomk => "the smallest values of",
                AggOp::Quantile => "a quantile of",
                AggOp::CountValues => "the value counts of",
            };
            let mut out = match (op, param) {
                (AggOp::Topk | AggOp::Bottomk, Some(p)) => {
                    format!("the {} {verb} {}", explain_expr(p), explain_expr(expr))
                        .replace("the the", "the")
                }
                (AggOp::Quantile, Some(p)) => format!(
                    "the {}-quantile of {}",
                    explain_expr(p).replace("the constant ", ""),
                    explain_expr(expr)
                ),
                _ => format!("{verb} {}", explain_expr(expr)),
            };
            match grouping {
                Grouping::None => out.push_str(" across all series"),
                Grouping::By(ls) => out.push_str(&format!(" per {}", ls.join(", "))),
                Grouping::Without(ls) => {
                    out.push_str(&format!(" aggregated over {}", ls.join(", ")))
                }
            }
            out
        }
        Expr::Call { func, args } => {
            let inner = args.first().map(explain_expr).unwrap_or_default();
            match func.as_str() {
                "rate" => format!("the per-second rate of {inner}"),
                "irate" => format!("the instantaneous per-second rate of {inner}"),
                "increase" => format!("the total increase of {inner}"),
                "delta" => format!("the change in {inner}"),
                "avg_over_time" => format!("the time-average of {inner}"),
                "max_over_time" => format!("the peak of {inner}"),
                "min_over_time" => format!("the low point of {inner}"),
                "sum_over_time" => format!("the accumulated total of {inner}"),
                "histogram_quantile" => {
                    let phi = args.first().map(explain_expr).unwrap_or_default();
                    let v = args.get(1).map(explain_expr).unwrap_or_default();
                    format!(
                        "the {}-quantile estimated from the histogram {v}",
                        phi.replace("the constant ", "")
                    )
                }
                "time" => "the evaluation time".to_string(),
                _ => format!("{func} applied to {inner}"),
            }
        }
    }
}

/// Explain a query string; parse errors explain themselves.
pub fn explain_query(query: &str) -> String {
    match crate::parser::parse(query) {
        Ok(expr) => {
            let body = explain_expr(&expr);
            format!("This computes {body}.")
        }
        Err(e) => format!("This query does not parse: {e}."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explains_the_success_rate_shape() {
        let e = explain_query("100 * sum(reg_success) / sum(reg_attempt)");
        assert_eq!(
            e,
            "This computes the constant 100 multiplied by the sum of the current value of \
             `reg_success` across all series divided by the sum of the current value of \
             `reg_attempt` across all series."
        );
    }

    #[test]
    fn explains_rate_queries() {
        let e = explain_query("sum(rate(m[5m]))");
        assert!(e.contains("per-second rate"));
        assert!(e.contains("over the last 5m"));
    }

    #[test]
    fn explains_grouping_and_matchers() {
        let e = explain_query(r#"avg by (nf) (m{instance="amf-0"})"#);
        assert!(e.contains("per nf"));
        assert!(e.contains("instance=\"amf-0\""));
    }

    #[test]
    fn explains_offsets_and_subqueries() {
        let e = explain_query("max_over_time(sum(m)[30m:1m]) ");
        assert!(e.contains("re-evaluated over the last 30m"));
        let e = explain_query("m offset 1h");
        assert!(e.contains("as of 1h ago"));
    }

    #[test]
    fn explains_topk_and_quantile() {
        let e = explain_query("topk(3, m)");
        assert!(e.contains("largest values"), "{e}");
        let e = explain_query("quantile(0.9, m)");
        assert!(e.contains("0.9-quantile"), "{e}");
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        let e = explain_query("sum((");
        assert!(e.contains("does not parse"));
    }
}

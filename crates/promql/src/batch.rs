//! Decoded column batches for the vectorized executor.

use dio_tsdb::Labels;

/// One series' full sample set as columns. Built once per physical
/// scan (per query), then every evaluation step slices windows out of
/// it with two binary searches — no per-step decode, no per-step
/// sample materialisation.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesBatch {
    /// Series identity (full label set including `__name__`).
    pub labels: Labels,
    /// Timestamp column (ms), strictly increasing.
    pub ts: Vec<i64>,
    /// Value column, parallel to `ts`.
    pub vals: Vec<f64>,
}

impl SeriesBatch {
    /// Index bounds `[lo, hi)` of the samples in the half-open time
    /// window `(start, end]`.
    pub fn window(&self, start: i64, end: i64) -> (usize, usize) {
        let lo = self.ts.partition_point(|&t| t <= start);
        let hi = self.ts.partition_point(|&t| t <= end);
        (lo, hi)
    }

    /// Like [`SeriesBatch::window`], but advancing from a previous
    /// step's bounds instead of binary-searching from scratch. Correct
    /// only when `start` and `end` never decrease across calls
    /// (ascending range-query steps): both bounds are monotone in the
    /// window edges, so a linear advance from the old bounds finds the
    /// same partition points, amortising to one pass over the column
    /// for the whole range query.
    pub fn window_from(&self, start: i64, end: i64, hint: (usize, usize)) -> (usize, usize) {
        let (mut lo, mut hi) = hint;
        while lo < self.ts.len() && self.ts[lo] <= start {
            lo += 1;
        }
        while hi < self.ts.len() && self.ts[hi] <= end {
            hi += 1;
        }
        (lo, hi)
    }

    /// Most recent value at or before `ts` within `lookback_ms` —
    /// instant-vector selection over columns.
    pub fn value_at(&self, ts: i64, lookback_ms: i64) -> Option<f64> {
        let i = self.ts.partition_point(|&t| t <= ts);
        if i == 0 || ts - self.ts[i - 1] > lookback_ms {
            None
        } else {
            Some(self.vals[i - 1])
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> SeriesBatch {
        SeriesBatch {
            labels: Labels::name_only("m"),
            ts: vec![1000, 2000, 3000, 4000],
            vals: vec![1.0, 2.0, 3.0, 4.0],
        }
    }

    #[test]
    fn window_is_half_open() {
        let b = batch();
        assert_eq!(b.window(1000, 3000), (1, 3)); // (1000, 3000]
        assert_eq!(b.window(0, 5000), (0, 4));
        assert_eq!(b.window(4000, 9000), (4, 4)); // empty
        assert_eq!(b.window(500, 999), (0, 0));
    }

    #[test]
    fn value_at_respects_lookback() {
        let b = batch();
        assert_eq!(b.value_at(2500, 5000), Some(2.0));
        assert_eq!(b.value_at(2000, 5000), Some(2.0));
        assert_eq!(b.value_at(999, 5000), None);
        assert_eq!(b.value_at(9000, 1000), None);
        assert_eq!(b.value_at(5000, 1000), Some(4.0));
    }
}

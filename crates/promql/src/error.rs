//! Parse and evaluation errors.

use serde::{Deserialize, Serialize};

/// A syntax error with position information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl ParseError {
    /// Construct a parse error.
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A query evaluation error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvalError {
    /// Operator or function applied to the wrong value type.
    TypeMismatch(String),
    /// Unknown function name.
    UnknownFunction(String),
    /// Wrong number or type of function arguments.
    BadArguments(String),
    /// Many-to-many or unexpected many-to-one vector match.
    VectorMatch(String),
    /// Query exceeded a configured execution limit.
    LimitExceeded(String),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::UnknownFunction(m) => write!(f, "unknown function: {m}"),
            EvalError::BadArguments(m) => write!(f, "bad arguments: {m}"),
            EvalError::VectorMatch(m) => write!(f, "vector matching error: {m}"),
            EvalError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            EvalError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let p = ParseError::new("unexpected token", 7);
        assert_eq!(p.to_string(), "parse error at 7: unexpected token");
        let e = EvalError::UnknownFunction("frobnicate".into());
        assert!(e.to_string().contains("frobnicate"));
    }
}

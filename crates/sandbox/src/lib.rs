//! # dio-sandbox
//!
//! Sandboxed query execution (paper §3.3: "The generated code is
//! executed on the database in a sandboxed environment", citing the
//! classic Janus confinement paper; §5.4 raises "the risk of
//! unintentional execution of harmful code and controlling access to
//! sensitive data").
//!
//! Model-generated PromQL is untrusted input. The sandbox:
//!
//! * statically **vets** the parsed expression against a
//!   [`SafetyPolicy`] — function allowlist, range-window ceiling,
//!   sensitive-metric deny patterns, expression-size bound;
//! * **executes** with hard resource limits (per-query sample budget
//!   enforced inside the engine);
//! * **audits** every attempt, allowed or refused.

pub mod audit;
pub mod executor;
pub mod policy;

pub use audit::{AuditEntry, AuditLog, AuditOutcome};
pub use executor::{DataCompleteness, ExecutionOutcome, Sandbox, SandboxError, StoreResolver};
pub use policy::{PolicyViolation, SafetyPolicy};

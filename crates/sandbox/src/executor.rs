//! Vetted, resource-limited execution of untrusted queries.

use crate::audit::{AuditLog, AuditOutcome};
use crate::policy::{PolicyViolation, SafetyPolicy};
use dio_promql::{parse, Engine, EngineOptions, QueryStats, Value};
use dio_tsdb::MetricStore;

/// A successfully executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// The query result.
    pub value: Value,
    /// Execution statistics.
    pub stats: QueryStats,
    /// Canonical form of the vetted expression.
    pub canonical_query: String,
}

/// Why an execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SandboxError {
    /// Syntax error.
    Parse(String),
    /// Policy refusal.
    Refused(PolicyViolation),
    /// Runtime failure (type errors, limits).
    Eval(String),
}

impl std::fmt::Display for SandboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SandboxError::Parse(m) => write!(f, "parse: {m}"),
            SandboxError::Refused(v) => write!(f, "refused by policy: {v}"),
            SandboxError::Eval(m) => write!(f, "evaluation: {m}"),
        }
    }
}

impl std::error::Error for SandboxError {}

/// The sandbox: engine + policy + audit log.
#[derive(Debug)]
pub struct Sandbox {
    engine: Engine,
    policy: SafetyPolicy,
    audit: AuditLog,
}

impl Sandbox {
    /// Build a sandbox over a store with a policy. The policy's sample
    /// budget is installed into the engine.
    pub fn new(store: MetricStore, policy: SafetyPolicy) -> Self {
        let engine = Engine::with_options(
            store,
            EngineOptions {
                max_samples: policy.max_samples,
                ..EngineOptions::default()
            },
        );
        Sandbox {
            engine,
            policy,
            audit: AuditLog::new(),
        }
    }

    /// The wrapped engine (read-only).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The active policy.
    pub fn policy(&self) -> &SafetyPolicy {
        &self.policy
    }

    /// Vet and execute one untrusted query at `ts`.
    pub fn execute(&mut self, query: &str, ts: i64) -> Result<ExecutionOutcome, SandboxError> {
        let expr = match parse(query) {
            Ok(e) => e,
            Err(e) => {
                self.audit.record(
                    query,
                    ts,
                    AuditOutcome::ParseFailed {
                        reason: e.to_string(),
                    },
                );
                return Err(SandboxError::Parse(e.to_string()));
            }
        };
        if let Err(v) = self.policy.vet(&expr) {
            self.audit.record(
                query,
                ts,
                AuditOutcome::Refused {
                    reason: v.to_string(),
                },
            );
            return Err(SandboxError::Refused(v));
        }
        match self.engine.instant_query_expr(&expr, ts) {
            Ok((value, stats)) => {
                self.audit.record(query, ts, AuditOutcome::Executed);
                Ok(ExecutionOutcome {
                    value,
                    stats,
                    canonical_query: dio_promql::format_expr(&expr),
                })
            }
            Err(e) => {
                self.audit.record(
                    query,
                    ts,
                    AuditOutcome::EvalFailed {
                        reason: e.to_string(),
                    },
                );
                Err(SandboxError::Eval(e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_tsdb::{Labels, Sample};

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        let l = Labels::name_only("reqs_total");
        for k in 0..=10i64 {
            st.append(l.clone(), Sample::new(k * 60_000, (k * 60) as f64))
                .unwrap();
        }
        st
    }

    #[test]
    fn executes_safe_query() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let out = sb.execute("sum(rate(reqs_total[5m]))", 600_000).unwrap();
        assert_eq!(out.value.as_scalar_like(), Some(1.0));
        assert!(out.stats.samples_visited > 0);
        assert_eq!(sb.audit().executed_count(), 1);
    }

    #[test]
    fn refuses_and_audits_policy_violation() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let err = sb.execute("rate(reqs_total[7d])", 600_000).unwrap_err();
        assert!(matches!(err, SandboxError::Refused(_)));
        assert_eq!(sb.audit().refused_count(), 1);
        assert_eq!(sb.audit().executed_count(), 0);
    }

    #[test]
    fn parse_errors_are_audited() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let err = sb.execute("sum((", 0).unwrap_err();
        assert!(matches!(err, SandboxError::Parse(_)));
        assert!(matches!(
            sb.audit().entries()[0].outcome,
            AuditOutcome::ParseFailed { .. }
        ));
    }

    #[test]
    fn sample_budget_is_enforced() {
        let policy = SafetyPolicy {
            max_samples: 3,
            ..SafetyPolicy::default()
        };
        let mut sb = Sandbox::new(store(), policy);
        let err = sb.execute("sum(rate(reqs_total[10m]))", 600_000).unwrap_err();
        assert!(matches!(err, SandboxError::Eval(_)));
        assert!(matches!(
            sb.audit().entries()[0].outcome,
            AuditOutcome::EvalFailed { .. }
        ));
    }

    #[test]
    fn canonical_query_is_reported() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let out = sb.execute("sum( reqs_total )", 600_000).unwrap();
        assert_eq!(out.canonical_query, "sum(reqs_total)");
    }
}

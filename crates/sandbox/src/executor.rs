//! Vetted, resource-limited execution of untrusted queries.

use crate::audit::{AuditLog, AuditOutcome};
use crate::policy::{PolicyViolation, SafetyPolicy};
use dio_faults::{DataFaultKind, Injector};
use dio_promql::{parse, Engine, EngineOptions, ParseError, QueryStats, Value};
use dio_tsdb::MetricStore;
use serde::{Deserialize, Serialize};

/// How much of the underlying data an execution actually saw. A
/// degraded tsdb (chaos-injected short reads, quarantined series) still
/// answers, but the answer is annotated so downstream consumers — and
/// the user — know it was computed over partial data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DataCompleteness {
    /// The store served every sample the query asked for.
    #[default]
    Complete,
    /// The store was degraded during this execution; the result may be
    /// computed over a subset of the data.
    Partial,
}

impl DataCompleteness {
    /// Stable label value for metrics and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            DataCompleteness::Complete => "complete",
            DataCompleteness::Partial => "partial",
        }
    }
}

impl std::fmt::Display for DataCompleteness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// A successfully executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// The query result.
    pub value: Value,
    /// Execution statistics.
    pub stats: QueryStats,
    /// Canonical form of the vetted expression.
    pub canonical_query: String,
    /// Whether the store was healthy while the query ran.
    pub completeness: DataCompleteness,
}

/// Why an execution failed. Each variant keeps the structured diagnosis
/// (not a flattened string) so callers can build targeted repair
/// prompts.
#[derive(Debug, Clone, PartialEq)]
pub enum SandboxError {
    /// Syntax error, with the offending position preserved.
    Parse(ParseError),
    /// Policy refusal, with the violated rule preserved.
    Refused(PolicyViolation),
    /// Runtime failure (type errors, limits).
    Eval(String),
    /// The metric store failed transiently (an I/O fault, not a bad
    /// query). The same query is expected to succeed on retry.
    Storage(String),
}

impl SandboxError {
    /// A one-line instruction telling a model *what to change* in the
    /// failed query — the structured counterpart of [`Display`], phrased
    /// as guidance rather than diagnosis.
    pub fn repair_hint(&self, query: &str) -> String {
        match self {
            SandboxError::Parse(e) => {
                // Point at the offending span: a short window around the
                // error position (clamped to char boundaries).
                let mut start = e.position.min(query.len());
                while start > 0 && !query.is_char_boundary(start) {
                    start -= 1;
                }
                let mut end = (start + 12).min(query.len());
                while end < query.len() && !query.is_char_boundary(end) {
                    end += 1;
                }
                let span = &query[start..end];
                if span.is_empty() {
                    format!(
                        "the query is cut short at position {} ({}); complete the expression",
                        e.position, e.message
                    )
                } else {
                    format!(
                        "fix the syntax near '{span}' (position {}): {}",
                        e.position, e.message
                    )
                }
            }
            SandboxError::Refused(v) => match v {
                PolicyViolation::ForbiddenFunction(name) => {
                    format!("remove the call to '{name}'; that function is not allowed")
                }
                PolicyViolation::RangeTooWide { max_ms, .. } => format!(
                    "shrink the range selector to at most {}m",
                    max_ms / 60_000
                ),
                PolicyViolation::OffsetTooFar { max_ms, .. } => {
                    format!("reduce the offset to at most {}m", max_ms / 60_000)
                }
                PolicyViolation::SensitiveMetric(name) => {
                    format!("do not reference the metric '{name}'; it is access-restricted")
                }
                PolicyViolation::TooDeep { max, .. } => {
                    format!("simplify the expression to at most {max} nesting levels")
                }
            },
            SandboxError::Eval(m) => format!("rewrite the query to avoid: {m}"),
            SandboxError::Storage(m) => format!(
                "the data store failed transiently ({m}); retry the same query unchanged"
            ),
        }
    }

    /// True when the failure is a transient storage fault: the query is
    /// fine, the medium hiccuped, and a retry (not a repair) is the
    /// right recovery.
    pub fn is_storage_fault(&self) -> bool {
        matches!(self, SandboxError::Storage(_))
    }

    /// The violated policy rule, when this is a refusal.
    pub fn violated_rule(&self) -> Option<&PolicyViolation> {
        match self {
            SandboxError::Refused(v) => Some(v),
            _ => None,
        }
    }

    /// The byte offset of the syntax error, when this is a parse
    /// failure.
    pub fn parse_position(&self) -> Option<usize> {
        match self {
            SandboxError::Parse(e) => Some(e.position),
            _ => None,
        }
    }
}

impl std::fmt::Display for SandboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SandboxError::Parse(e) => write!(f, "parse error: {e}"),
            SandboxError::Refused(v) => write!(f, "policy refusal: {v}"),
            SandboxError::Eval(m) => write!(f, "evaluation error: {m}"),
            SandboxError::Storage(m) => write!(f, "storage fault: {m}"),
        }
    }
}

impl std::error::Error for SandboxError {}

/// Resolves the metric families a vetted query references to the store
/// it should evaluate against.
///
/// This is the seam a sharded data plane plugs into: a cluster router
/// implements it by mapping families to owning shards (sharing one
/// shard's store for a single-owner query, merging across shards
/// otherwise). `dynamic` is true when the query contains a selector
/// whose metric name is not a literal (a name-pattern selector), in
/// which case the returned store must cover the full keyspace, not
/// just `families`.
///
/// An `Err` is a *transient* storage fault — the keyspace is briefly
/// unavailable (e.g. a shard mid-failover) and the same call is
/// expected to succeed on retry. It surfaces as
/// [`SandboxError::Storage`], riding the copilot's existing
/// storage-retry and degraded-fallback machinery.
pub trait StoreResolver: Send + Sync + std::fmt::Debug {
    /// Resolve a store covering at least `families` (the whole keyspace
    /// when `dynamic`).
    fn resolve(
        &self,
        families: &[String],
        dynamic: bool,
    ) -> Result<std::sync::Arc<MetricStore>, String>;

    /// [`StoreResolver::resolve`] carrying the caller's trace context.
    /// A distributed resolver records one child span per shard it
    /// touches (tagged with the routing path) under `parent`; the
    /// default implementation just delegates, so single-store resolvers
    /// need not care about tracing.
    fn resolve_traced(
        &self,
        families: &[String],
        dynamic: bool,
        trace: Option<(&dio_obs::Tracer, &dio_obs::SpanContext)>,
    ) -> Result<std::sync::Arc<MetricStore>, String> {
        let _ = trace;
        self.resolve(families, dynamic)
    }
}

/// Instrument name/help for per-outcome execution counts.
const EXECUTIONS_NAME: &str = "dio_sandbox_executions_total";
const EXECUTIONS_HELP: &str = "Untrusted queries the sandbox vetted and executed, by outcome.";

/// Instrument name/help for injected data-plane fault counts.
const DATA_FAULTS_NAME: &str = "dio_sandbox_data_faults_total";
const DATA_FAULTS_HELP: &str =
    "Data-plane faults the chaos layer injected into sandbox executions, by kind.";

/// The sandbox: engine + policy + audit log.
#[derive(Debug)]
pub struct Sandbox {
    engine: Engine,
    policy: SafetyPolicy,
    audit: AuditLog,
    registry: Option<dio_obs::Registry>,
    chaos: Option<Injector>,
    resolver: Option<std::sync::Arc<dyn StoreResolver>>,
}

impl Sandbox {
    /// Build a sandbox over a store with a policy. The policy's sample
    /// budget is installed into the engine.
    pub fn new(store: MetricStore, policy: SafetyPolicy) -> Self {
        Sandbox::new_shared(std::sync::Arc::new(store), policy)
    }

    /// Build a sandbox over an already-shared store: the serving path,
    /// where N worker sandboxes read one resident tsdb concurrently.
    /// Audit log, registry handle, and chaos schedule stay per-sandbox.
    pub fn new_shared(store: std::sync::Arc<MetricStore>, policy: SafetyPolicy) -> Self {
        let engine = Engine::with_options_shared(
            store,
            EngineOptions {
                max_samples: policy.max_samples,
                ..EngineOptions::default()
            },
        );
        Sandbox {
            engine,
            policy,
            audit: AuditLog::new(),
            registry: None,
            chaos: None,
            resolver: None,
        }
    }

    /// Route every execution's store lookup through `resolver` instead
    /// of the resident engine store. The resident store stays in place
    /// for [`Sandbox::store_arc`] / [`Sandbox::engine`] callers; only
    /// query evaluation is redirected.
    pub fn attach_store_resolver(&mut self, resolver: std::sync::Arc<dyn StoreResolver>) {
        self.resolver = Some(resolver);
    }

    /// The attached store resolver, if any (cheap handle clone).
    pub fn store_resolver(&self) -> Option<std::sync::Arc<dyn StoreResolver>> {
        self.resolver.clone()
    }

    /// The shared handle to the underlying store (cheap clone).
    pub fn store_arc(&self) -> std::sync::Arc<MetricStore> {
        self.engine.store_arc()
    }

    /// Subject every execution to a data-plane fault schedule (the
    /// chaos harness for the tsdb the engine reads). Transient I/O
    /// faults become [`SandboxError::Storage`]; read corruption
    /// degrades the outcome to [`DataCompleteness::Partial`] instead of
    /// failing; latency spikes are recorded, never slept.
    pub fn attach_data_chaos(&mut self, injector: Injector) {
        if let Some(registry) = &self.registry {
            registry.counter_with(DATA_FAULTS_NAME, DATA_FAULTS_HELP, &[("kind", "transient_io")]);
        }
        self.chaos = Some(injector);
    }

    /// The attached fault schedule, if any.
    pub fn data_chaos(&self) -> Option<&Injector> {
        self.chaos.as_ref()
    }

    /// Count executions into `registry` as
    /// `dio_sandbox_executions_total{outcome}`. The `executed` series is
    /// registered at zero immediately so the family exports before the
    /// first query.
    pub fn attach_obs(&mut self, registry: dio_obs::Registry) {
        registry.counter_with(EXECUTIONS_NAME, EXECUTIONS_HELP, &[("outcome", "executed")]);
        self.registry = Some(registry);
    }

    fn count_outcome(&self, outcome: &'static str) {
        if let Some(registry) = &self.registry {
            registry
                .counter_with(EXECUTIONS_NAME, EXECUTIONS_HELP, &[("outcome", outcome)])
                .inc();
        }
    }

    /// The wrapped engine (read-only).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The active policy.
    pub fn policy(&self) -> &SafetyPolicy {
        &self.policy
    }

    /// Vet and execute one untrusted query at `ts`.
    pub fn execute(&mut self, query: &str, ts: i64) -> Result<ExecutionOutcome, SandboxError> {
        self.execute_traced(query, ts, None)
    }

    /// [`Sandbox::execute`] carrying the caller's trace context, which
    /// rides into the store resolver so a sharded data plane can record
    /// per-shard child spans under the caller's execute span.
    pub fn execute_traced(
        &mut self,
        query: &str,
        ts: i64,
        trace: Option<(&dio_obs::Tracer, &dio_obs::SpanContext)>,
    ) -> Result<ExecutionOutcome, SandboxError> {
        let expr = match parse(query) {
            Ok(e) => e,
            Err(e) => {
                self.audit.record(
                    query,
                    ts,
                    AuditOutcome::ParseFailed {
                        reason: e.to_string(),
                    },
                );
                self.count_outcome("parse_failed");
                return Err(SandboxError::Parse(e));
            }
        };
        if let Err(v) = self.policy.vet(&expr) {
            self.audit.record(
                query,
                ts,
                AuditOutcome::Refused {
                    reason: v.to_string(),
                },
            );
            self.count_outcome("refused");
            return Err(SandboxError::Refused(v));
        }
        // The chaos schedule models the store read underneath the
        // engine: decide once per vetted execution.
        let mut completeness = DataCompleteness::Complete;
        if let Some(injector) = &mut self.chaos {
            let op = injector.ops();
            if let Some(fault) = injector.decide() {
                if let Some(registry) = &self.registry {
                    registry
                        .counter_with(
                            DATA_FAULTS_NAME,
                            DATA_FAULTS_HELP,
                            &[("kind", fault.kind.slug())],
                        )
                        .inc();
                }
                match fault.kind {
                    DataFaultKind::TransientIo => {
                        let reason = format!("injected transient store fault on op {op}");
                        self.audit.record(
                            query,
                            ts,
                            AuditOutcome::EvalFailed {
                                reason: reason.clone(),
                            },
                        );
                        self.count_outcome("storage_fault");
                        return Err(SandboxError::Storage(reason));
                    }
                    DataFaultKind::TruncatedRead | DataFaultKind::BitFlip => {
                        // The engine still answers, but over damaged
                        // reads: annotate instead of aborting.
                        completeness = DataCompleteness::Partial;
                    }
                    DataFaultKind::LatencySpike => injector.note_latency_spike(),
                }
            }
        }
        let evaluated = match &self.resolver {
            Some(resolver) => {
                let families = expr.metric_names();
                match resolver.resolve_traced(&families, expr.has_dynamic_selector(), trace) {
                    Ok(store) => {
                        // Evaluate on an ephemeral engine over the
                        // resolved store; policy limits still apply.
                        let engine = Engine::with_options_shared(
                            store,
                            EngineOptions {
                                max_samples: self.policy.max_samples,
                                ..EngineOptions::default()
                            },
                        );
                        engine.instant_query_expr(&expr, ts)
                    }
                    Err(reason) => {
                        let reason = format!("store resolution failed: {reason}");
                        self.audit.record(
                            query,
                            ts,
                            AuditOutcome::EvalFailed {
                                reason: reason.clone(),
                            },
                        );
                        self.count_outcome("storage_fault");
                        return Err(SandboxError::Storage(reason));
                    }
                }
            }
            None => self.engine.instant_query_expr(&expr, ts),
        };
        match evaluated {
            Ok((value, stats)) => {
                self.audit.record(query, ts, AuditOutcome::Executed);
                self.count_outcome("executed");
                Ok(ExecutionOutcome {
                    value,
                    stats,
                    canonical_query: dio_promql::format_expr(&expr),
                    completeness,
                })
            }
            Err(e) => {
                self.audit.record(
                    query,
                    ts,
                    AuditOutcome::EvalFailed {
                        reason: e.to_string(),
                    },
                );
                self.count_outcome("eval_failed");
                Err(SandboxError::Eval(e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_tsdb::{Labels, Sample};

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        let l = Labels::name_only("reqs_total");
        for k in 0..=10i64 {
            st.append(l.clone(), Sample::new(k * 60_000, (k * 60) as f64))
                .unwrap();
        }
        st
    }

    #[test]
    fn executes_safe_query() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let out = sb.execute("sum(rate(reqs_total[5m]))", 600_000).unwrap();
        assert_eq!(out.value.as_scalar_like(), Some(1.0));
        assert!(out.stats.samples_visited > 0);
        assert_eq!(sb.audit().executed_count(), 1);
    }

    #[test]
    fn refuses_and_audits_policy_violation() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let err = sb.execute("rate(reqs_total[7d])", 600_000).unwrap_err();
        assert!(matches!(err, SandboxError::Refused(_)));
        assert_eq!(sb.audit().refused_count(), 1);
        assert_eq!(sb.audit().executed_count(), 0);
    }

    #[test]
    fn parse_errors_are_audited() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let err = sb.execute("sum((", 0).unwrap_err();
        assert!(matches!(err, SandboxError::Parse(_)));
        assert!(matches!(
            sb.audit().entries()[0].outcome,
            AuditOutcome::ParseFailed { .. }
        ));
    }

    #[test]
    fn sample_budget_is_enforced() {
        let policy = SafetyPolicy {
            max_samples: 3,
            ..SafetyPolicy::default()
        };
        let mut sb = Sandbox::new(store(), policy);
        let err = sb.execute("sum(rate(reqs_total[10m]))", 600_000).unwrap_err();
        assert!(matches!(err, SandboxError::Eval(_)));
        assert!(matches!(
            sb.audit().entries()[0].outcome,
            AuditOutcome::EvalFailed { .. }
        ));
    }

    #[test]
    fn outcome_counters_track_audit_log() {
        let registry = dio_obs::Registry::new();
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        sb.attach_obs(registry.clone());
        sb.execute("sum(reqs_total)", 600_000).unwrap();
        sb.execute("sum((", 0).unwrap_err(); // parse
        sb.execute("rate(reqs_total[7d])", 600_000).unwrap_err(); // refused
        let snap = registry.snapshot();
        let fam = snap.family("dio_sandbox_executions_total").unwrap();
        let count_for = |outcome: &str| {
            fam.series
                .iter()
                .find(|s| s.labels.contains(&("outcome".into(), outcome.into())))
                .map(|s| match &s.value {
                    dio_obs::SeriesValue::Counter(v) => *v,
                    _ => panic!("not a counter"),
                })
                .unwrap_or(0.0)
        };
        assert_eq!(count_for("executed"), 1.0);
        assert_eq!(count_for("parse_failed"), 1.0);
        assert_eq!(count_for("refused"), 1.0);
        assert_eq!(count_for("eval_failed"), 0.0);
    }

    #[test]
    fn canonical_query_is_reported() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let out = sb.execute("sum( reqs_total )", 600_000).unwrap();
        assert_eq!(out.canonical_query, "sum(reqs_total)");
    }

    #[test]
    fn parse_errors_carry_position_and_span_hint() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let q = "sum(reqs_total) )(";
        let err = sb.execute(q, 0).unwrap_err();
        let pos = err.parse_position().expect("parse error has a position");
        assert!(pos <= q.len());
        let hint = err.repair_hint(q);
        assert!(
            hint.contains("syntax") || hint.contains("cut short"),
            "unhelpful hint: {hint}"
        );
        assert!(hint.contains(&pos.to_string()), "hint lacks position: {hint}");
    }

    #[test]
    fn refusal_hints_name_the_violated_rule() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let q = "rate(reqs_total[7d])";
        let err = sb.execute(q, 600_000).unwrap_err();
        assert!(matches!(
            err.violated_rule(),
            Some(PolicyViolation::RangeTooWide { .. })
        ));
        let hint = err.repair_hint(q);
        assert!(hint.contains("shrink the range"), "hint: {hint}");
    }

    #[test]
    fn eval_hints_quote_the_failure() {
        let err = SandboxError::Eval("sample budget exceeded".into());
        assert!(err.repair_hint("sum(x)").contains("sample budget exceeded"));
        assert!(err.violated_rule().is_none());
        assert!(err.parse_position().is_none());
    }

    use dio_faults::{ChaosConfig, Injector};

    fn chaos_only(kind_index: usize, seed: u64) -> Injector {
        let mut weights = [0u32; 4];
        weights[kind_index] = 1;
        Injector::new(ChaosConfig {
            seed,
            fault_probability: 1.0,
            weights,
            latency_spike_micros: 100,
        })
    }

    #[test]
    fn transient_store_fault_is_a_retryable_storage_error() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        sb.attach_data_chaos(chaos_only(1, 7)); // TransientIo only
        let err = sb.execute("sum(reqs_total)", 600_000).unwrap_err();
        assert!(err.is_storage_fault());
        assert!(err.repair_hint("sum(reqs_total)").contains("retry"));
        assert!(matches!(
            sb.audit().entries()[0].outcome,
            AuditOutcome::EvalFailed { .. }
        ));
    }

    #[test]
    fn read_corruption_degrades_completeness_instead_of_failing() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        sb.attach_data_chaos(chaos_only(3, 8)); // BitFlip only
        let out = sb.execute("sum(reqs_total)", 600_000).unwrap();
        assert_eq!(out.completeness, DataCompleteness::Partial);
        // The value is still the engine's answer; only the annotation
        // changed.
        assert_eq!(out.value.as_scalar_like(), Some(600.0));
    }

    #[test]
    fn latency_spike_records_and_stays_complete() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        sb.attach_data_chaos(chaos_only(0, 9)); // LatencySpike only
        let out = sb.execute("sum(reqs_total)", 600_000).unwrap();
        assert_eq!(out.completeness, DataCompleteness::Complete);
        assert_eq!(sb.data_chaos().unwrap().injected_latency_micros(), 100);
    }

    #[test]
    fn healthy_executions_are_complete_without_chaos() {
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        let out = sb.execute("sum(reqs_total)", 600_000).unwrap();
        assert_eq!(out.completeness, DataCompleteness::Complete);
    }

    #[test]
    fn data_faults_are_counted_by_kind() {
        let registry = dio_obs::Registry::new();
        let mut sb = Sandbox::new(store(), SafetyPolicy::default());
        sb.attach_obs(registry.clone());
        sb.attach_data_chaos(chaos_only(1, 10)); // TransientIo only
        let _ = sb.execute("sum(reqs_total)", 600_000);
        let snap = registry.snapshot();
        assert_eq!(snap.total("dio_sandbox_data_faults_total"), 1.0);
        let fam = snap.family("dio_sandbox_data_faults_total").unwrap();
        assert!(fam
            .series
            .iter()
            .any(|s| s.labels.contains(&("kind".into(), "transient_io".into()))));
    }
}

//! Audit trail of every execution attempt.

use serde::{Deserialize, Serialize};

/// What happened to an attempted query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditOutcome {
    /// Vetted and executed successfully.
    Executed,
    /// Refused by the static policy.
    Refused {
        /// Human-readable violation.
        reason: String,
    },
    /// Failed to parse.
    ParseFailed {
        /// Parser message.
        reason: String,
    },
    /// Vetted but failed during evaluation (including resource limits).
    EvalFailed {
        /// Engine message.
        reason: String,
    },
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Monotone sequence number.
    pub seq: u64,
    /// The raw query text as submitted.
    pub query: String,
    /// Evaluation timestamp requested.
    pub eval_ts: i64,
    /// The outcome.
    pub outcome: AuditOutcome,
}

/// Append-only audit log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Append a record, returning its sequence number.
    pub fn record(&mut self, query: &str, eval_ts: i64, outcome: AuditOutcome) -> u64 {
        let seq = self.entries.len() as u64;
        self.entries.push(AuditEntry {
            seq,
            query: query.to_string(),
            eval_ts,
            outcome,
        });
        seq
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of refused queries.
    pub fn refused_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, AuditOutcome::Refused { .. }))
            .count()
    }

    /// Number of executed queries.
    pub fn executed_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.outcome == AuditOutcome::Executed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_sequenced() {
        let mut log = AuditLog::new();
        assert_eq!(log.record("q1", 0, AuditOutcome::Executed), 0);
        assert_eq!(
            log.record(
                "q2",
                5,
                AuditOutcome::Refused {
                    reason: "nope".into()
                }
            ),
            1
        );
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.executed_count(), 1);
        assert_eq!(log.refused_count(), 1);
        assert_eq!(log.entries()[1].query, "q2");
    }
}

//! Static safety policy for untrusted queries.

use dio_promql::ast::Expr;
use dio_tsdb::matchers::pattern_match;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Why a query was refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyViolation {
    /// A function outside the allowlist.
    ForbiddenFunction(String),
    /// A range selector wider than the ceiling.
    RangeTooWide {
        /// Requested window (ms).
        requested_ms: i64,
        /// Allowed maximum (ms).
        max_ms: i64,
    },
    /// An offset further back than allowed.
    OffsetTooFar {
        /// Requested offset (ms).
        requested_ms: i64,
        /// Allowed maximum (ms).
        max_ms: i64,
    },
    /// A selector touching a denied metric.
    SensitiveMetric(String),
    /// Expression nesting deeper than the bound.
    TooDeep {
        /// Observed depth.
        depth: usize,
        /// Allowed maximum.
        max: usize,
    },
}

impl std::fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyViolation::ForbiddenFunction(name) => {
                write!(f, "function '{name}' is not allowed by policy")
            }
            PolicyViolation::RangeTooWide {
                requested_ms,
                max_ms,
            } => write!(f, "range window {requested_ms}ms exceeds the {max_ms}ms ceiling"),
            PolicyViolation::OffsetTooFar {
                requested_ms,
                max_ms,
            } => write!(f, "offset {requested_ms}ms exceeds the {max_ms}ms ceiling"),
            PolicyViolation::SensitiveMetric(name) => {
                write!(f, "metric '{name}' is access-controlled")
            }
            PolicyViolation::TooDeep { depth, max } => {
                write!(f, "expression depth {depth} exceeds limit {max}")
            }
        }
    }
}

impl std::error::Error for PolicyViolation {}

/// The static policy applied before execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyPolicy {
    /// When `Some`, only these functions may be called.
    pub allowed_functions: Option<BTreeSet<String>>,
    /// Maximum range-selector window.
    pub max_range_ms: i64,
    /// Maximum offset into the past.
    pub max_offset_ms: i64,
    /// Metric-name patterns (anchored, `.*` wildcards) that are denied —
    /// the §5.4 "controlling access to sensitive data" control.
    pub denied_metric_patterns: Vec<String>,
    /// Maximum expression nesting depth.
    pub max_depth: usize,
    /// Per-query sample budget handed to the engine (0 = unlimited).
    pub max_samples: usize,
}

impl Default for SafetyPolicy {
    fn default() -> Self {
        SafetyPolicy {
            allowed_functions: Some(
                [
                    "rate", "irate", "increase", "delta", "idelta", "resets", "changes",
                    "deriv", "predict_linear", "avg_over_time", "sum_over_time",
                    "min_over_time", "max_over_time", "count_over_time", "last_over_time",
                    "present_over_time", "stddev_over_time", "stdvar_over_time",
                    "quantile_over_time", "abs", "ceil", "floor", "exp", "ln", "log2",
                    "log10", "sqrt", "sgn", "round", "clamp", "clamp_min", "clamp_max",
                    "scalar", "vector", "time", "timestamp", "sort", "sort_desc", "absent",
                    "histogram_quantile", "label_replace", "label_join",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
            ),
            max_range_ms: 24 * 3600 * 1000,
            max_offset_ms: 7 * 24 * 3600 * 1000,
            denied_metric_patterns: vec![
                ".*_subscriber_imsi.*".to_string(),
                ".*_supi_.*".to_string(),
                "admin_.*".to_string(),
            ],
            max_depth: 32,
            max_samples: 5_000_000,
        }
    }
}

impl SafetyPolicy {
    /// A policy that allows everything (used by trusted internal runs).
    pub fn permissive() -> Self {
        SafetyPolicy {
            allowed_functions: None,
            max_range_ms: i64::MAX,
            max_offset_ms: i64::MAX,
            denied_metric_patterns: Vec::new(),
            max_depth: 256,
            max_samples: 0,
        }
    }

    /// Statically vet a parsed expression.
    pub fn vet(&self, expr: &Expr) -> Result<(), PolicyViolation> {
        self.vet_at_depth(expr, 1)
    }

    fn vet_at_depth(&self, expr: &Expr, depth: usize) -> Result<(), PolicyViolation> {
        if depth > self.max_depth {
            return Err(PolicyViolation::TooDeep {
                depth,
                max: self.max_depth,
            });
        }
        match expr {
            Expr::NumberLiteral(_) | Expr::StringLiteral(_) => Ok(()),
            Expr::VectorSelector {
                name,
                matchers,
                offset_ms,
            } => {
                if *offset_ms > self.max_offset_ms {
                    return Err(PolicyViolation::OffsetTooFar {
                        requested_ms: *offset_ms,
                        max_ms: self.max_offset_ms,
                    });
                }
                let mut names: Vec<&str> = Vec::new();
                if let Some(n) = name {
                    names.push(n);
                }
                for m in matchers {
                    if m.name == "__name__" {
                        names.push(&m.value);
                    }
                }
                for n in names {
                    for pat in &self.denied_metric_patterns {
                        if pattern_match(pat, n) {
                            return Err(PolicyViolation::SensitiveMetric(n.to_string()));
                        }
                    }
                }
                Ok(())
            }
            Expr::MatrixSelector { selector, range_ms } => {
                if *range_ms > self.max_range_ms {
                    return Err(PolicyViolation::RangeTooWide {
                        requested_ms: *range_ms,
                        max_ms: self.max_range_ms,
                    });
                }
                self.vet_at_depth(selector, depth + 1)
            }
            Expr::Subquery {
                expr,
                range_ms,
                offset_ms,
                ..
            } => {
                if *range_ms > self.max_range_ms {
                    return Err(PolicyViolation::RangeTooWide {
                        requested_ms: *range_ms,
                        max_ms: self.max_range_ms,
                    });
                }
                if *offset_ms > self.max_offset_ms {
                    return Err(PolicyViolation::OffsetTooFar {
                        requested_ms: *offset_ms,
                        max_ms: self.max_offset_ms,
                    });
                }
                self.vet_at_depth(expr, depth + 1)
            }
            Expr::Neg(e) | Expr::Paren(e) => self.vet_at_depth(e, depth + 1),
            Expr::Binary { lhs, rhs, .. } => {
                self.vet_at_depth(lhs, depth + 1)?;
                self.vet_at_depth(rhs, depth + 1)
            }
            Expr::Aggregate { param, expr, .. } => {
                if let Some(p) = param {
                    self.vet_at_depth(p, depth + 1)?;
                }
                self.vet_at_depth(expr, depth + 1)
            }
            Expr::Call { func, args } => {
                if let Some(allowed) = &self.allowed_functions {
                    if !allowed.contains(func) {
                        return Err(PolicyViolation::ForbiddenFunction(func.clone()));
                    }
                }
                for a in args {
                    self.vet_at_depth(a, depth + 1)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_promql::parse;

    #[test]
    fn default_allows_standard_queries() {
        let p = SafetyPolicy::default();
        for q in [
            "sum(rate(m[5m]))",
            "100 * sum(s) / sum(a)",
            "histogram_quantile(0.9, b)",
            "m offset 1h",
        ] {
            assert!(p.vet(&parse(q).unwrap()).is_ok(), "{q} refused");
        }
    }

    #[test]
    fn refuses_unlisted_functions() {
        let mut p = SafetyPolicy::default();
        p.allowed_functions.as_mut().unwrap().remove("rate");
        let err = p.vet(&parse("rate(m[5m])").unwrap()).unwrap_err();
        assert_eq!(err, PolicyViolation::ForbiddenFunction("rate".into()));
    }

    #[test]
    fn refuses_wide_ranges() {
        let p = SafetyPolicy::default();
        let err = p.vet(&parse("rate(m[2d])").unwrap()).unwrap_err();
        assert!(matches!(err, PolicyViolation::RangeTooWide { .. }));
    }

    #[test]
    fn refuses_far_offsets() {
        let p = SafetyPolicy::default();
        let err = p.vet(&parse("m offset 2w").unwrap()).unwrap_err();
        assert!(matches!(err, PolicyViolation::OffsetTooFar { .. }));
    }

    #[test]
    fn refuses_sensitive_metrics() {
        let p = SafetyPolicy::default();
        let err = p
            .vet(&parse("sum(amf_subscriber_imsi_list)").unwrap())
            .unwrap_err();
        assert!(matches!(err, PolicyViolation::SensitiveMetric(_)));
        // Also via __name__ matcher.
        let err = p
            .vet(&parse(r#"{__name__="admin_reset_counters"}"#).unwrap())
            .unwrap_err();
        assert!(matches!(err, PolicyViolation::SensitiveMetric(_)));
    }

    #[test]
    fn refuses_pathological_nesting() {
        let p = SafetyPolicy {
            max_depth: 4,
            ..SafetyPolicy::default()
        };
        let q = "sum(abs(ceil(floor(sqrt(m)))))";
        let err = p.vet(&parse(q).unwrap()).unwrap_err();
        assert!(matches!(err, PolicyViolation::TooDeep { .. }));
    }

    #[test]
    fn permissive_allows_everything() {
        let p = SafetyPolicy::permissive();
        assert!(p.vet(&parse("rate(admin_anything[30d])").unwrap()).is_ok());
    }

    #[test]
    fn violations_display_reasonably() {
        let v = PolicyViolation::ForbiddenFunction("evil".into());
        assert!(v.to_string().contains("evil"));
    }
}

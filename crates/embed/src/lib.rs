//! # dio-embed
//!
//! Deterministic sentence-embedding substrate for DIO copilot.
//!
//! The paper embeds metric descriptions and user questions with the
//! sentence-BERT `all-MiniLM-L6-v2` model (384 dimensions, unit-norm
//! output) and retrieves context by cosine similarity. That model is a
//! network-delivered neural checkpoint, so this crate substitutes a fully
//! deterministic embedder with the same *interface contract*:
//!
//! * fixed dimensionality (default 384),
//! * L2-normalised output vectors,
//! * semantically close texts (shared vocabulary, shared character
//!   n-grams, domain-synonym overlap) land close in cosine space.
//!
//! The embedder combines three feature families, each hashed into the
//! output space with a signed feature hash (the classic "hashing trick"):
//!
//! 1. **word unigrams** weighted by smoothed inverse document frequency
//!    fitted on the corpus being indexed,
//! 2. **character n-grams** (fastText-style, default 3..=5) which give
//!    robustness to the underscore-glued counter names that dominate
//!    operator data (`amfcc_n1_auth_request`),
//! 3. **domain lexicon expansions** which map telecom abbreviations to
//!    their spelled-out forms (and back) so that "AMF" and "access and
//!    mobility management function" share features.
//!
//! ```
//! use dio_embed::{Embedder, EmbedderConfig};
//!
//! let corpus = [
//!     "The number of authentication requests sent by AMF.",
//!     "Total bytes forwarded on the N3 interface by UPF.",
//! ];
//! let embedder = Embedder::fit(&EmbedderConfig::default(), corpus.iter().copied());
//! let q = embedder.embed("how many authentication requests did the AMF send");
//! let a = embedder.embed(corpus[0]);
//! let b = embedder.embed(corpus[1]);
//! assert!(dio_embed::cosine(&q, &a) > dio_embed::cosine(&q, &b));
//! ```

pub mod embedder;
pub mod hashing;
pub mod idf;
pub mod lexicon;
pub mod similarity;
pub mod tokenize;
pub mod vector;

pub use embedder::{Embedder, EmbedderConfig};
pub use lexicon::Lexicon;
pub use similarity::{cosine, dot, euclidean, top_k_cosine};
pub use vector::Vector;

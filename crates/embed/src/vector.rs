//! Dense vector type used throughout the embedding and retrieval stack.

use serde::{Deserialize, Serialize};

/// A dense `f32` vector. Embeddings produced by [`crate::Embedder`] are
/// always L2-normalised, but `Vector` itself does not enforce that so it
/// can also hold intermediate accumulators and index centroids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector(pub Vec<f32>);

impl Vector {
    /// A zero vector with `dims` components.
    pub fn zeros(dims: usize) -> Self {
        Vector(vec![0.0; dims])
    }

    /// Number of components.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Slice view of the components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Scale every component in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.0 {
            *x *= s;
        }
    }

    /// Add `other * weight` into this vector. Panics if dims differ.
    pub fn add_scaled(&mut self, other: &Vector, weight: f32) {
        assert_eq!(self.dims(), other.dims(), "vector dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b * weight;
        }
    }

    /// Normalise to unit L2 norm. A zero vector is left unchanged.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// Returns a unit-norm copy (zero vectors are returned as-is).
    pub fn normalized(&self) -> Vector {
        let mut v = self.clone();
        v.normalize();
        v
    }

    /// True when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector(v)
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_zero_norm() {
        let v = Vector::zeros(8);
        assert_eq!(v.dims(), 8);
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = Vector(vec![3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert!((v.0[0] - 0.6).abs() < 1e-6);
        assert!((v.0[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = Vector::zeros(4);
        v.normalize();
        assert_eq!(v, Vector::zeros(4));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Vector(vec![1.0, 2.0]);
        let b = Vector(vec![10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.0, vec![6.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_scaled_panics_on_dim_mismatch() {
        let mut a = Vector::zeros(2);
        let b = Vector::zeros(3);
        a.add_scaled(&b, 1.0);
    }

    #[test]
    fn scale_multiplies_components() {
        let mut v = Vector(vec![1.0, -2.0, 3.0]);
        v.scale(-2.0);
        assert_eq!(v.0, vec![-2.0, 4.0, -6.0]);
    }
}

//! Vector similarity measures and top-k helpers.

use crate::vector::Vector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dot product. Panics if dimensions differ.
pub fn dot(a: &Vector, b: &Vector) -> f32 {
    assert_eq!(a.dims(), b.dims(), "vector dimension mismatch");
    a.0.iter().zip(b.0.iter()).map(|(x, y)| x * y).sum()
}

/// Cosine similarity in `[-1, 1]`. Zero vectors yield 0.
pub fn cosine(a: &Vector, b: &Vector) -> f32 {
    let (na, nb) = (a.norm(), b.norm());
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Euclidean distance.
pub fn euclidean(a: &Vector, b: &Vector) -> f32 {
    assert_eq!(a.dims(), b.dims(), "vector dimension mismatch");
    a.0.iter()
        .zip(b.0.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// One scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// Index of the hit in the searched collection.
    pub index: usize,
    /// Similarity score (higher is closer).
    pub score: f32,
}

// Min-heap entry so the heap root is always the *worst* kept hit.
#[derive(PartialEq)]
struct HeapItem(Scored);

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score: BinaryHeap is a max-heap, we want min-on-score.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            // Tie-break: on equal scores the *highest* index is the
            // greatest heap element, so it is evicted first and the
            // earliest indices are kept deterministically.
            .then_with(|| self.0.index.cmp(&other.0.index))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Top-k by a caller-provided scoring function, sorted by descending
/// score (ties broken by ascending index). Runs in `O(n log k)`.
pub fn top_k_by<F>(n: usize, k: usize, mut score_fn: F) -> Vec<Scored>
where
    F: FnMut(usize) -> f32,
{
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
    for index in 0..n {
        let score = score_fn(index);
        if score.is_nan() {
            continue;
        }
        heap.push(HeapItem(Scored { index, score }));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<Scored> = heap.into_iter().map(|h| h.0).collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    out
}

/// Top-k most cosine-similar vectors to `query` among `candidates`.
pub fn top_k_cosine(query: &Vector, candidates: &[Vector], k: usize) -> Vec<Scored> {
    top_k_by(candidates.len(), k, |i| cosine(query, &candidates[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &[f32]) -> Vector {
        Vector(x.to_vec())
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let a = v(&[1.0, 2.0, 3.0]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(cosine(&v(&[1.0, 0.0]), &v(&[0.0, 1.0])).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_is_minus_one() {
        assert!((cosine(&v(&[1.0, 1.0]), &v(&[-1.0, -1.0])) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        assert_eq!(cosine(&v(&[0.0, 0.0]), &v(&[1.0, 2.0])), 0.0);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean(&v(&[0.0, 0.0]), &v(&[3.0, 4.0])) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn top_k_returns_sorted_best() {
        let cands = vec![
            v(&[1.0, 0.0]),
            v(&[0.9, 0.1]),
            v(&[0.0, 1.0]),
            v(&[-1.0, 0.0]),
        ];
        let hits = top_k_cosine(&v(&[1.0, 0.0]), &cands, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 1);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn top_k_zero_is_empty() {
        assert!(top_k_cosine(&v(&[1.0]), &[v(&[1.0])], 0).is_empty());
    }

    #[test]
    fn top_k_larger_than_n_returns_all() {
        let cands = vec![v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        let hits = top_k_cosine(&v(&[1.0, 1.0]), &cands, 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn top_k_ties_break_by_index() {
        let cands = vec![v(&[1.0, 0.0]), v(&[1.0, 0.0]), v(&[1.0, 0.0])];
        let hits = top_k_cosine(&v(&[1.0, 0.0]), &cands, 2);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 1);
    }
}

//! Domain lexicon: telecom abbreviation and synonym expansion.
//!
//! Generic embedding models miss that "AMF" *is* the "access and mobility
//! management function" (paper §5.3 calls this out as the weakness of
//! generic embedders). The lexicon injects that domain knowledge: when a
//! token (or phrase) matches an entry, the expansion tokens are added as
//! extra features with a configurable weight, so abbreviation and
//! spelled-out forms overlap in feature space.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A synonym/expansion table keyed on lower-case tokens.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lexicon {
    expansions: HashMap<String, Vec<String>>,
}

impl Lexicon {
    /// An empty lexicon (no expansion).
    pub fn empty() -> Self {
        Lexicon::default()
    }

    /// The built-in 5G-core lexicon used by DIO copilot: network function
    /// names, interface names, procedure jargon, and common analytics
    /// phrasing.
    pub fn telecom() -> Self {
        let mut lex = Lexicon::default();
        let entries: &[(&str, &[&str])] = &[
            // Network functions.
            ("amf", &["access", "mobility", "management", "function"]),
            ("smf", &["session", "management", "function"]),
            ("upf", &["user", "plane", "function"]),
            ("nrf", &["nf", "repository", "function"]),
            ("nssf", &["network", "slice", "selection", "function"]),
            ("n3iwf", &["non", "3gpp", "interworking", "function"]),
            ("ausf", &["authentication", "server", "function"]),
            ("udm", &["unified", "data", "management"]),
            ("pcf", &["policy", "control", "function"]),
            ("gnb", &["gnodeb", "base", "station"]),
            ("gnodeb", &["gnb", "base", "station"]),
            ("ue", &["user", "equipment", "device", "subscriber"]),
            // Procedures and messages.
            ("auth", &["authentication"]),
            ("authentication", &["auth"]),
            ("reg", &["registration"]),
            ("registration", &["register"]),
            ("dereg", &["deregistration"]),
            ("deregistration", &["deregister"]),
            ("pdu", &["protocol", "data", "unit", "session"]),
            ("ho", &["handover"]),
            ("handover", &["mobility"]),
            ("paging", &["page"]),
            ("lcs", &["location", "services"]),
            ("ni", &["network", "induced"]),
            ("lr", &["location", "request"]),
            ("sm", &["session", "management"]),
            ("mm", &["mobility", "management"]),
            ("nas", &["non", "access", "stratum"]),
            ("ngap", &["ng", "application", "protocol"]),
            ("pfcp", &["packet", "forwarding", "control", "protocol"]),
            ("nssai", &["slice", "selection", "assistance", "information"]),
            ("snssai", &["single", "slice", "selection", "assistance"]),
            ("dnn", &["data", "network", "name", "apn"]),
            ("qos", &["quality", "service"]),
            ("qfi", &["qos", "flow", "identifier"]),
            ("plmn", &["public", "land", "mobile", "network"]),
            ("tai", &["tracking", "area", "identity"]),
            ("guti", &["globally", "unique", "temporary", "identifier"]),
            ("supi", &["subscription", "permanent", "identifier"]),
            ("pei", &["permanent", "equipment", "identifier"]),
            ("ulcl", &["uplink", "classifier"]),
            ("urr", &["usage", "reporting", "rule"]),
            ("far", &["forwarding", "action", "rule"]),
            ("pdr", &["packet", "detection", "rule"]),
            ("qer", &["qos", "enforcement", "rule"]),
            // Analytics phrasing.
            ("throughput", &["rate", "bytes", "bandwidth"]),
            ("failures", &["failed", "failure", "errors"]),
            ("failure", &["failed", "failures", "error"]),
            ("failed", &["failure", "failures"]),
            ("errors", &["error", "failure"]),
            ("successes", &["success", "successful"]),
            ("success", &["successful", "succeeded"]),
            ("successful", &["success"]),
            ("attempts", &["attempt", "attempted", "requests"]),
            ("attempt", &["attempts", "attempted"]),
            ("requests", &["request", "attempts"]),
            ("request", &["requests"]),
            ("responses", &["response", "replies"]),
            ("count", &["number", "total"]),
            ("number", &["count", "total"]),
            ("total", &["sum", "count"]),
            ("average", &["mean", "avg"]),
            ("avg", &["average", "mean"]),
            ("mean", &["average"]),
            ("rate", &["per", "second", "frequency"]),
            ("ratio", &["rate", "percentage", "fraction"]),
            ("percentage", &["percent", "ratio", "rate"]),
            ("bytes", &["octets", "traffic", "volume"]),
            ("octets", &["bytes"]),
            ("packets", &["pkts", "packet"]),
            ("downlink", &["dl", "downstream"]),
            ("uplink", &["ul", "upstream"]),
            ("dl", &["downlink"]),
            ("ul", &["uplink"]),
            ("upstream", &["uplink", "ul"]),
            ("downstream", &["downlink", "dl"]),
            ("plane", &["upf"]),
            ("forward", &["forwarded"]),
            ("forwarded", &["forward"]),
            ("latency", &["delay", "duration"]),
            ("delay", &["latency", "duration"]),
            ("sessions", &["session"]),
            ("session", &["sessions"]),
            ("subscribers", &["ue", "users", "devices"]),
            ("active", &["current", "ongoing"]),
            ("heartbeat", &["keepalive", "liveness"]),
            ("discovery", &["discover", "lookup"]),
            // Reverse paraphrase bridges (question jargon → counter
            // vocabulary). These are what let a strong model recover
            // paraphrased questions that name-only prompting cannot.
            ("register", &["registration"]),
            ("deregister", &["deregistration"]),
            ("setup", &["establishment", "establish", "setup"]),
            ("teardown", &["release"]),
            ("change", &["modification", "modify"]),
            ("lookup", &["discovery", "discover"]),
            ("users", &["subscribers", "ue", "subscriber"]),
            ("mobility", &["handover"]),
            ("frequency", &["rate"]),
            ("tries", &["attempts", "attempt"]),
            ("try", &["attempt", "attempts"]),
            ("transmitted", &["sent"]),
        ];
        for (k, vs) in entries {
            lex.insert(k, vs.iter().map(|s| s.to_string()).collect());
        }
        lex
    }

    /// Insert or replace an expansion.
    pub fn insert(&mut self, token: &str, expansion: Vec<String>) {
        self.expansions.insert(token.to_lowercase(), expansion);
    }

    /// Expansion tokens for `token`, if any.
    pub fn expand(&self, token: &str) -> Option<&[String]> {
        self.expansions.get(token).map(|v| v.as_slice())
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.expansions.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.expansions.is_empty()
    }

    /// Expand a token list: each token is kept, and any expansions are
    /// appended (deduplicated, order-stable).
    pub fn expand_tokens(&self, tokens: &[String]) -> Vec<String> {
        let mut out = tokens.to_vec();
        for tok in tokens {
            if let Some(exp) = self.expand(tok) {
                for e in exp {
                    if !out.contains(e) {
                        out.push(e.clone());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telecom_lexicon_expands_nf_names() {
        let lex = Lexicon::telecom();
        let exp = lex.expand("amf").unwrap();
        assert!(exp.contains(&"mobility".to_string()));
    }

    #[test]
    fn unknown_token_has_no_expansion() {
        let lex = Lexicon::telecom();
        assert!(lex.expand("zebra").is_none());
    }

    #[test]
    fn expand_tokens_keeps_originals_and_dedupes() {
        let lex = Lexicon::telecom();
        let toks: Vec<String> = vec!["auth".into(), "authentication".into()];
        let out = lex.expand_tokens(&toks);
        assert_eq!(out.iter().filter(|t| *t == "auth").count(), 1);
        assert_eq!(out.iter().filter(|t| *t == "authentication").count(), 1);
    }

    #[test]
    fn empty_lexicon_is_identity() {
        let lex = Lexicon::empty();
        let toks: Vec<String> = vec!["amf".into()];
        assert_eq!(lex.expand_tokens(&toks), toks);
    }

    #[test]
    fn insert_is_case_insensitive_on_key() {
        let mut lex = Lexicon::empty();
        lex.insert("AMF", vec!["mobility".into()]);
        assert!(lex.expand("amf").is_some());
    }

    #[test]
    fn synonym_pairs_are_bidirectional_for_key_terms() {
        let lex = Lexicon::telecom();
        // success <-> successful
        assert!(lex.expand("success").unwrap().contains(&"successful".to_string()));
        assert!(lex.expand("successful").unwrap().contains(&"success".to_string()));
    }
}

//! Inverse document frequency statistics fitted on a corpus.
//!
//! The embedder weights word features by smoothed IDF so that rare,
//! discriminative tokens (`lcs`, `nssai`, `paging`) dominate over the
//! boilerplate shared by every metric description ("the number of").

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Document-frequency table with smoothed IDF lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdfTable {
    doc_count: usize,
    doc_freq: HashMap<String, u32>,
}

impl IdfTable {
    /// Fit from an iterator of pre-tokenised documents.
    pub fn fit<'a, I, D>(docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = &'a str>,
    {
        let mut table = IdfTable::default();
        for doc in docs {
            table.add_document(doc);
        }
        table
    }

    /// Add one document's tokens to the statistics. Duplicate tokens in
    /// the same document count once (document frequency, not term
    /// frequency).
    pub fn add_document<'a, D>(&mut self, tokens: D)
    where
        D: IntoIterator<Item = &'a str>,
    {
        self.doc_count += 1;
        let mut seen: Vec<&str> = tokens.into_iter().collect();
        seen.sort_unstable();
        seen.dedup();
        for tok in seen {
            *self.doc_freq.entry(tok.to_string()).or_insert(0) += 1;
        }
    }

    /// Number of documents fitted so far.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Number of distinct tokens observed.
    pub fn vocab_size(&self) -> usize {
        self.doc_freq.len()
    }

    /// Smoothed IDF: `ln((1 + N) / (1 + df)) + 1`.
    ///
    /// Unseen tokens get the highest weight (df = 0) — exactly what the
    /// retrieval stage wants for novel jargon in a user question. On an
    /// empty table every token has weight 1.
    pub fn idf(&self, token: &str) -> f32 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0) as f32;
        let n = self.doc_count as f32;
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// Document frequency of a token (0 when unseen).
    pub fn doc_freq(&self, token: &str) -> u32 {
        self.doc_freq.get(token).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IdfTable {
        IdfTable::fit(vec![
            vec!["the", "number", "of", "auth", "requests"],
            vec!["the", "number", "of", "paging", "attempts"],
            vec!["the", "count", "of", "pdu", "sessions"],
        ])
    }

    #[test]
    fn counts_documents_and_vocab() {
        let t = sample();
        assert_eq!(t.doc_count(), 3);
        assert_eq!(t.doc_freq("the"), 3);
        assert_eq!(t.doc_freq("auth"), 1);
        assert_eq!(t.doc_freq("missing"), 0);
    }

    #[test]
    fn duplicates_in_one_doc_count_once() {
        let mut t = IdfTable::default();
        t.add_document(vec!["auth", "auth", "auth"]);
        assert_eq!(t.doc_freq("auth"), 1);
    }

    #[test]
    fn rare_tokens_weigh_more_than_common() {
        let t = sample();
        assert!(t.idf("auth") > t.idf("the"));
        assert!(t.idf("unseen_jargon") >= t.idf("auth"));
    }

    #[test]
    fn idf_on_empty_table_is_one() {
        let t = IdfTable::default();
        assert!((t.idf("anything") - 1.0).abs() < 1e-6);
    }

    #[test]
    fn idf_is_always_positive() {
        let t = sample();
        for tok in ["the", "of", "auth", "zzz"] {
            assert!(t.idf(tok) > 0.0);
        }
    }
}

//! Signed feature hashing (the "hashing trick").
//!
//! Each string feature is mapped to a bucket in `[0, dims)` plus a sign in
//! `{-1, +1}` using two independent FNV-1a derived hashes. Collisions are
//! unbiased in expectation because of the sign hash, which is what makes
//! hashed bag-of-features a usable embedding substrate.

/// 64-bit FNV-1a hash of `bytes` seeded with `seed`.
///
/// FNV-1a is not cryptographic; it is chosen here because it is tiny,
/// allocation-free, stable across platforms, and fully deterministic —
/// the properties the reproduction needs.
pub fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ seed.wrapping_mul(PRIME);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // Final avalanche (xorshift-multiply) to decorrelate low bits.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Bucket index and sign for a feature string.
///
/// The bucket comes from one hash stream (`seed`), the sign from an
/// independent stream (`seed + 1`), so that two features colliding on the
/// bucket still carry independent signs.
pub fn feature_slot(feature: &str, dims: usize, seed: u64) -> (usize, f32) {
    debug_assert!(dims > 0);
    let bucket = (fnv1a64(feature.as_bytes(), seed) % dims as u64) as usize;
    let sign = if fnv1a64(feature.as_bytes(), seed ^ 0x9e37_79b9_7f4a_7c15) & 1 == 0 {
        1.0
    } else {
        -1.0
    };
    (bucket, sign)
}

/// Accumulate a weighted feature into a dense vector.
pub fn accumulate(feature: &str, weight: f32, out: &mut [f32], seed: u64) {
    let (bucket, sign) = feature_slot(feature, out.len(), seed);
    out[bucket] += sign * weight;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fnv1a64(b"auth", 7), fnv1a64(b"auth", 7));
        assert_ne!(fnv1a64(b"auth", 7), fnv1a64(b"auth", 8));
        assert_ne!(fnv1a64(b"auth", 7), fnv1a64(b"atuh", 7));
    }

    #[test]
    fn slots_stay_in_range() {
        for i in 0..1000 {
            let (b, s) = feature_slot(&format!("feat{i}"), 384, 42);
            assert!(b < 384);
            assert!(s == 1.0 || s == -1.0);
        }
    }

    #[test]
    fn signs_are_roughly_balanced() {
        let pos = (0..10_000)
            .filter(|i| feature_slot(&format!("w{i}"), 384, 1).1 > 0.0)
            .count();
        assert!((4_000..=6_000).contains(&pos), "sign skew: {pos}");
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        let dims = 64;
        let mut counts = vec![0usize; dims];
        for i in 0..64_000 {
            counts[feature_slot(&format!("tok{i}"), dims, 3).0] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap(),
            *counts.iter().max().unwrap(),
        );
        // Expected 1000 per bucket; allow generous slack.
        assert!(min > 700 && max < 1300, "min={min} max={max}");
    }

    #[test]
    fn accumulate_adds_signed_weight() {
        let mut v = vec![0.0f32; 16];
        accumulate("x", 2.0, &mut v, 0);
        let nonzero: Vec<f32> = v.iter().copied().filter(|x| *x != 0.0).collect();
        assert_eq!(nonzero.len(), 1);
        assert!(nonzero[0] == 2.0 || nonzero[0] == -2.0);
    }
}

//! The deterministic sentence embedder.
//!
//! Stands in for sentence-BERT `all-MiniLM-L6-v2` (see crate docs for the
//! substitution argument). The output contract matches MiniLM: fixed
//! 384-dim, unit-norm vectors where semantically related operator-domain
//! texts have high cosine similarity.

use crate::hashing::accumulate;
use crate::idf::IdfTable;
use crate::lexicon::Lexicon;
use crate::tokenize::{char_ngrams, content_words, word_bigrams};
use crate::vector::Vector;
use serde::{Deserialize, Serialize};

/// Embedder hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbedderConfig {
    /// Output dimensionality (MiniLM uses 384).
    pub dims: usize,
    /// Minimum character n-gram length.
    pub ngram_min: usize,
    /// Maximum character n-gram length.
    pub ngram_max: usize,
    /// Weight of word-unigram features (multiplied by IDF).
    pub word_weight: f32,
    /// Weight of word-bigram features.
    pub bigram_weight: f32,
    /// Weight of character n-gram features.
    pub char_weight: f32,
    /// Weight of lexicon-expansion features.
    pub lexicon_weight: f32,
    /// Hash seed — changing it produces an incompatible embedding space.
    pub seed: u64,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig {
            dims: 384,
            ngram_min: 3,
            ngram_max: 5,
            word_weight: 1.0,
            bigram_weight: 0.6,
            char_weight: 0.25,
            lexicon_weight: 0.7,
            seed: 0x5eed_d10c_0b11_a7e5,
        }
    }
}

impl EmbedderConfig {
    /// A "generic" embedder with no domain lexicon weighting — used by
    /// the §5.3 ablation (generic vs network-specific embedding model).
    pub fn generic() -> Self {
        EmbedderConfig {
            lexicon_weight: 0.0,
            ..EmbedderConfig::default()
        }
    }
}

/// A fitted sentence embedder. Create with [`Embedder::fit`] (corpus
/// IDF + telecom lexicon) or [`Embedder::with_parts`] for full control.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedder {
    config: EmbedderConfig,
    idf: IdfTable,
    lexicon: Lexicon,
}

impl Embedder {
    /// Fit IDF statistics on `corpus` and attach the built-in telecom
    /// lexicon.
    pub fn fit<'a, I>(config: &EmbedderConfig, corpus: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut idf = IdfTable::default();
        for doc in corpus {
            let toks = content_words(doc);
            idf.add_document(toks.iter().map(|s| s.as_str()));
        }
        Embedder {
            config: config.clone(),
            idf,
            lexicon: Lexicon::telecom(),
        }
    }

    /// Build from explicit parts.
    pub fn with_parts(config: EmbedderConfig, idf: IdfTable, lexicon: Lexicon) -> Self {
        Embedder {
            config,
            idf,
            lexicon,
        }
    }

    /// An embedder with no corpus statistics and no lexicon. Every token
    /// weighs the same; useful as a degenerate baseline in ablations.
    pub fn untrained(config: &EmbedderConfig) -> Self {
        Embedder {
            config: config.clone(),
            idf: IdfTable::default(),
            lexicon: Lexicon::empty(),
        }
    }

    /// Output dimensionality.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// The fitted IDF table.
    pub fn idf(&self) -> &IdfTable {
        &self.idf
    }

    /// The attached lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Embed a text into a unit-norm vector.
    ///
    /// Empty or punctuation-only input yields the zero vector (the only
    /// non-unit-norm output), mirroring how retrieval treats an empty
    /// query as matching nothing.
    pub fn embed(&self, text: &str) -> Vector {
        let cfg = &self.config;
        let mut out = vec![0.0f32; cfg.dims];
        let tokens = content_words(text);
        if tokens.is_empty() {
            return Vector(out);
        }

        // 1. IDF-weighted word unigrams.
        for tok in &tokens {
            let w = cfg.word_weight * self.idf.idf(tok);
            accumulate(&format!("w:{tok}"), w, &mut out, cfg.seed);
        }

        // 2. Word bigrams (procedure phrases).
        if cfg.bigram_weight > 0.0 {
            for bg in word_bigrams(&tokens) {
                accumulate(&format!("b:{bg}"), cfg.bigram_weight, &mut out, cfg.seed);
            }
        }

        // 3. Character n-grams (robust to glued counter names and typos).
        if cfg.char_weight > 0.0 {
            for tok in &tokens {
                for g in char_ngrams(tok, cfg.ngram_min, cfg.ngram_max) {
                    accumulate(&format!("c:{g}"), cfg.char_weight, &mut out, cfg.seed);
                }
            }
        }

        // 4. Lexicon expansions: abbreviation and spelled-out forms share
        //    features. Expansion features use the *word* namespace so the
        //    expansion of "amf" collides (intentionally) with the word
        //    feature of "mobility".
        if cfg.lexicon_weight > 0.0 {
            for tok in &tokens {
                if let Some(exp) = self.lexicon.expand(tok) {
                    for e in exp {
                        let w = cfg.lexicon_weight * self.idf.idf(e);
                        accumulate(&format!("w:{e}"), w, &mut out, cfg.seed);
                    }
                }
            }
        }

        let mut v = Vector(out);
        v.normalize();
        v
    }

    /// Embed a batch of texts.
    pub fn embed_batch<'a, I>(&self, texts: I) -> Vec<Vector>
    where
        I: IntoIterator<Item = &'a str>,
    {
        texts.into_iter().map(|t| self.embed(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine;

    fn corpus() -> Vec<&'static str> {
        vec![
            "The number of authentication requests sent by AMF. The AUTHENTICATION REQUEST message is defined in section 8.2.1 of 3GPP TS 24.501. 64-bit counter.",
            "The number of initial registration procedure attempts received by AMF.",
            "The number of PDU session establishment requests received by SMF.",
            "Total downlink bytes forwarded on the N3 interface by UPF. 64-bit counter.",
            "The number of NF discovery requests received by NRF.",
            "The number of paging procedures initiated by AMF.",
        ]
    }

    fn embedder() -> Embedder {
        Embedder::fit(&EmbedderConfig::default(), corpus())
    }

    #[test]
    fn output_is_unit_norm_and_right_dims() {
        let e = embedder();
        let v = e.embed("authentication requests sent by the AMF");
        assert_eq!(v.dims(), 384);
        assert!((v.norm() - 1.0).abs() < 1e-5);
        assert!(v.is_finite());
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embedder();
        let v = e.embed("   !!! ");
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn embedding_is_deterministic() {
        let e1 = embedder();
        let e2 = embedder();
        assert_eq!(e1.embed("paging attempts"), e2.embed("paging attempts"));
    }

    #[test]
    fn question_is_closest_to_matching_description() {
        let e = embedder();
        let docs = e.embed_batch(corpus());
        let q = e.embed("how many authentication requests did the AMF send");
        let scores: Vec<f32> = docs.iter().map(|d| cosine(&q, d)).collect();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0, "scores: {scores:?}");
    }

    #[test]
    fn abbreviation_and_expansion_are_similar() {
        let e = embedder();
        let a = e.embed("UPF downlink bytes");
        let b = e.embed("user plane function downstream traffic volume");
        let unrelated = e.embed("NRF discovery requests");
        assert!(cosine(&a, &b) > cosine(&a, &unrelated));
    }

    #[test]
    fn counter_name_matches_its_words() {
        let e = embedder();
        // Glued counter names decompose via tokenisation + char n-grams.
        let name = e.embed("amfcc_n1_auth_request");
        let desc = e.embed("authentication request messages on the N1 interface");
        let other = e.embed("downlink bytes forwarded by the user plane");
        assert!(cosine(&name, &desc) > cosine(&name, &other));
    }

    #[test]
    fn generic_config_disables_lexicon_effect() {
        let full = embedder();
        let generic = Embedder::with_parts(
            EmbedderConfig::generic(),
            full.idf().clone(),
            Lexicon::telecom(),
        );
        let a = "UPF traffic";
        let b = "user plane function traffic";
        let sim_full = cosine(&full.embed(a), &full.embed(b));
        let sim_generic = cosine(&generic.embed(a), &generic.embed(b));
        assert!(
            sim_full > sim_generic,
            "lexicon should raise similarity: {sim_full} vs {sim_generic}"
        );
    }

    #[test]
    fn untrained_embedder_still_unit_norm() {
        let e = Embedder::untrained(&EmbedderConfig::default());
        let v = e.embed("pdu sessions");
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }
}

//! Text tokenisation tuned for operator-data vocabulary.
//!
//! Operator metric names are underscore-glued compounds
//! (`amfcc_n1_auth_request`) and descriptions mix prose with 3GPP
//! references (`section 8.2.1 of 3GPP TS 24.501`). The tokeniser
//! lower-cases, splits on any non-alphanumeric boundary (so compound
//! counter names decompose into their parts), and keeps digit groups as
//! tokens (interface names like `n1`, spec numbers like `24.501` become
//! `n1`, `24`, `501`).

/// Tokens that carry almost no discriminative signal in either questions
/// or metric descriptions. Kept deliberately small: words like "number"
/// or "total" *do* discriminate between counter kinds in this domain.
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "by", "to", "for", "is", "are", "was", "were", "be",
    "and", "or", "as", "at", "it", "its", "this", "that", "with", "from", "which", "what",
    "when", "how", "me", "my", "do", "does", "did", "please", "show", "tell", "give",
];

/// Lower-case a string and split it into alphanumeric word tokens.
///
/// Every maximal run of ASCII alphanumeric characters becomes one token.
/// Non-ASCII alphabetic characters are treated as part of words too, so
/// the function is safe on arbitrary UTF-8 input.
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// [`words`] with stopwords removed. Falls back to the full token list
/// when filtering would leave nothing (e.g. the query "what is this").
pub fn content_words(text: &str) -> Vec<String> {
    let all = words(text);
    let filtered: Vec<String> = all
        .iter()
        .filter(|w| !STOPWORDS.contains(&w.as_str()))
        .cloned()
        .collect();
    if filtered.is_empty() {
        all
    } else {
        filtered
    }
}

/// True when `word` is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Character n-grams of a single token, fastText style: the token is
/// wrapped in boundary markers (`<` and `>`) and every n-gram with
/// `min <= n <= max` is emitted. Tokens shorter than `min` are emitted
/// whole (with markers) so they still contribute a feature.
pub fn char_ngrams(token: &str, min: usize, max: usize) -> Vec<String> {
    assert!(min >= 1 && max >= min, "invalid n-gram range");
    let wrapped: Vec<char> = std::iter::once('<')
        .chain(token.chars())
        .chain(std::iter::once('>'))
        .collect();
    let mut out = Vec::new();
    if wrapped.len() <= min {
        out.push(wrapped.iter().collect());
        return out;
    }
    for n in min..=max.min(wrapped.len()) {
        for win in wrapped.windows(n) {
            out.push(win.iter().collect());
        }
    }
    out
}

/// Word bigrams ("auth request" → `auth_request`) over the content words
/// of `text`. Bigrams capture procedure phrases that single words miss.
pub fn word_bigrams(tokens: &[String]) -> Vec<String> {
    tokens
        .windows(2)
        .map(|w| format!("{}_{}", w[0], w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_counter_names_on_underscores() {
        assert_eq!(
            words("amfcc_n1_auth_request"),
            vec!["amfcc", "n1", "auth", "request"]
        );
    }

    #[test]
    fn lowercases_and_splits_punctuation() {
        assert_eq!(
            words("The AMF sent 42 requests (see TS 24.501)."),
            vec!["the", "amf", "sent", "42", "requests", "see", "ts", "24", "501"]
        );
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        assert!(words("").is_empty());
        assert!(words("  --- !!! ").is_empty());
    }

    #[test]
    fn content_words_removes_stopwords() {
        let t = content_words("the number of requests sent by the AMF");
        assert_eq!(t, vec!["number", "requests", "sent", "amf"]);
    }

    #[test]
    fn content_words_falls_back_when_all_stopwords() {
        let t = content_words("what is this");
        assert_eq!(t, vec!["what", "is", "this"]);
    }

    #[test]
    fn char_ngrams_wrap_token_in_markers() {
        let grams = char_ngrams("amf", 3, 3);
        assert_eq!(grams, vec!["<am", "amf", "mf>"]);
    }

    #[test]
    fn char_ngrams_short_token_emitted_whole() {
        let grams = char_ngrams("n1", 3, 5);
        // "<n1>" has length 4 > min 3, so windows of 3 and 4 are emitted.
        assert!(grams.contains(&"<n1".to_string()));
        let tiny = char_ngrams("a", 3, 5);
        assert_eq!(tiny, vec!["<a>"]);
    }

    #[test]
    fn char_ngrams_range() {
        let grams = char_ngrams("auth", 3, 5);
        // wrapped = "<auth>" (6 chars): 4 trigram + 3 quadgram + 2 five-gram
        assert_eq!(grams.len(), 4 + 3 + 2);
    }

    #[test]
    fn bigrams_join_adjacent_tokens() {
        let toks: Vec<String> = ["auth", "request", "success"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(word_bigrams(&toks), vec!["auth_request", "request_success"]);
    }

    #[test]
    fn unicode_input_does_not_panic() {
        let t = words("débit montant du UPF — 5G cœur");
        assert!(t.contains(&"débit".to_string()));
        assert!(t.contains(&"cœur".to_string()));
    }
}

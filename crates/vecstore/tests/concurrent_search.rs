//! Concurrent-read correctness: the serving tier runs many worker
//! threads doing top-k searches over one shared HNSW index. Search is
//! `&self` with no interior mutability, so concurrent results must be
//! bit-identical to sequential ones — this test pins that contract.

use dio_embed::Vector;
use dio_vecstore::{HnswConfig, HnswIndex, VectorIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const DIMS: usize = 24;

fn random_unit(rng: &mut ChaCha8Rng, dims: usize) -> Vector {
    let v: Vec<f32> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Vector(v).normalized()
}

fn dataset(n: usize, seed: u64) -> Vec<Vector> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| random_unit(&mut rng, DIMS)).collect()
}

#[test]
fn parallel_topk_matches_sequential() {
    let index = Arc::new(HnswIndex::from_vectors(
        DIMS,
        HnswConfig::default(),
        dataset(400, 0xfeed),
    ));
    let queries = Arc::new(dataset(64, 0xbeef));
    let k = 10;

    // Sequential reference: (id, score) per query, in order.
    let expected: Vec<Vec<(usize, f32)>> = queries
        .iter()
        .map(|q| {
            index
                .search(q, k)
                .into_iter()
                .map(|h| (h.id, h.score))
                .collect()
        })
        .collect();

    // Eight threads, each running every query against the shared
    // index, interleaved with the other threads' searches.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let index = Arc::clone(&index);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                queries
                    .iter()
                    .map(|q| {
                        index
                            .search(q, k)
                            .into_iter()
                            .map(|h| (h.id, h.score))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for h in handles {
        let got = h.join().expect("searcher thread panicked");
        assert_eq!(got, expected, "concurrent top-k diverged from sequential");
    }
}

#[test]
fn search_with_stats_is_stable_across_threads() {
    let index = Arc::new(HnswIndex::from_vectors(
        DIMS,
        HnswConfig::default(),
        dataset(300, 0xabba),
    ));
    let query = Arc::new(dataset(1, 0xd00d).remove(0));
    let (ref_hits, ref_stats) = index.search_with_stats(&query, 5);

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let index = Arc::clone(&index);
            let query = Arc::clone(&query);
            std::thread::spawn(move || index.search_with_stats(&query, 5))
        })
        .collect();
    for h in handles {
        let (hits, stats) = h.join().unwrap();
        assert_eq!(hits, ref_hits);
        assert_eq!(stats.candidates_scanned, ref_stats.candidates_scanned);
    }
}

//! # dio-vecstore
//!
//! Vector index substrate — the FAISS substitute for DIO copilot.
//!
//! The paper stores metric-description embeddings in FAISS and retrieves
//! the top-29 most cosine-similar samples for each user question. FAISS
//! is a C++/GPU library; this crate provides the same capability natively:
//!
//! * [`FlatIndex`] — exact brute-force cosine search (FAISS `IndexFlatIP`
//!   over normalised vectors),
//! * [`IvfIndex`] — inverted-file approximate search with a k-means
//!   coarse quantiser (FAISS `IndexIVFFlat`), trading recall for speed
//!   via the `nprobe` parameter,
//! * [`HnswIndex`] — hierarchical navigable-small-world graph search
//!   (FAISS `IndexHNSWFlat`), sub-linear queries without training,
//! * [`DocIndex`] — an index paired with owned document payloads, the
//!   form the copilot's context extractor actually uses,
//! * JSON persistence for every index type (FAISS `write_index`).
//!
//! All search paths are deterministic: equal scores tie-break on insert
//! order.

pub mod doc;
pub mod flat;
pub mod hnsw;
pub mod index;
pub mod ivf;
pub mod kmeans;
pub mod persist;

pub use doc::DocIndex;
pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use index::{SearchHit, SearchStats, VectorIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};

//! Exact brute-force index (FAISS `IndexFlatIP` analogue).

use crate::index::{SearchHit, VectorIndex};
use dio_embed::similarity::top_k_by;
use dio_embed::{cosine, Vector};
use serde::{Deserialize, Serialize};

/// Stores every vector verbatim and scans all of them per query.
/// Exact, simple, and fast enough for catalog-scale corpora (thousands
/// of metric descriptions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatIndex {
    dims: usize,
    vectors: Vec<Vector>,
}

impl FlatIndex {
    /// An empty index for `dims`-dimensional vectors.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        FlatIndex {
            dims,
            vectors: Vec::new(),
        }
    }

    /// Build from a batch of vectors.
    pub fn from_vectors(dims: usize, vectors: Vec<Vector>) -> Self {
        let mut idx = FlatIndex::new(dims);
        for v in vectors {
            idx.add(v);
        }
        idx
    }

    /// Access a stored vector by id.
    pub fn get(&self, id: usize) -> Option<&Vector> {
        self.vectors.get(id)
    }

    /// Iterate over all stored vectors in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Vector> {
        self.vectors.iter()
    }
}

impl VectorIndex for FlatIndex {
    fn add(&mut self, vector: Vector) -> usize {
        assert_eq!(
            vector.dims(),
            self.dims,
            "vector dims {} != index dims {}",
            vector.dims(),
            self.dims
        );
        self.vectors.push(vector);
        self.vectors.len() - 1
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        top_k_by(self.vectors.len(), k, |i| cosine(query, &self.vectors[i]))
            .into_iter()
            .map(|s| SearchHit {
                id: s.index,
                score: s.score,
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &[f32]) -> Vector {
        Vector(x.to_vec()).normalized()
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let mut idx = FlatIndex::new(2);
        assert_eq!(idx.add(v(&[1.0, 0.0])), 0);
        assert_eq!(idx.add(v(&[0.0, 1.0])), 1);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn search_returns_nearest_first() {
        let mut idx = FlatIndex::new(2);
        idx.add(v(&[1.0, 0.0]));
        idx.add(v(&[0.7, 0.7]));
        idx.add(v(&[0.0, 1.0]));
        let hits = idx.search(&v(&[1.0, 0.1]), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn search_empty_index_is_empty() {
        let idx = FlatIndex::new(4);
        assert!(idx.search(&v(&[1.0, 0.0, 0.0, 0.0]), 5).is_empty());
    }

    #[test]
    fn search_k_zero_is_empty() {
        let mut idx = FlatIndex::new(2);
        idx.add(v(&[1.0, 0.0]));
        assert!(idx.search(&v(&[1.0, 0.0]), 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn add_wrong_dims_panics() {
        let mut idx = FlatIndex::new(3);
        idx.add(v(&[1.0, 0.0]));
    }

    #[test]
    fn get_returns_stored_vector() {
        let mut idx = FlatIndex::new(2);
        let a = v(&[0.6, 0.8]);
        idx.add(a.clone());
        assert_eq!(idx.get(0), Some(&a));
        assert_eq!(idx.get(1), None);
    }
}

//! A vector index paired with owned document payloads.
//!
//! This is the shape the copilot's context extractor uses: each embedded
//! text sample (a metric description or a function definition) is stored
//! alongside its vector, and a search returns the payloads directly.

use crate::index::{SearchHit, SearchStats, VectorIndex};
use serde::{Deserialize, Serialize};

/// A hit carrying the matched document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocHit<'a, T> {
    /// Insertion-order id.
    pub id: usize,
    /// Cosine similarity score.
    pub score: f32,
    /// The stored payload.
    pub doc: &'a T,
}

/// Pairs any [`VectorIndex`] with a parallel payload store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DocIndex<I, T> {
    index: I,
    docs: Vec<T>,
}

impl<I: VectorIndex, T> DocIndex<I, T> {
    /// Wrap an empty index.
    pub fn new(index: I) -> Self {
        assert!(
            index.is_empty(),
            "DocIndex must start from an empty index so ids align with docs"
        );
        DocIndex {
            index,
            docs: Vec::new(),
        }
    }

    /// Wrap a pre-populated index whose ids already align with `docs`.
    pub fn from_parts(index: I, docs: Vec<T>) -> Self {
        assert_eq!(
            index.len(),
            docs.len(),
            "index and doc store must be the same length"
        );
        DocIndex { index, docs }
    }

    /// Insert a (vector, payload) pair.
    pub fn add(&mut self, vector: dio_embed::Vector, doc: T) -> usize {
        let id = self.index.add(vector);
        debug_assert_eq!(id, self.docs.len());
        self.docs.push(doc);
        id
    }

    /// Top-k search returning payload references.
    pub fn search(&self, query: &dio_embed::Vector, k: usize) -> Vec<DocHit<'_, T>> {
        self.index
            .search(query, k)
            .into_iter()
            .map(|SearchHit { id, score }| DocHit {
                id,
                score,
                doc: &self.docs[id],
            })
            .collect()
    }

    /// Top-k search that also reports how many candidate vectors the
    /// underlying index scanned.
    pub fn search_with_stats(
        &self,
        query: &dio_embed::Vector,
        k: usize,
    ) -> (Vec<DocHit<'_, T>>, SearchStats) {
        let (hits, stats) = self.index.search_with_stats(query, k);
        (
            hits.into_iter()
                .map(|SearchHit { id, score }| DocHit {
                    id,
                    score,
                    doc: &self.docs[id],
                })
                .collect(),
            stats,
        )
    }

    /// Payload by id.
    pub fn get(&self, id: usize) -> Option<&T> {
        self.docs.get(id)
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The underlying index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Mutable access to the underlying index (e.g. to tune `nprobe`).
    pub fn index_mut(&mut self) -> &mut I {
        &mut self.index
    }

    /// Iterate payloads in id order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.docs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use dio_embed::Vector;

    fn v(x: &[f32]) -> Vector {
        Vector(x.to_vec()).normalized()
    }

    #[test]
    fn add_and_search_returns_payloads() {
        let mut di: DocIndex<FlatIndex, &str> = DocIndex::new(FlatIndex::new(2));
        di.add(v(&[1.0, 0.0]), "auth requests");
        di.add(v(&[0.0, 1.0]), "pdu sessions");
        let hits = di.search(&v(&[0.9, 0.1]), 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].doc, "auth requests");
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn get_by_id() {
        let mut di: DocIndex<FlatIndex, String> = DocIndex::new(FlatIndex::new(2));
        di.add(v(&[1.0, 0.0]), "a".to_string());
        assert_eq!(di.get(0).map(|s| s.as_str()), Some("a"));
        assert_eq!(di.get(5), None);
        assert_eq!(di.len(), 1);
        assert!(!di.is_empty());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_parts_rejects_mismatched_lengths() {
        let mut idx = FlatIndex::new(2);
        use crate::index::VectorIndex as _;
        idx.add(v(&[1.0, 0.0]));
        let _: DocIndex<FlatIndex, &str> = DocIndex::from_parts(idx, vec![]);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut di: DocIndex<FlatIndex, u32> = DocIndex::new(FlatIndex::new(2));
        di.add(v(&[1.0, 0.0]), 10);
        di.add(v(&[0.0, 1.0]), 20);
        let all: Vec<u32> = di.iter().copied().collect();
        assert_eq!(all, vec![10, 20]);
    }
}

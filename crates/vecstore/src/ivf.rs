//! Inverted-file approximate index (FAISS `IndexIVFFlat` analogue).
//!
//! Vectors are partitioned by a k-means coarse quantiser into `nlist`
//! cells. A query probes only the `nprobe` cells whose centroids are
//! most similar, scanning a fraction of the data. `nprobe == nlist`
//! degenerates to exact search.

use crate::index::{SearchHit, SearchStats, VectorIndex};
use crate::kmeans::{kmeans, nearest_centroid, KMeansConfig};
use dio_embed::similarity::top_k_by;
use dio_embed::{cosine, Vector};
use serde::{Deserialize, Serialize};

/// IVF hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of inverted lists (k-means cells).
    pub nlist: usize,
    /// Cells probed per query.
    pub nprobe: usize,
    /// Training iterations for the coarse quantiser.
    pub train_iters: usize,
    /// RNG seed for quantiser training.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            nlist: 32,
            nprobe: 4,
            train_iters: 25,
            seed: 0x6976_6673_6565_6400, // "ivfseed" in ASCII
        }
    }
}

/// An IVF index. Built in one shot from training data with
/// [`IvfIndex::train`]; further vectors can be added afterwards and are
/// routed to their nearest cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfIndex {
    dims: usize,
    config: IvfConfig,
    centroids: Vec<Vector>,
    /// `lists[cell]` holds (id, vector) pairs.
    lists: Vec<Vec<(usize, Vector)>>,
    len: usize,
}

impl IvfIndex {
    /// Train the coarse quantiser on `data` and index all of it.
    pub fn train(dims: usize, config: IvfConfig, data: Vec<Vector>) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(!data.is_empty(), "IVF training needs data");
        assert!(config.nprobe >= 1, "nprobe must be >= 1");
        for d in &data {
            assert_eq!(d.dims(), dims, "vector dims mismatch");
        }
        let km = kmeans(
            &data,
            &KMeansConfig {
                k: config.nlist.min(data.len()),
                max_iters: config.train_iters,
                seed: config.seed,
            },
        );
        let mut lists = vec![Vec::new(); km.centroids.len()];
        for (id, (v, &cell)) in data.into_iter().zip(km.assignments.iter()).enumerate() {
            lists[cell].push((id, v));
        }
        let len = lists.iter().map(|l| l.len()).sum();
        IvfIndex {
            dims,
            config,
            centroids: km.centroids,
            lists,
            len,
        }
    }

    /// Number of inverted lists actually created.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Change the probe width at query time.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        assert!(nprobe >= 1, "nprobe must be >= 1");
        self.config.nprobe = nprobe;
    }

    /// Current probe width.
    pub fn nprobe(&self) -> usize {
        self.config.nprobe
    }

    /// The cells that would be probed for `query`.
    fn probe_cells(&self, query: &Vector) -> Vec<usize> {
        top_k_by(self.centroids.len(), self.config.nprobe, |i| {
            cosine(query, &self.centroids[i])
        })
        .into_iter()
        .map(|s| s.index)
        .collect()
    }
}

impl VectorIndex for IvfIndex {
    fn add(&mut self, vector: Vector) -> usize {
        assert_eq!(vector.dims(), self.dims, "vector dims mismatch");
        let cell = nearest_centroid(&vector, &self.centroids);
        let id = self.len;
        self.lists[cell].push((id, vector));
        self.len += 1;
        id
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        if k == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<&(usize, Vector)> = Vec::new();
        for cell in self.probe_cells(query) {
            candidates.extend(self.lists[cell].iter());
        }
        let mut hits: Vec<SearchHit> = top_k_by(candidates.len(), k, |i| {
            cosine(query, &candidates[i].1)
        })
        .into_iter()
        .map(|s| SearchHit {
            id: candidates[s.index].0,
            score: s.score,
        })
        .collect();
        // top_k_by tie-breaks on candidate position; re-sort so ties
        // break on id for parity with FlatIndex.
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }

    fn search_with_stats(&self, query: &Vector, k: usize) -> (Vec<SearchHit>, SearchStats) {
        let candidates_scanned = if k == 0 {
            0
        } else {
            self.probe_cells(query)
                .into_iter()
                .map(|cell| self.lists[cell].len())
                .sum()
        };
        (self.search(query, k), SearchStats { candidates_scanned })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_unit(rng: &mut ChaCha8Rng, dims: usize) -> Vector {
        let v: Vec<f32> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Vector(v).normalized()
    }

    fn dataset(n: usize, dims: usize) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        (0..n).map(|_| random_unit(&mut rng, dims)).collect()
    }

    fn cfg(nlist: usize, nprobe: usize) -> IvfConfig {
        IvfConfig {
            nlist,
            nprobe,
            train_iters: 20,
            seed: 5,
        }
    }

    #[test]
    fn indexes_all_training_vectors() {
        let data = dataset(200, 16);
        let idx = IvfIndex::train(16, cfg(8, 2), data);
        assert_eq!(idx.len(), 200);
        assert_eq!(idx.nlist(), 8);
    }

    #[test]
    fn full_probe_matches_flat_exactly() {
        let data = dataset(150, 12);
        let flat = FlatIndex::from_vectors(12, data.clone());
        let ivf = IvfIndex::train(12, cfg(10, 10), data);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let q = random_unit(&mut rng, 12);
            let fh: Vec<usize> = flat.search(&q, 5).into_iter().map(|h| h.id).collect();
            let ih: Vec<usize> = ivf.search(&q, 5).into_iter().map(|h| h.id).collect();
            assert_eq!(fh, ih);
        }
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let data = dataset(400, 16);
        let flat = FlatIndex::from_vectors(16, data.clone());
        let mut ivf = IvfIndex::train(16, cfg(16, 1), data);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let queries: Vec<Vector> = (0..30).map(|_| random_unit(&mut rng, 16)).collect();

        let recall = |ivf: &IvfIndex| -> f64 {
            let mut hit = 0usize;
            let mut total = 0usize;
            for q in &queries {
                let truth: Vec<usize> = flat.search(q, 10).into_iter().map(|h| h.id).collect();
                let got: Vec<usize> = ivf.search(q, 10).into_iter().map(|h| h.id).collect();
                hit += truth.iter().filter(|t| got.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total as f64
        };

        let r1 = recall(&ivf);
        ivf.set_nprobe(8);
        let r8 = recall(&ivf);
        ivf.set_nprobe(16);
        let r16 = recall(&ivf);
        assert!(r8 >= r1, "recall should not drop with more probes: {r1} -> {r8}");
        assert!(r16 > 0.999, "full probe must be exact, got {r16}");
    }

    #[test]
    fn add_after_training_is_searchable() {
        let data = dataset(50, 8);
        let mut ivf = IvfIndex::train(8, cfg(4, 4), data);
        let special = Vector(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let id = ivf.add(special.clone());
        assert_eq!(id, 50);
        let hits = ivf.search(&special, 1);
        assert_eq!(hits[0].id, 50);
        assert!(hits[0].score > 0.999);
    }

    #[test]
    fn search_k_zero_is_empty() {
        let ivf = IvfIndex::train(8, cfg(2, 1), dataset(10, 8));
        assert!(ivf.search(&dataset(1, 8)[0], 0).is_empty());
    }

    #[test]
    fn stats_report_probed_fraction() {
        let data = dataset(200, 8);
        let mut ivf = IvfIndex::train(8, cfg(8, 2), data);
        let q = dataset(1, 8).pop().unwrap();
        let (hits, stats) = ivf.search_with_stats(&q, 5);
        assert_eq!(hits, ivf.search(&q, 5));
        assert!(stats.candidates_scanned > 0);
        assert!(
            stats.candidates_scanned < ivf.len(),
            "2/8 probes must not scan the whole store"
        );
        // Full probe scans everything.
        ivf.set_nprobe(8);
        let (_, full) = ivf.search_with_stats(&q, 5);
        assert_eq!(full.candidates_scanned, ivf.len());
        // k == 0 does no work.
        assert_eq!(ivf.search_with_stats(&q, 0).1.candidates_scanned, 0);
    }

    #[test]
    fn training_is_deterministic() {
        let data = dataset(120, 8);
        let a = IvfIndex::train(8, cfg(6, 2), data.clone());
        let b = IvfIndex::train(8, cfg(6, 2), data);
        let q = dataset(1, 8).pop().unwrap();
        assert_eq!(a.search(&q, 7), b.search(&q, 7));
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn training_on_empty_panics() {
        IvfIndex::train(8, cfg(4, 1), vec![]);
    }
}

//! Index persistence (FAISS `write_index`/`read_index` analogue).
//!
//! Indexes serialise to JSON. The embedding corpus is rebuilt offline
//! (paper §3.2: "an offline process of converting the text samples …
//! into word embeddings"), so persistence lets the copilot skip that
//! step on restart.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from saving or loading an index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// JSON (de)serialisation error.
    Codec(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Codec(e) => Some(e),
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Codec(e)
    }
}

/// Serialise any serde-serialisable index (or `DocIndex`) to a string.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, PersistError> {
    Ok(serde_json::to_string(value)?)
}

/// Deserialise an index from a JSON string.
pub fn from_json<T: DeserializeOwned>(json: &str) -> Result<T, PersistError> {
    Ok(serde_json::from_str(json)?)
}

/// Write an index to a file.
pub fn save<T: Serialize, P: AsRef<Path>>(value: &T, path: P) -> Result<(), PersistError> {
    fs::write(path, to_json(value)?)?;
    Ok(())
}

/// Read an index back from a file.
pub fn load<T: DeserializeOwned, P: AsRef<Path>>(path: P) -> Result<T, PersistError> {
    let data = fs::read_to_string(path)?;
    from_json(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::index::VectorIndex;
    use crate::ivf::{IvfConfig, IvfIndex};
    use dio_embed::Vector;

    fn v(x: &[f32]) -> Vector {
        Vector(x.to_vec()).normalized()
    }

    #[test]
    fn flat_roundtrips_through_json() {
        let mut idx = FlatIndex::new(3);
        idx.add(v(&[1.0, 0.0, 0.0]));
        idx.add(v(&[0.0, 1.0, 0.0]));
        let json = to_json(&idx).unwrap();
        let back: FlatIndex = from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        let q = v(&[0.9, 0.1, 0.0]);
        assert_eq!(idx.search(&q, 2), back.search(&q, 2));
    }

    #[test]
    fn ivf_roundtrips_through_json() {
        let data: Vec<Vector> = (0..40)
            .map(|i| v(&[(i % 5) as f32 + 1.0, (i % 7) as f32, 1.0]))
            .collect();
        let idx = IvfIndex::train(3, IvfConfig::default(), data);
        let json = to_json(&idx).unwrap();
        let back: IvfIndex = from_json(&json).unwrap();
        let q = v(&[2.0, 3.0, 1.0]);
        assert_eq!(idx.search(&q, 5), back.search(&q, 5));
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("dio_vecstore_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flat.json");
        let mut idx = FlatIndex::new(2);
        idx.add(v(&[1.0, 0.0]));
        save(&idx, &path).unwrap();
        let back: FlatIndex = load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_json_reports_codec_error() {
        let err = from_json::<FlatIndex>("{not json").unwrap_err();
        assert!(matches!(err, PersistError::Codec(_)));
        assert!(err.to_string().contains("codec"));
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = load::<FlatIndex, _>("/nonexistent/dir/idx.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}

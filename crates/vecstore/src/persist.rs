//! Index persistence (FAISS `write_index`/`read_index` analogue).
//!
//! Indexes serialise to JSON. The embedding corpus is rebuilt offline
//! (paper §3.2: "an offline process of converting the text samples …
//! into word embeddings"), so persistence lets the copilot skip that
//! step on restart.
//!
//! Two formats:
//!
//! * the legacy plain-JSON format (`to_json`/`from_json`,
//!   `save`/`load`), which detects truncation only as far as the JSON
//!   parser happens to notice it;
//! * the checked format (`to_bytes_checked`/`from_bytes_checked`,
//!   `save_checked`/`load_checked`), which chunks the JSON into
//!   CRC-framed segments (see `dio_faults::framing`) so *any*
//!   truncation or bit flip is reported as a structured
//!   [`PersistError::Corrupt`] naming the damaged segment — an index is
//!   never silently rebuilt smaller than it was saved.

use dio_faults::{decode_all, encode_record};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Target payload size of one checked-format segment.
const SEGMENT_BYTES: usize = 1024;

/// Errors from saving or loading an index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// JSON (de)serialisation error.
    Codec(serde_json::Error),
    /// The checked format detected truncation or corruption.
    Corrupt {
        /// What was damaged and where.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::Corrupt { detail } => write!(f, "corrupt index: {detail}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Codec(e) => Some(e),
            PersistError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Codec(e)
    }
}

/// Serialise any serde-serialisable index (or `DocIndex`) to a string.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, PersistError> {
    Ok(serde_json::to_string(value)?)
}

/// Deserialise an index from a JSON string.
pub fn from_json<T: DeserializeOwned>(json: &str) -> Result<T, PersistError> {
    Ok(serde_json::from_str(json)?)
}

/// Write an index to a file.
pub fn save<T: Serialize, P: AsRef<Path>>(value: &T, path: P) -> Result<(), PersistError> {
    fs::write(path, to_json(value)?)?;
    Ok(())
}

/// Read an index back from a file.
pub fn load<T: DeserializeOwned, P: AsRef<Path>>(path: P) -> Result<T, PersistError> {
    let data = fs::read_to_string(path)?;
    from_json(&data)
}

/// Serialise an index in the checked format: JSON chunked into
/// CRC-framed segments of at most [`SEGMENT_BYTES`] payload bytes.
pub fn to_bytes_checked<T: Serialize>(value: &T) -> Result<Vec<u8>, PersistError> {
    let json = to_json(value)?;
    let bytes = json.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() + bytes.len() / SEGMENT_BYTES * 16 + 16);
    // Chunk on byte boundaries: segments are reassembled before the
    // JSON is parsed, so a cut inside a UTF-8 sequence is harmless.
    // An empty JSON document still writes one (empty) segment so an
    // empty file is distinguishable from "saved nothing".
    let mut chunks = bytes.chunks(SEGMENT_BYTES);
    let first = chunks.next().unwrap_or(b"");
    out.extend_from_slice(&encode_record(first));
    for chunk in chunks {
        out.extend_from_slice(&encode_record(chunk));
    }
    Ok(out)
}

/// Deserialise an index from the checked format. Any truncation,
/// bit flip, or framing damage is a [`PersistError::Corrupt`] naming
/// the first damaged segment — never a silently smaller index.
pub fn from_bytes_checked<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, PersistError> {
    if bytes.is_empty() {
        return Err(PersistError::Corrupt {
            detail: "empty file (expected at least one segment)".to_string(),
        });
    }
    let scan = decode_all(bytes);
    if let Some(&seg) = scan.corrupt_at.first() {
        return Err(PersistError::Corrupt {
            detail: format!(
                "segment {seg} failed its CRC ({} of {} segments damaged)",
                scan.corrupt_at.len(),
                scan.corrupt_at.len() + scan.records.len()
            ),
        });
    }
    if scan.truncated_tail {
        return Err(PersistError::Corrupt {
            detail: format!(
                "truncated after segment {} (torn final segment)",
                scan.records.len()
            ),
        });
    }
    let mut json = Vec::new();
    for rec in &scan.records {
        json.extend_from_slice(rec);
    }
    let json = String::from_utf8(json).map_err(|e| PersistError::Corrupt {
        detail: format!("reassembled payload is not UTF-8: {e}"),
    })?;
    from_json(&json)
}

/// Write an index to a file in the checked format.
pub fn save_checked<T: Serialize, P: AsRef<Path>>(
    value: &T,
    path: P,
) -> Result<(), PersistError> {
    fs::write(path, to_bytes_checked(value)?)?;
    Ok(())
}

/// Read a checked-format index back from a file.
pub fn load_checked<T: DeserializeOwned, P: AsRef<Path>>(path: P) -> Result<T, PersistError> {
    let data = fs::read(path)?;
    from_bytes_checked(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::index::VectorIndex;
    use crate::ivf::{IvfConfig, IvfIndex};
    use dio_embed::Vector;

    fn v(x: &[f32]) -> Vector {
        Vector(x.to_vec()).normalized()
    }

    #[test]
    fn flat_roundtrips_through_json() {
        let mut idx = FlatIndex::new(3);
        idx.add(v(&[1.0, 0.0, 0.0]));
        idx.add(v(&[0.0, 1.0, 0.0]));
        let json = to_json(&idx).unwrap();
        let back: FlatIndex = from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        let q = v(&[0.9, 0.1, 0.0]);
        assert_eq!(idx.search(&q, 2), back.search(&q, 2));
    }

    #[test]
    fn ivf_roundtrips_through_json() {
        let data: Vec<Vector> = (0..40)
            .map(|i| v(&[(i % 5) as f32 + 1.0, (i % 7) as f32, 1.0]))
            .collect();
        let idx = IvfIndex::train(3, IvfConfig::default(), data);
        let json = to_json(&idx).unwrap();
        let back: IvfIndex = from_json(&json).unwrap();
        let q = v(&[2.0, 3.0, 1.0]);
        assert_eq!(idx.search(&q, 5), back.search(&q, 5));
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("dio_vecstore_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flat.json");
        let mut idx = FlatIndex::new(2);
        idx.add(v(&[1.0, 0.0]));
        save(&idx, &path).unwrap();
        let back: FlatIndex = load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_json_reports_codec_error() {
        let err = from_json::<FlatIndex>("{not json").unwrap_err();
        assert!(matches!(err, PersistError::Codec(_)));
        assert!(err.to_string().contains("codec"));
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = load::<FlatIndex, _>("/nonexistent/dir/idx.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    fn big_flat() -> FlatIndex {
        // Large enough for several checked segments.
        let mut idx = FlatIndex::new(8);
        for i in 0..200 {
            let mut coords = vec![0.0f32; 8];
            coords[i % 8] = 1.0 + (i as f32) * 0.01;
            coords[(i + 3) % 8] = 0.5;
            idx.add(v(&coords));
        }
        idx
    }

    #[test]
    fn checked_format_roundtrips() {
        let idx = big_flat();
        let bytes = to_bytes_checked(&idx).unwrap();
        assert!(
            bytes.len() > 2 * SEGMENT_BYTES,
            "test index too small to span segments"
        );
        let back: FlatIndex = from_bytes_checked(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        let q = v(&[0.9, 0.1, 0.0, 0.0, 0.2, 0.0, 0.0, 0.0]);
        assert_eq!(idx.search(&q, 5), back.search(&q, 5));
    }

    #[test]
    fn every_truncation_is_a_structured_error_never_a_smaller_index() {
        // The satellite bugfix: a truncated index file must never load
        // as a silently smaller index. Every strict prefix of the
        // checked format is an error.
        let bytes = to_bytes_checked(&big_flat()).unwrap();
        for cut in 0..bytes.len() {
            let err = from_bytes_checked::<FlatIndex>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Corrupt { .. } | PersistError::Codec(_)),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        // Sample bit flips across the file (every byte is too slow for
        // a unit test; stride through all regions incl. headers).
        let bytes = to_bytes_checked(&big_flat()).unwrap();
        for pos in (0..bytes.len()).step_by(97) {
            for bit in [0, 5] {
                let mut damaged = bytes.clone();
                damaged[pos] ^= 1 << bit;
                assert!(
                    from_bytes_checked::<FlatIndex>(&damaged).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn checked_save_and_load_file() {
        let dir = std::env::temp_dir().join("dio_vecstore_persist_checked_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flat.dio");
        let idx = big_flat();
        save_checked(&idx, &path).unwrap();
        let back: FlatIndex = load_checked(&path).unwrap();
        assert_eq!(back.len(), idx.len());
        // Truncate the file on disk: load must error, not shrink.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() / 2]).unwrap();
        assert!(load_checked::<FlatIndex, _>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_checked_file_is_corrupt_not_empty_index() {
        let err = from_bytes_checked::<FlatIndex>(&[]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }));
    }
}

//! Deterministic k-means clustering (the IVF coarse quantiser).
//!
//! Lloyd's algorithm with k-means++ style seeding driven by a seeded
//! ChaCha8 RNG, so training the same data with the same config always
//! yields the same centroids.

use dio_embed::{cosine, Vector};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// k-means hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for centroid initialisation.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 16,
            max_iters: 25,
            seed: 0x6b6d_6561_6e73_0001, // "kmeans" in ASCII + 1
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster centroids (unit-normalised).
    pub centroids: Vec<Vector>,
    /// Assignment of each input vector to a centroid index.
    pub assignments: Vec<usize>,
    /// Iterations actually run.
    pub iterations: usize,
}

/// Run k-means over `data` (vectors are treated as directions: cosine
/// assignment, centroids re-normalised each round — spherical k-means,
/// which matches cosine retrieval).
///
/// When `data.len() <= k` every point becomes its own centroid.
pub fn kmeans(data: &[Vector], config: &KMeansConfig) -> KMeansResult {
    assert!(config.k > 0, "k must be positive");
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    let dims = data[0].dims();
    for d in data {
        assert_eq!(d.dims(), dims, "inconsistent vector dims");
    }

    if data.len() <= config.k {
        return KMeansResult {
            centroids: data.iter().map(|v| v.normalized()).collect(),
            assignments: (0..data.len()).collect(),
            iterations: 0,
        };
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut centroids = init_centroids(data, config.k, &mut rng);
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;

    for _ in 0..config.max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, v) in data.iter().enumerate() {
            let best = nearest_centroid(v, &centroids);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![Vector::zeros(dims); centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, v) in data.iter().enumerate() {
            sums[assignments[i]].add_scaled(v, 1.0);
            counts[assignments[i]] += 1;
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.normalized();
            }
            // Empty clusters keep their previous centroid; with k-means++
            // seeding this is rare and harmless for IVF probing.
        }
        if !changed {
            break;
        }
    }

    KMeansResult {
        centroids,
        assignments,
        iterations,
    }
}

/// k-means++ seeding: the first centroid is a random point, each further
/// centroid is chosen with probability proportional to squared cosine
/// *distance* (1 - similarity) to the nearest chosen centroid.
fn init_centroids(data: &[Vector], k: usize, rng: &mut ChaCha8Rng) -> Vec<Vector> {
    let mut centroids = Vec::with_capacity(k);
    let first = rng.gen_range(0..data.len());
    centroids.push(data[first].normalized());

    while centroids.len() < k {
        let weights: Vec<f64> = data
            .iter()
            .map(|v| {
                let best = centroids
                    .iter()
                    .map(|c| cosine(v, c))
                    .fold(f32::MIN, f32::max);
                let d = (1.0 - best).max(0.0) as f64;
                d * d
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let pick = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = data.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if target < *w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(data[pick].normalized());
    }
    centroids
}

/// Index of the centroid most cosine-similar to `v` (ties → lowest index).
pub fn nearest_centroid(v: &Vector, centroids: &[Vector]) -> usize {
    let mut best = 0;
    let mut best_score = f32::MIN;
    for (i, c) in centroids.iter().enumerate() {
        let s = cosine(v, c);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &[f32]) -> Vector {
        Vector(x.to_vec()).normalized()
    }

    fn two_blobs() -> Vec<Vector> {
        let mut data = Vec::new();
        for i in 0..20 {
            let eps = i as f32 * 0.001;
            data.push(v(&[1.0, eps, 0.0]));
            data.push(v(&[0.0, eps, 1.0]));
        }
        data
    }

    fn cfg(k: usize) -> KMeansConfig {
        KMeansConfig {
            k,
            max_iters: 50,
            seed: 7,
        }
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let data = two_blobs();
        let res = kmeans(&data, &cfg(2));
        assert_eq!(res.centroids.len(), 2);
        // All even indices (blob A) share a cluster, all odd share the other.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for i in (0..data.len()).step_by(2) {
            assert_eq!(res.assignments[i], a);
        }
        for i in (1..data.len()).step_by(2) {
            assert_eq!(res.assignments[i], b);
        }
    }

    #[test]
    fn is_deterministic() {
        let data = two_blobs();
        let r1 = kmeans(&data, &cfg(4));
        let r2 = kmeans(&data, &cfg(4));
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centroids, r2.centroids);
    }

    #[test]
    fn fewer_points_than_k_makes_each_point_a_centroid() {
        let data = vec![v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        let res = kmeans(&data, &cfg(8));
        assert_eq!(res.centroids.len(), 2);
        assert_eq!(res.assignments, vec![0, 1]);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn centroids_are_unit_norm() {
        let data = two_blobs();
        let res = kmeans(&data, &cfg(3));
        for c in &res.centroids {
            assert!((c.norm() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        kmeans(&[], &cfg(2));
    }

    #[test]
    fn nearest_centroid_prefers_most_similar() {
        let cents = vec![v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        assert_eq!(nearest_centroid(&v(&[0.9, 0.1]), &cents), 0);
        assert_eq!(nearest_centroid(&v(&[0.1, 0.9]), &cents), 1);
    }
}

//! The common vector-index interface.

use dio_embed::Vector;
use serde::{Deserialize, Serialize};

/// One search result: the id assigned at insertion time plus the cosine
/// similarity score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Insertion-order id of the matched vector.
    pub id: usize,
    /// Cosine similarity in `[-1, 1]`.
    pub score: f32,
}

/// Work accounting for one search, fed into retrieval telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Vectors whose similarity to the query was (or may have been)
    /// computed. Exact indexes scan everything; approximate indexes
    /// report how much of the store the probe actually touched.
    pub candidates_scanned: usize,
}

/// A store of vectors searchable by cosine similarity.
///
/// Ids are assigned densely in insertion order (`0, 1, 2, …`), matching
/// how the copilot keeps a parallel `Vec` of document payloads.
pub trait VectorIndex {
    /// Insert a vector, returning its id. Implementations may require a
    /// fixed dimensionality set at construction and panic on mismatch.
    fn add(&mut self, vector: Vector) -> usize;

    /// Top-`k` hits for `query`, sorted by descending score (ties broken
    /// by ascending id). May return fewer than `k` when the index is
    /// small, and, for approximate indexes, when probing misses.
    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit>;

    /// Like [`VectorIndex::search`], also reporting how many candidate
    /// vectors were scanned. The default assumes an exhaustive scan
    /// (true for exact indexes); approximate indexes override with the
    /// work their probe actually did.
    fn search_with_stats(&self, query: &Vector, k: usize) -> (Vec<SearchHit>, SearchStats) {
        let hits = self.search(query, k);
        (
            hits,
            SearchStats {
                candidates_scanned: self.len(),
            },
        )
    }

    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// True when no vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality enforced by the index.
    fn dims(&self) -> usize;
}

//! Hierarchical Navigable Small World (HNSW) graph index.
//!
//! The third index family alongside [`crate::FlatIndex`] and
//! [`crate::IvfIndex`], matching FAISS's `IndexHNSWFlat`: a multi-layer
//! proximity graph searched by greedy descent plus best-first expansion.
//! Sub-linear query time without training, at the cost of insert-time
//! graph maintenance.
//!
//! Determinism: level assignment derives from a hash of the insertion
//! id and the configured seed (no RNG state), so the same insertion
//! sequence always builds the same graph.

use crate::index::{SearchHit, VectorIndex};
use dio_embed::{cosine, Vector};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max connections per node per layer (M). Layer 0 allows `2 * m`.
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Candidate-list width during search.
    pub ef_search: usize,
    /// Seed for deterministic level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x686e_7377_0000_0001,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    vector: Vector,
    /// Neighbour lists, one per layer (index 0 = base layer).
    neighbours: Vec<Vec<usize>>,
}

/// The HNSW index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswIndex {
    dims: usize,
    config: HnswConfig,
    nodes: Vec<Node>,
    entry: Option<usize>,
    max_level: usize,
}

/// Max-heap entry ordered by similarity.
#[derive(PartialEq)]
struct Candidate {
    sim: f32,
    id: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn hash01(seed: u64, id: u64) -> f64 {
    let mut h = seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

impl HnswIndex {
    /// An empty index for `dims`-dimensional vectors.
    pub fn new(dims: usize, config: HnswConfig) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(config.m >= 2, "m must be at least 2");
        HnswIndex {
            dims,
            config,
            nodes: Vec::new(),
            entry: None,
            max_level: 0,
        }
    }

    /// Build from a batch of vectors.
    pub fn from_vectors(dims: usize, config: HnswConfig, vectors: Vec<Vector>) -> Self {
        let mut idx = HnswIndex::new(dims, config);
        for v in vectors {
            idx.add(v);
        }
        idx
    }

    /// Change the search width.
    pub fn set_ef_search(&mut self, ef: usize) {
        self.config.ef_search = ef.max(1);
    }

    /// The deterministic level for insertion id `id`.
    fn level_for(&self, id: usize) -> usize {
        let ml = 1.0 / (self.config.m as f64).ln();
        let u = hash01(self.config.seed, id as u64);
        (-u.ln() * ml).floor() as usize
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Greedy best-first search on one layer; returns up to `ef` hits
    /// sorted by descending similarity.
    fn search_layer(&self, query: &Vector, entry: usize, ef: usize, layer: usize) -> Vec<Candidate> {
        let mut visited: HashSet<usize> = HashSet::new();
        visited.insert(entry);
        let entry_sim = cosine(query, &self.nodes[entry].vector);

        // Frontier: max-heap by similarity. Results: min-heap (via
        // Reverse) keeping the best `ef`.
        let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();
        frontier.push(Candidate {
            sim: entry_sim,
            id: entry,
        });
        let mut results: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        results.push(std::cmp::Reverse(Candidate {
            sim: entry_sim,
            id: entry,
        }));

        while let Some(current) = frontier.pop() {
            let worst = results.peek().map(|r| r.0.sim).unwrap_or(f32::MIN);
            if current.sim < worst && results.len() >= ef {
                break;
            }
            for &n in &self.nodes[current.id].neighbours[layer] {
                if !visited.insert(n) {
                    continue;
                }
                let sim = cosine(query, &self.nodes[n].vector);
                let worst = results.peek().map(|r| r.0.sim).unwrap_or(f32::MIN);
                if results.len() < ef || sim > worst {
                    frontier.push(Candidate { sim, id: n });
                    results.push(std::cmp::Reverse(Candidate { sim, id: n }));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }

        let mut out: Vec<Candidate> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Select up to `m` neighbours using the HNSW paper's diversity
    /// heuristic (Algorithm 4): a candidate is kept only if it is
    /// closer to the query node than to every already-selected
    /// neighbour. Plain top-m collapses on clustered data (operator
    /// metric descriptions are *extremely* clustered: forty
    /// near-identical failure counters per procedure), leaving the
    /// graph disconnected between clusters.
    fn select_neighbours(&self, cands: &[Candidate], m: usize) -> Vec<usize> {
        let mut selected: Vec<usize> = Vec::with_capacity(m);
        for c in cands {
            if selected.len() >= m {
                break;
            }
            let diverse = selected.iter().all(|&s| {
                let sim_to_selected = cosine(&self.nodes[c.id].vector, &self.nodes[s].vector);
                c.sim > sim_to_selected
            });
            if diverse {
                selected.push(c.id);
            }
        }
        // Backfill with the best remaining candidates if the heuristic
        // was too strict (keepPrunedConnections in the paper).
        if selected.len() < m {
            for c in cands {
                if selected.len() >= m {
                    break;
                }
                if !selected.contains(&c.id) {
                    selected.push(c.id);
                }
            }
        }
        selected
    }

    fn prune(&mut self, id: usize, layer: usize) {
        let cap = self.max_links(layer);
        if self.nodes[id].neighbours[layer].len() <= cap {
            return;
        }
        let v = self.nodes[id].vector.clone();
        let mut scored: Vec<Candidate> = self.nodes[id].neighbours[layer]
            .iter()
            .map(|&n| Candidate {
                sim: cosine(&v, &self.nodes[n].vector),
                id: n,
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        self.nodes[id].neighbours[layer] = self.select_neighbours(&scored, cap);
    }
}

impl VectorIndex for HnswIndex {
    fn add(&mut self, vector: Vector) -> usize {
        assert_eq!(vector.dims(), self.dims, "vector dims mismatch");
        let id = self.nodes.len();
        let level = self.level_for(id);
        self.nodes.push(Node {
            vector,
            neighbours: vec![Vec::new(); level + 1],
        });

        let Some(mut entry) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return id;
        };

        let query = self.nodes[id].vector.clone();

        // Greedy descent through layers above the new node's level.
        let mut layer = self.max_level;
        while layer > level {
            let best = self.search_layer(&query, entry, 1, layer);
            if let Some(b) = best.first() {
                entry = b.id;
            }
            layer -= 1;
        }

        // Connect on each layer from min(level, max_level) down to 0.
        let top = level.min(self.max_level);
        for l in (0..=top).rev() {
            let cands = self.search_layer(&query, entry, self.config.ef_construction, l);
            let selected = self.select_neighbours(&cands, self.max_links(l));
            for &n in &selected {
                if n == id {
                    continue;
                }
                self.nodes[id].neighbours[l].push(n);
                self.nodes[n].neighbours[l].push(id);
                self.prune(n, l);
            }
            if let Some(b) = cands.first() {
                entry = b.id;
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        id
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        if k == 0 || self.nodes.is_empty() {
            return Vec::new();
        }
        let mut entry = self.entry.expect("non-empty index has an entry");
        for layer in (1..=self.max_level).rev() {
            let best = self.search_layer(query, entry, 1, layer);
            if let Some(b) = best.first() {
                entry = b.id;
            }
        }
        let ef = self.config.ef_search.max(k);
        let cands = self.search_layer(query, entry, ef, 0);
        cands
            .into_iter()
            .take(k)
            .map(|c| SearchHit {
                id: c.id,
                score: c.sim,
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_unit(rng: &mut ChaCha8Rng, dims: usize) -> Vector {
        let v: Vec<f32> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Vector(v).normalized()
    }

    fn dataset(n: usize, dims: usize, seed: u64) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| random_unit(&mut rng, dims)).collect()
    }

    #[test]
    fn empty_and_tiny_indexes() {
        let idx = HnswIndex::new(8, HnswConfig::default());
        assert!(idx.is_empty());
        assert!(idx.search(&Vector::zeros(8), 3).is_empty());

        let mut idx = HnswIndex::new(2, HnswConfig::default());
        idx.add(Vector(vec![1.0, 0.0]));
        let hits = idx.search(&Vector(vec![1.0, 0.0]), 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn exact_on_identical_query() {
        let data = dataset(200, 16, 3);
        let idx = HnswIndex::from_vectors(16, HnswConfig::default(), data.clone());
        for probe in [0usize, 57, 123, 199] {
            let hits = idx.search(&data[probe], 1);
            assert_eq!(hits[0].id, probe, "query = stored vector {probe}");
            assert!(hits[0].score > 0.999);
        }
    }

    #[test]
    fn recall_against_flat_is_high() {
        let data = dataset(500, 24, 9);
        let flat = FlatIndex::from_vectors(24, data.clone());
        let hnsw = HnswIndex::from_vectors(24, HnswConfig::default(), data);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut hit = 0usize;
        let mut total = 0usize;
        for _ in 0..30 {
            let q = random_unit(&mut rng, 24);
            let truth: Vec<usize> = flat.search(&q, 10).into_iter().map(|h| h.id).collect();
            let got: Vec<usize> = hnsw.search(&q, 10).into_iter().map(|h| h.id).collect();
            hit += truth.iter().filter(|t| got.contains(t)).count();
            total += truth.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn build_is_deterministic() {
        let data = dataset(150, 12, 21);
        let a = HnswIndex::from_vectors(12, HnswConfig::default(), data.clone());
        let b = HnswIndex::from_vectors(12, HnswConfig::default(), data);
        let q = dataset(1, 12, 99).pop().unwrap();
        assert_eq!(a.search(&q, 7), b.search(&q, 7));
    }

    #[test]
    fn ef_search_trades_recall() {
        let data = dataset(600, 16, 5);
        let flat = FlatIndex::from_vectors(16, data.clone());
        let mut hnsw = HnswIndex::from_vectors(
            16,
            HnswConfig {
                ef_construction: 40,
                ..HnswConfig::default()
            },
            data,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let queries: Vec<Vector> = (0..25).map(|_| random_unit(&mut rng, 16)).collect();
        let recall = |h: &HnswIndex| {
            let mut hit = 0;
            let mut total = 0;
            for q in &queries {
                let truth: Vec<usize> = flat.search(q, 10).into_iter().map(|x| x.id).collect();
                let got: Vec<usize> = h.search(q, 10).into_iter().map(|x| x.id).collect();
                hit += truth.iter().filter(|t| got.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total as f64
        };
        hnsw.set_ef_search(4);
        let low = recall(&hnsw);
        hnsw.set_ef_search(128);
        let high = recall(&hnsw);
        assert!(high >= low, "ef=128 recall {high} < ef=4 recall {low}");
        assert!(high > 0.9, "high-ef recall {high}");
    }

    #[test]
    fn neighbour_lists_respect_caps() {
        let data = dataset(300, 8, 13);
        let cfg = HnswConfig {
            m: 6,
            ..HnswConfig::default()
        };
        let idx = HnswIndex::from_vectors(8, cfg, data);
        for node in &idx.nodes {
            for (layer, links) in node.neighbours.iter().enumerate() {
                let cap = if layer == 0 { 12 } else { 6 };
                assert!(links.len() <= cap, "layer {layer} has {} links", links.len());
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let data = dataset(80, 8, 17);
        let idx = HnswIndex::from_vectors(8, HnswConfig::default(), data.clone());
        let json = serde_json::to_string(&idx).unwrap();
        let back: HnswIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(idx.search(&data[5], 5), back.search(&data[5], 5));
    }

    #[test]
    #[should_panic(expected = "dims mismatch")]
    fn wrong_dims_panics() {
        let mut idx = HnswIndex::new(4, HnswConfig::default());
        idx.add(Vector(vec![1.0, 0.0]));
    }
}

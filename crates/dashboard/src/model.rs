//! Dashboard data model (Grafana-like).

use serde::{Deserialize, Serialize};

/// Visualisation type of a panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum PanelKind {
    /// Time-series line chart.
    Timeseries,
    /// Single-value stat.
    Stat,
}

/// One query target within a panel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Target {
    /// PromQL expression.
    pub expr: String,
    /// Legend template.
    pub legend: String,
}

/// One dashboard panel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// Visualisation type.
    pub kind: PanelKind,
    /// Query targets.
    pub targets: Vec<Target>,
    /// Y-axis unit hint (e.g. `ops/s`, `percent`).
    pub unit: String,
}

/// Time range of the dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeRange {
    /// Start (ms since epoch).
    pub from_ms: i64,
    /// End (ms since epoch).
    pub to_ms: i64,
    /// Panel resolution (ms per point).
    pub step_ms: i64,
}

impl TimeRange {
    /// A range ending at `now` spanning `span_ms`, with ~`points`
    /// samples per series.
    pub fn last(now: i64, span_ms: i64, points: usize) -> Self {
        let step = (span_ms / points.max(1) as i64).max(1);
        TimeRange {
            from_ms: now - span_ms,
            to_ms: now,
            step_ms: step,
        }
    }
}

/// A generated dashboard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dashboard {
    /// Dashboard title.
    pub title: String,
    /// The question that produced it.
    pub question: String,
    /// Panels in display order.
    pub panels: Vec<Panel>,
    /// Time range.
    pub range: TimeRange,
}

impl Dashboard {
    /// Serialise to a Grafana-like JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dashboard serialises")
    }

    /// Parse back from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dashboard() -> Dashboard {
        Dashboard {
            title: "Registration KPIs".into(),
            question: "what is the registration success rate".into(),
            panels: vec![Panel {
                title: "registration attempts".into(),
                kind: PanelKind::Timeseries,
                targets: vec![Target {
                    expr: "sum(rate(amfcc_n1_initial_registration_attempt[5m]))".into(),
                    legend: "attempts/s".into(),
                }],
                unit: "ops/s".into(),
            }],
            range: TimeRange::last(600_000, 300_000, 30),
        }
    }

    #[test]
    fn json_round_trip() {
        let d = dashboard();
        let j = d.to_json();
        assert!(j.contains("\"timeseries\""));
        let back = Dashboard::from_json(&j).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn time_range_last() {
        let r = TimeRange::last(1_000_000, 600_000, 60);
        assert_eq!(r.from_ms, 400_000);
        assert_eq!(r.to_ms, 1_000_000);
        assert_eq!(r.step_ms, 10_000);
        // Degenerate points count.
        let r = TimeRange::last(100, 50, 0);
        assert!(r.step_ms >= 1);
    }
}

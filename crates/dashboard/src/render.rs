//! ASCII rendering of dashboard panels.
//!
//! The offline stand-in for a browser: each time-series panel becomes a
//! small unicode sparkline chart per target series, evaluated through
//! the PromQL engine.

use crate::model::{Dashboard, PanelKind};
use dio_promql::Engine;

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render every panel of a dashboard as text.
pub fn render_ascii(dashboard: &Dashboard, engine: &Engine, width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ==\n", dashboard.title));
    for panel in &dashboard.panels {
        out.push_str(&format!("\n-- {} ", panel.title));
        if !panel.unit.is_empty() {
            out.push_str(&format!("[{}] ", panel.unit));
        }
        out.push_str("--\n");
        for target in &panel.targets {
            match panel.kind {
                PanelKind::Stat => {
                    match engine.instant_query(&target.expr, dashboard.range.to_ms) {
                        Ok(v) => match v.as_scalar_like() {
                            Some(x) => out.push_str(&format!("  {} = {:.4}\n", target.legend, x)),
                            None => out.push_str(&format!(
                                "  {} = {} samples\n",
                                target.legend,
                                v.numeric_values().len()
                            )),
                        },
                        Err(e) => out.push_str(&format!("  {} = error: {e}\n", target.legend)),
                    }
                }
                PanelKind::Timeseries => {
                    let r = &dashboard.range;
                    // Re-step so each series is at most `width` points.
                    let span = r.to_ms - r.from_ms;
                    let step = (span / width.max(1) as i64).max(r.step_ms.max(1));
                    match engine.range_query(&target.expr, r.from_ms, r.to_ms, step) {
                        Ok(series) => {
                            if series.is_empty() {
                                out.push_str(&format!("  {}: (no data)\n", target.legend));
                            }
                            for s in series {
                                let values: Vec<f64> =
                                    s.points.iter().map(|p| p.value).collect();
                                out.push_str(&format!(
                                    "  {} {}\n",
                                    sparkline(&values),
                                    legend_for(&target.legend, &s.labels.to_string())
                                ));
                            }
                        }
                        Err(e) => out.push_str(&format!("  error: {e}\n")),
                    }
                }
            }
        }
    }
    out
}

fn legend_for(template: &str, labels: &str) -> String {
    if labels == "{}" {
        template.to_string()
    } else {
        format!("{template} {labels}")
    }
}

/// Map values onto eight bar glyphs. Non-finite values render as spaces.
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                ' '
            } else {
                let idx = (((v - min) / span) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_dashboard, PanelSpecHint};
    use crate::model::TimeRange;
    use dio_tsdb::{Labels, MetricStore, Sample};

    fn engine() -> Engine {
        let mut st = MetricStore::new();
        let l = Labels::name_only("reqs_total");
        for k in 0..=20i64 {
            st.append(l.clone(), Sample::new(k * 60_000, (k * k) as f64))
                .unwrap();
        }
        Engine::new(st)
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "▁");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_handles_nan() {
        let s = sparkline(&[0.0, f64::NAN, 2.0]);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn sparkline_constant_series() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s, "▁▁▁");
    }

    #[test]
    fn renders_dashboard_with_data() {
        let e = engine();
        let d = generate_dashboard(
            "how many requests",
            &[PanelSpecHint {
                name: "reqs_total".into(),
                title: "requests".into(),
                is_counter: true,
            }],
            Some("sum(reqs_total)"),
            TimeRange::last(1_200_000, 600_000, 20),
        );
        let text = render_ascii(&d, &e, 40);
        assert!(text.contains("== how many requests =="));
        assert!(text.contains("answer = 400.0000"));
        assert!(text.contains('▁') || text.contains('█'));
    }

    #[test]
    fn renders_missing_data_gracefully() {
        let e = engine();
        let d = generate_dashboard(
            "missing metric",
            &[PanelSpecHint {
                name: "nonexistent".into(),
                title: "nothing".into(),
                is_counter: false,
            }],
            None,
            TimeRange::last(1_200_000, 600_000, 20),
        );
        let text = render_ascii(&d, &e, 40);
        assert!(text.contains("(no data)"));
    }
}

//! Turning relevant metrics into a dashboard.

use crate::model::{Dashboard, Panel, PanelKind, Target, TimeRange};

/// What the generator needs to know about a metric to panel it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanelSpecHint {
    /// Metric name.
    pub name: String,
    /// Short human description (panel title).
    pub title: String,
    /// True for monotone counters (get `rate()` panels), false for
    /// gauges (plotted directly).
    pub is_counter: bool,
}

/// Build a dashboard for a question: one time-series panel per relevant
/// metric plus a stat panel for the direct answer expression.
pub fn generate_dashboard(
    question: &str,
    metrics: &[PanelSpecHint],
    answer_expr: Option<&str>,
    range: TimeRange,
) -> Dashboard {
    let mut panels = Vec::new();
    if let Some(expr) = answer_expr {
        panels.push(Panel {
            title: "answer".to_string(),
            kind: PanelKind::Stat,
            targets: vec![Target {
                expr: expr.to_string(),
                legend: "answer".to_string(),
            }],
            unit: String::new(),
        });
    }
    for m in metrics {
        let (expr, unit, legend) = if m.is_counter {
            (
                format!("sum(rate({}[5m]))", m.name),
                "ops/s".to_string(),
                format!("{} per second", m.name),
            )
        } else {
            (
                format!("sum({})", m.name),
                "level".to_string(),
                m.name.clone(),
            )
        };
        panels.push(Panel {
            title: m.title.clone(),
            kind: PanelKind::Timeseries,
            targets: vec![Target { expr, legend }],
            unit,
        });
    }
    Dashboard {
        title: dashboard_title(question),
        question: question.to_string(),
        panels,
        range,
    }
}

/// A short title derived from the question.
fn dashboard_title(question: &str) -> String {
    let words: Vec<&str> = question.split_whitespace().take(8).collect();
    let mut t = words.join(" ");
    if question.split_whitespace().count() > 8 {
        t.push('…');
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hints() -> Vec<PanelSpecHint> {
        vec![
            PanelSpecHint {
                name: "amfcc_n1_initial_registration_attempt".into(),
                title: "initial registration attempts".into(),
                is_counter: true,
            },
            PanelSpecHint {
                name: "smfpdu_active_pdu_sessions_current".into(),
                title: "active PDU sessions".into(),
                is_counter: false,
            },
        ]
    }

    #[test]
    fn counters_get_rate_panels_gauges_do_not() {
        let d = generate_dashboard(
            "how are registrations doing",
            &hints(),
            None,
            TimeRange::last(600_000, 300_000, 30),
        );
        assert_eq!(d.panels.len(), 2);
        assert!(d.panels[0].targets[0].expr.contains("rate("));
        assert!(!d.panels[1].targets[0].expr.contains("rate("));
        assert_eq!(d.panels[1].targets[0].expr, "sum(smfpdu_active_pdu_sessions_current)");
    }

    #[test]
    fn answer_stat_panel_comes_first() {
        let d = generate_dashboard(
            "what is the success rate",
            &hints(),
            Some("100 * sum(s) / sum(a)"),
            TimeRange::last(0, 1000, 10),
        );
        assert_eq!(d.panels.len(), 3);
        assert_eq!(d.panels[0].kind, PanelKind::Stat);
        assert_eq!(d.panels[0].targets[0].expr, "100 * sum(s) / sum(a)");
    }

    #[test]
    fn long_questions_truncate_in_title() {
        let d = generate_dashboard(
            "what is the mean duration of the initial registration procedure across instances today",
            &[],
            None,
            TimeRange::last(0, 1000, 10),
        );
        assert!(d.title.ends_with('…'));
        assert!(d.title.split_whitespace().count() <= 8);
    }
}

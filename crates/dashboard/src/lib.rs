//! # dio-dashboard
//!
//! Dashboard generation substrate.
//!
//! The paper's copilot "generate\[s\] code for creating time-series
//! visualization of the relevant variables on a dashboard" (§3.3) —
//! in practice a Grafana-style JSON document of panels with PromQL
//! targets. This crate provides:
//!
//! * a typed [`Dashboard`]/[`Panel`] model with JSON serialisation in a
//!   Grafana-like shape,
//! * a [`generate`] module that turns relevant metrics into panels
//!   (rate panels for counters, level panels for gauges, plus a stat
//!   panel for the direct answer),
//! * an ASCII renderer that plots panel targets from the query engine —
//!   the offline stand-in for a browser dashboard.

pub mod generate;
pub mod model;
pub mod render;

pub use generate::{generate_dashboard, PanelSpecHint};
pub use model::{Dashboard, Panel, PanelKind, Target, TimeRange};
pub use render::render_ascii;

//! Consistent-hash ring over shards.
//!
//! Metric families (and tenants) are placed on shards by hashing each
//! shard's virtual nodes onto a `u64` ring and assigning a key to the
//! first vnode point at or after the key's hash (wrapping). With ~64
//! vnodes per shard the load spread stays within a small factor of
//! uniform, and — the property the rebalancer depends on — adding or
//! removing one shard only moves the keys that land on that shard's
//! vnode arcs, roughly `1/N` of the keyspace, while every other key
//! keeps its owner.

/// FNV-1a over bytes, finished with a splitmix64 avalanche so nearby
/// keys (`cpu#0`, `cpu#1`, …) scatter across the whole ring instead of
/// clustering.
fn hash_key(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // splitmix64 finalizer
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of one shard vnode: the shard id and vnode index are folded
/// into the key bytes so each (shard, vnode) pair gets its own point.
fn vnode_point(shard: usize, vnode: usize) -> u64 {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(b"shard:");
    bytes.extend_from_slice(&(shard as u64).to_le_bytes());
    bytes.extend_from_slice(&(vnode as u64).to_le_bytes());
    hash_key(&bytes)
}

/// A consistent-hash ring mapping string keys to shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (point, shard) pairs.
    points: Vec<(u64, usize)>,
    vnodes: usize,
    /// Active shard ids, ascending. Ids are stable: removing shard 1 of
    /// 3 leaves shards {0, 2}.
    shards: Vec<usize>,
    /// Next id to hand out from [`HashRing::add_shard`].
    next_id: usize,
}

impl HashRing {
    /// Default virtual nodes per shard.
    pub const DEFAULT_VNODES: usize = 64;

    /// Ring over shards `0..shards` with the default vnode count.
    pub fn new(shards: usize) -> Self {
        Self::with_vnodes(shards, Self::DEFAULT_VNODES)
    }

    /// Ring over shards `0..shards` with `vnodes` points per shard.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        let mut ring = HashRing {
            points: Vec::with_capacity(shards * vnodes),
            vnodes,
            shards: Vec::with_capacity(shards),
            next_id: 0,
        };
        for _ in 0..shards {
            ring.add_shard();
        }
        ring
    }

    /// Active shard ids, ascending.
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// Number of active shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shards are active (only possible after removals).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Vnodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The shard owning `key`: the first vnode point at or after
    /// `hash(key)`, wrapping past the top of the ring.
    pub fn owner(&self, key: &str) -> usize {
        assert!(!self.points.is_empty(), "owner() on an empty ring");
        let h = hash_key(key.as_bytes());
        let idx = self.points.partition_point(|(p, _)| *p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }

    /// Add a shard, returning its id. Only keys whose arcs the new
    /// shard's vnodes capture move — everything else keeps its owner.
    pub fn add_shard(&mut self) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.shards.push(id);
        for v in 0..self.vnodes {
            let point = (vnode_point(id, v), id);
            let at = self.points.partition_point(|p| *p < point);
            self.points.insert(at, point);
        }
        id
    }

    /// Remove a shard. Only keys it owned move, each to the shard whose
    /// vnode follows the removed point. Panics if the id is not active
    /// or it is the last shard.
    pub fn remove_shard(&mut self, shard: usize) {
        assert!(self.shards.len() > 1, "cannot remove the last shard");
        let pos = self
            .shards
            .iter()
            .position(|s| *s == shard)
            .unwrap_or_else(|| panic!("shard {shard} not active"));
        self.shards.remove(pos);
        self.points.retain(|(_, s)| *s != shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("metric_family_{i}")).collect()
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(1);
        for k in keys(64) {
            assert_eq!(ring.owner(&k), 0);
        }
    }

    #[test]
    fn ownership_is_deterministic() {
        let a = HashRing::new(5);
        let b = HashRing::new(5);
        for k in keys(128) {
            assert_eq!(a.owner(&k), b.owner(&k));
        }
    }

    #[test]
    fn shard_ids_stay_stable_across_removal() {
        let mut ring = HashRing::new(3);
        ring.remove_shard(1);
        assert_eq!(ring.shards(), &[0, 2]);
        let id = ring.add_shard();
        assert_eq!(id, 3);
        assert_eq!(ring.shards(), &[0, 2, 3]);
        for k in keys(64) {
            assert!([0usize, 2, 3].contains(&ring.owner(&k)));
        }
    }

    proptest! {
        /// Satellite: key distribution stays within a balance bound for
        /// every cluster size from 1 to 16 nodes.
        #[test]
        fn balance_bound_holds_for_1_to_16_shards(shards in 1usize..17, salt in 0u64..1000) {
            let ring = HashRing::new(shards);
            let ks: Vec<String> = (0..1024).map(|i| format!("fam_{salt}_{i}")).collect();
            let mut counts = vec![0usize; ring.next_id];
            for k in &ks {
                counts[ring.owner(k)] += 1;
            }
            let mean = ks.len() as f64 / shards as f64;
            for (shard, count) in counts.iter().enumerate() {
                // 64 vnodes keeps the spread comfortably under 3x mean;
                // the +8 absorbs small-sample noise at 16 shards.
                prop_assert!(
                    (*count as f64) <= 3.0 * mean + 8.0,
                    "shard {shard} owns {count} of {} keys (mean {mean:.1})",
                    ks.len()
                );
            }
        }

        /// Satellite: adding one shard moves only keys that move TO the
        /// new shard (exact minimal movement), and the moved fraction is
        /// about 1/N of the keyspace.
        #[test]
        fn adding_a_shard_moves_about_one_nth_to_it(shards in 1usize..16, salt in 0u64..1000) {
            let ks: Vec<String> = (0..1024).map(|i| format!("fam_{salt}_{i}")).collect();
            let mut ring = HashRing::new(shards);
            let before: Vec<usize> = ks.iter().map(|k| ring.owner(k)).collect();
            let new_id = ring.add_shard();
            let mut moved = 0usize;
            for (k, old) in ks.iter().zip(&before) {
                let now = ring.owner(k);
                if now != *old {
                    prop_assert_eq!(now, new_id, "key {} moved to a shard other than the new one", k);
                    moved += 1;
                }
            }
            let expected = ks.len() as f64 / (shards + 1) as f64;
            prop_assert!(
                (moved as f64) <= 2.5 * expected + 16.0,
                "adding shard {new_id} moved {moved} keys, expected about {expected:.0}"
            );
            prop_assert!(moved > 0, "adding a shard captured no keys");
        }

        /// Satellite: removing one shard moves only the keys it owned.
        #[test]
        fn removing_a_shard_moves_only_its_keys(shards in 2usize..17, salt in 0u64..1000) {
            let ks: Vec<String> = (0..1024).map(|i| format!("fam_{salt}_{i}")).collect();
            let mut ring = HashRing::new(shards);
            let before: Vec<usize> = ks.iter().map(|k| ring.owner(k)).collect();
            let victim = shards / 2;
            ring.remove_shard(victim);
            for (k, old) in ks.iter().zip(&before) {
                let now = ring.owner(k);
                if *old == victim {
                    prop_assert_ne!(now, victim);
                } else {
                    prop_assert_eq!(now, *old, "key {} moved though its shard survived", k);
                }
            }
        }
    }
}

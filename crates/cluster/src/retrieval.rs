//! Scatter-gather document retrieval over ring-partitioned shards.
//!
//! The catalog corpus is partitioned across shards by the same
//! consistent-hash ring that places metric families, so a shard's
//! vector index covers exactly the docs for the metrics it stores.
//! The *embedder* is fit on the full corpus (it is metadata-plane
//! state, replicated everywhere) — otherwise per-shard IDF would skew
//! scores and break parity with a single-node index.
//!
//! A search fans out to every shard, takes each shard's local top-k,
//! and merges by `(score desc, global id asc)` — the same order a
//! single flat index over the whole corpus produces, because each
//! doc's score is independent of which shard holds it. The merged
//! top-k is therefore *exactly* the single-node top-k, which is what
//! keeps retrieval-dependent answers byte-stable across shard counts.

use crate::ring::HashRing;
use dio_catalog::DocSample;
use dio_embed::{Embedder, Vector};
use dio_vecstore::{DocIndex, FlatIndex};

/// One merged hit: the doc's position in the full corpus plus score.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedHit<'a> {
    /// Insertion-order id in the full (unsharded) corpus.
    pub global_id: usize,
    /// Cosine similarity to the query.
    pub score: f32,
    /// Which shard held the doc.
    pub shard: usize,
    /// The doc itself.
    pub doc: &'a DocSample,
}

/// Per-shard flat indexes over a ring-partitioned corpus.
#[derive(Debug)]
pub struct ShardedRetrieval {
    /// Indexed by shard id. Payload carries the global corpus id.
    shards: Vec<DocIndex<FlatIndex, (usize, DocSample)>>,
}

impl ShardedRetrieval {
    /// Partition `corpus` across the ring's shards. `embedder` must be
    /// fit on the full corpus. Ring shard ids must be dense (the
    /// cluster never removes shards).
    pub fn build(embedder: &Embedder, corpus: &[DocSample], ring: &HashRing) -> Self {
        let n = ring.shards().iter().copied().max().map_or(1, |m| m + 1);
        let mut shards: Vec<DocIndex<FlatIndex, (usize, DocSample)>> = (0..n)
            .map(|_| DocIndex::new(FlatIndex::new(embedder.dims())))
            .collect();
        for (gid, doc) in corpus.iter().enumerate() {
            let shard = ring.owner(&doc.name);
            shards[shard].add(embedder.embed(&doc.embedding_text()), (gid, doc.clone()));
        }
        ShardedRetrieval { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Docs held by `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Scatter the query to every shard, gather each local top-`k`,
    /// and merge to the global top-`k` by `(score desc, global id
    /// asc)` — identical to a single index over the full corpus.
    pub fn search(&self, query: &Vector, k: usize) -> Vec<ShardedHit<'_>> {
        let mut merged: Vec<ShardedHit<'_>> = Vec::new();
        for (shard, index) in self.shards.iter().enumerate() {
            for hit in index.search(query, k) {
                let (gid, doc) = hit.doc;
                merged.push(ShardedHit {
                    global_id: *gid,
                    score: hit.score,
                    shard,
                    doc,
                });
            }
        }
        merged.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.global_id.cmp(&b.global_id))
        });
        merged.truncate(k);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_embed::EmbedderConfig;

    fn corpus() -> Vec<DocSample> {
        let topics = [
            ("amf_registration_success_total", "AMF registration procedures that completed"),
            ("amf_registration_failure_total", "AMF registration procedures that failed"),
            ("smf_session_setup_seconds", "latency of SMF PDU session establishment"),
            ("upf_throughput_bytes", "user-plane bytes forwarded by the UPF"),
            ("ausf_auth_reject_total", "authentication rejections at the AUSF"),
            ("nrf_discovery_requests_total", "NF discovery requests served by the NRF"),
            ("pcf_policy_updates_total", "policy control updates pushed by the PCF"),
            ("udm_subscriber_fetch_seconds", "UDM subscriber data fetch latency"),
        ];
        topics
            .iter()
            .flat_map(|(name, text)| {
                (0..3).map(move |i| DocSample {
                    name: format!("{name}_{i}"),
                    text: format!("{text}, variant {i}"),
                })
            })
            .collect()
    }

    fn fit(corpus: &[DocSample]) -> Embedder {
        let texts: Vec<String> = corpus.iter().map(|d| d.embedding_text()).collect();
        Embedder::fit(&EmbedderConfig::generic(), texts.iter().map(|s| s.as_str()))
    }

    #[test]
    fn merged_topk_matches_single_index_exactly() {
        let corpus = corpus();
        let embedder = fit(&corpus);
        let mut single: DocIndex<FlatIndex, usize> = DocIndex::new(FlatIndex::new(embedder.dims()));
        for (gid, doc) in corpus.iter().enumerate() {
            single.add(embedder.embed(&doc.embedding_text()), gid);
        }
        for shards in [1usize, 2, 3, 4, 7] {
            let ring = HashRing::new(shards);
            let sharded = ShardedRetrieval::build(&embedder, &corpus, &ring);
            for query in [
                "registration failures at the AMF",
                "session setup latency",
                "authentication rejected",
                "user plane throughput",
            ] {
                let qv = embedder.embed(query);
                for k in [1usize, 3, 5, 10] {
                    let want: Vec<(usize, f32)> = single
                        .search(&qv, k)
                        .into_iter()
                        .map(|h| (*h.doc, h.score))
                        .collect();
                    let got: Vec<(usize, f32)> = sharded
                        .search(&qv, k)
                        .into_iter()
                        .map(|h| (h.global_id, h.score))
                        .collect();
                    assert_eq!(
                        got, want,
                        "scatter-gather top-{k} diverged from single index at {shards} shards for {query:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_doc_lands_on_exactly_one_shard() {
        let corpus = corpus();
        let embedder = fit(&corpus);
        let ring = HashRing::new(4);
        let sharded = ShardedRetrieval::build(&embedder, &corpus, &ring);
        let total: usize = (0..sharded.shard_count()).map(|s| sharded.shard_len(s)).sum();
        assert_eq!(total, corpus.len());
        assert!(
            (0..sharded.shard_count()).filter(|s| sharded.shard_len(*s) > 0).count() > 1,
            "partitioning put the whole corpus on one shard"
        );
    }
}

//! One copy of one shard: a metric store fed through a local WAL.
//!
//! Both the primary and the replica of a shard are a [`ShardCopy`].
//! Every append is framed into the copy's WAL first (the same
//! CRC-framed format as `dio_tsdb::wal`), then applied to the
//! published store, so the WAL is always a byte-accurate durable
//! transcript of the copy's state. Replication is WAL shipping: the
//! primary sends the replica the framed byte range it has not applied
//! yet, the replica CRC-validates the chunk and either applies it or
//! rejects the whole shipment (never a partial apply), and the primary
//! re-ships pristine bytes on rejection. Because framing is
//! deterministic, primary and replica WALs are byte-identical up to
//! the replica's applied offset — which is what lets a restarted node
//! catch up from any copy.

use dio_faults::{DataFaultKind, PlannedFault};
use dio_tsdb::wal::{recover, Wal, WalRecord, WalRecovery};
use dio_faults::MemMedium;
use dio_tsdb::series::AppendError;
use dio_tsdb::{Labels, MetricStore, Sample};
use std::sync::Arc;

/// Why a shipped chunk was rejected by the receiving copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipReject {
    /// A frame failed its CRC (bit flip in flight).
    CorruptFrame {
        /// How many frames failed.
        frames: usize,
    },
    /// The chunk ended mid-frame (torn tail in flight).
    TornTail,
    /// The chunk never arrived (transient link failure).
    Lost,
}

impl std::fmt::Display for ShipReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShipReject::CorruptFrame { frames } => {
                write!(f, "{frames} frame(s) failed CRC validation")
            }
            ShipReject::TornTail => write!(f, "chunk ended mid-frame"),
            ShipReject::Lost => write!(f, "chunk lost in transit"),
        }
    }
}

/// What applying a validated shipment did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShipApply {
    /// Records appended to this copy's WAL and store.
    pub applied: usize,
    /// Records the store rejected (out of order) — still WAL-logged, so
    /// primary and replica stay byte-identical and reject identically.
    pub rejected: usize,
}

/// One copy (primary or replica) of one shard.
#[derive(Debug)]
pub struct ShardCopy {
    store: Arc<MetricStore>,
    wal: Wal<MemMedium>,
    /// Byte offset of the end of each framed record, in append order.
    boundaries: Vec<usize>,
}

impl Default for ShardCopy {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardCopy {
    /// An empty copy.
    pub fn new() -> Self {
        ShardCopy {
            store: Arc::new(MetricStore::new()),
            wal: Wal::new(MemMedium::new()),
            boundaries: Vec::new(),
        }
    }

    /// The published store. Cheap `Arc` clone; readers keep evaluating
    /// against the snapshot they grabbed while writers move on.
    pub fn store(&self) -> Arc<MetricStore> {
        Arc::clone(&self.store)
    }

    /// Records in this copy's WAL (== records applied to the store,
    /// counting rejected appends, which are logged but not stored).
    pub fn records(&self) -> usize {
        self.boundaries.len()
    }

    /// Bytes currently in this copy's WAL.
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Newest sample timestamp in the store, for replication lag.
    pub fn last_timestamp(&self) -> Option<i64> {
        self.store.max_timestamp()
    }

    /// The raw WAL bytes — the durable transcript that survives a node
    /// crash.
    pub fn wal_bytes(&self) -> &[u8] {
        self.wal.medium().bytes()
    }

    /// The framed bytes of records `from_record..`, for shipping to a
    /// copy whose applied count is `from_record`.
    pub fn bytes_from(&self, from_record: usize) -> &[u8] {
        let start = if from_record == 0 {
            0
        } else {
            self.boundaries[from_record - 1]
        };
        &self.wal.medium().bytes()[start..]
    }

    /// Append one record locally: WAL frame first (the durability
    /// point), then apply to the published store. An `Err(AppendError)`
    /// means the store rejected the sample as out of order; the record
    /// stays in the WAL so every copy replays — and rejects — it
    /// identically.
    pub fn append_local(
        &mut self,
        labels: Labels,
        sample: Sample,
    ) -> std::io::Result<Result<(), AppendError>> {
        let record = WalRecord {
            labels: labels.clone(),
            sample,
        };
        self.wal.append(&record)?;
        self.boundaries.push(self.wal.len());
        Ok(Arc::make_mut(&mut self.store).append(labels, sample))
    }

    /// Validate and apply a shipped chunk. All-or-nothing: any CRC
    /// failure, torn tail, or unparsable payload rejects the whole
    /// shipment without touching this copy, so a damaged ship can never
    /// leave the replica silently diverged — the primary just re-ships.
    pub fn apply_shipped(&mut self, chunk: &[u8]) -> Result<ShipApply, ShipReject> {
        let scan = recover(chunk);
        if scan.corrupt_frames > 0 || scan.unparsable > 0 {
            return Err(ShipReject::CorruptFrame {
                frames: scan.corrupt_frames + scan.unparsable,
            });
        }
        if scan.truncated_tail {
            return Err(ShipReject::TornTail);
        }
        let mut out = ShipApply::default();
        for rec in scan.records {
            self.wal
                .append(&rec)
                .expect("in-memory WAL append cannot fail");
            self.boundaries.push(self.wal.len());
            match Arc::make_mut(&mut self.store).append(rec.labels, rec.sample) {
                Ok(()) => out.applied += 1,
                Err(_) => out.rejected += 1,
            }
        }
        Ok(out)
    }

    /// Rebuild a copy from the durable WAL bytes a crashed node left
    /// behind. Volatile state (the store) is reconstructed by replaying
    /// every intact record; a torn tail (kill mid-write) is cleanly
    /// truncated, so the rebuilt copy is the longest acknowledged
    /// prefix and catch-up from a surviving copy resumes at
    /// `records()`.
    pub fn recover_from_bytes(bytes: &[u8]) -> (Self, WalRecovery) {
        let recovery = recover(bytes);
        let mut copy = ShardCopy::new();
        for rec in &recovery.records {
            copy.wal
                .append(rec)
                .expect("in-memory WAL append cannot fail");
            copy.boundaries.push(copy.wal.len());
            let _ = Arc::make_mut(&mut copy.store).append(rec.labels.clone(), rec.sample);
        }
        (copy, recovery)
    }
}

/// Apply a planned link fault to a shipped chunk. Returns the bytes
/// the receiver sees, or `None` when the shipment is lost outright.
/// Deterministic in `(fault, chunk)` — the damage position comes from
/// the fault's pre-drawn `aux` entropy.
pub fn damage_chunk(fault: PlannedFault, chunk: &[u8]) -> Option<Vec<u8>> {
    match fault.kind {
        // A slow link still delivers intact bytes.
        DataFaultKind::LatencySpike => Some(chunk.to_vec()),
        DataFaultKind::TransientIo => None,
        DataFaultKind::TruncatedRead => {
            if chunk.is_empty() {
                return Some(Vec::new());
            }
            let cut = (fault.aux % chunk.len() as u64) as usize;
            Some(chunk[..cut].to_vec())
        }
        DataFaultKind::BitFlip => {
            if chunk.is_empty() {
                return Some(Vec::new());
            }
            let mut out = chunk.to_vec();
            let bit = fault.aux % (chunk.len() as u64 * 8);
            out[(bit / 8) as usize] ^= 1 << (bit % 8);
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_tsdb::labels::NAME_LABEL;

    fn rec(name: &str, i: usize) -> (Labels, Sample) {
        (
            Labels::from_pairs([(NAME_LABEL, name), ("instance", "smf-0")]),
            Sample::new(1_000 * (i as i64 + 1), i as f64),
        )
    }

    fn filled(n: usize) -> ShardCopy {
        let mut c = ShardCopy::new();
        for i in 0..n {
            let (l, s) = rec("auth_req", i);
            c.append_local(l, s).unwrap().unwrap();
        }
        c
    }

    #[test]
    fn ship_full_log_reproduces_store_and_wal_bytes() {
        let primary = filled(5);
        let mut replica = ShardCopy::new();
        let apply = replica.apply_shipped(primary.bytes_from(0)).unwrap();
        assert_eq!(apply, ShipApply { applied: 5, rejected: 0 });
        assert_eq!(replica.records(), 5);
        assert_eq!(replica.wal_bytes(), primary.wal_bytes());
        assert_eq!(replica.store().sample_count(), primary.store().sample_count());
    }

    #[test]
    fn incremental_catch_up_ships_only_the_gap() {
        let mut primary = filled(3);
        let mut replica = ShardCopy::new();
        replica.apply_shipped(primary.bytes_from(0)).unwrap();
        for i in 3..6 {
            let (l, s) = rec("auth_req", i);
            primary.append_local(l, s).unwrap().unwrap();
        }
        let gap = primary.bytes_from(replica.records());
        assert!(gap.len() < primary.wal_len());
        replica.apply_shipped(gap).unwrap();
        assert_eq!(replica.wal_bytes(), primary.wal_bytes());
    }

    #[test]
    fn bit_flip_in_flight_is_rejected_without_partial_apply() {
        let primary = filled(4);
        let mut replica = ShardCopy::new();
        let mut damaged = primary.bytes_from(0).to_vec();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x10;
        let err = replica.apply_shipped(&damaged).unwrap_err();
        assert!(matches!(err, ShipReject::CorruptFrame { .. }));
        assert_eq!(replica.records(), 0, "rejected shipment must not partially apply");
        // Pristine re-ship then succeeds and converges byte-for-byte.
        replica.apply_shipped(primary.bytes_from(0)).unwrap();
        assert_eq!(replica.wal_bytes(), primary.wal_bytes());
    }

    #[test]
    fn torn_tail_in_flight_is_rejected() {
        let primary = filled(2);
        let chunk = primary.bytes_from(0);
        let mut replica = ShardCopy::new();
        let err = replica.apply_shipped(&chunk[..chunk.len() - 3]).unwrap_err();
        assert_eq!(err, ShipReject::TornTail);
        assert_eq!(replica.records(), 0);
    }

    #[test]
    fn recover_from_torn_local_wal_keeps_acked_prefix() {
        let primary = filled(4);
        let bytes = primary.wal_bytes();
        // Kill mid-write of the 4th record: cut inside the last frame.
        let cut = primary.boundaries[2] + 4;
        let (copy, recovery) = ShardCopy::recover_from_bytes(&bytes[..cut]);
        assert_eq!(copy.records(), 3);
        assert!(recovery.truncated_tail);
        assert_eq!(recovery.corrupt_frames, 0);
        assert_eq!(copy.store().sample_count(), 3);
        // Catch-up from the survivor resumes exactly at the gap.
        let mut copy = copy;
        copy.apply_shipped(primary.bytes_from(copy.records())).unwrap();
        assert_eq!(copy.wal_bytes(), primary.wal_bytes());
    }

    #[test]
    fn damage_chunk_is_deterministic_and_detectable() {
        let primary = filled(3);
        let chunk = primary.bytes_from(0);
        for kind in [DataFaultKind::TruncatedRead, DataFaultKind::BitFlip] {
            let fault = PlannedFault { kind, aux: 7777 };
            let a = damage_chunk(fault, chunk).unwrap();
            let b = damage_chunk(fault, chunk).unwrap();
            assert_eq!(a, b);
            assert_ne!(a, chunk, "{kind:?} left the chunk intact");
            let mut replica = ShardCopy::new();
            assert!(replica.apply_shipped(&a).is_err(), "{kind:?} damage went undetected");
        }
        assert!(damage_chunk(
            PlannedFault { kind: DataFaultKind::TransientIo, aux: 0 },
            chunk
        )
        .is_none());
        assert_eq!(
            damage_chunk(PlannedFault { kind: DataFaultKind::LatencySpike, aux: 0 }, chunk)
                .as_deref(),
            Some(chunk)
        );
    }
}

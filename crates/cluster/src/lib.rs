//! # dio-cluster
//!
//! Sharded serving with replicated failover for the dio stack.
//!
//! A [`Cluster`] simulates N nodes in one process: metric families are
//! partitioned across shards by a consistent-hash [`HashRing`] (one
//! shard's primary per node, its replica on the next node), writes are
//! WAL-shipped from primary to replica with CRC validation and
//! re-shipping (ack only after the replica applied — zero
//! acknowledged-write loss through any single node crash), and reads
//! are routed by a scatter-gather resolver that either pushes a query
//! down to the single owning shard or gathers the named families into
//! a scratch store — producing the same results as a single-node
//! store.
//!
//! The cluster plugs into the existing stack through two seams:
//!
//! * `dio_sandbox::StoreResolver` — [`Cluster`] implements it, so a
//!   copilot with `attach_store_resolver(cluster)` evaluates PromQL
//!   against the sharded store with no other changes; resolution
//!   failures ride the sandbox's retryable storage-fault path.
//! * `dio_faults` — the replication link reuses the chaos injector
//!   (bit flips, torn chunks, lost shipments) and node kill/restart
//!   drills reuse [`dio_faults::CrashSchedule`].
//!
//! [`ShardedRetrieval`] applies the same partitioning to the document
//! corpus: per-shard flat indexes whose merged top-k is exactly the
//! single-index top-k.

#![warn(missing_docs)]

pub mod cluster;
pub mod retrieval;
pub mod ring;
pub mod shard;

pub use cluster::{AddNodeReport, AppendAck, Cluster, ClusterConfig, ClusterError, RejoinReport};
pub use retrieval::{ShardedHit, ShardedRetrieval};
pub use ring::HashRing;
pub use shard::{damage_chunk, ShardCopy, ShipApply, ShipReject};

#[cfg(test)]
mod assertions {
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn cluster_is_shareable_across_serving_workers() {
        assert_send_sync::<crate::Cluster>();
        assert_send_sync::<crate::ShardedRetrieval>();
    }
}

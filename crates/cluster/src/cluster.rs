//! The cluster: topology, appends, replication, failover, routing.
//!
//! A [`Cluster`] simulates N nodes in one process. Shard `i`'s primary
//! lives on node `i`; its replica on node `(i+1) % N` (no replica when
//! `N == 1`). Metric families are placed on shards by the consistent
//! hash ring, so every family's data lives on exactly one shard — the
//! invariant the scatter-gather router leans on for result parity with
//! a single-node store.
//!
//! **Write path.** An append routes by family to the owning shard's
//! primary, frames into the primary WAL (the durability point), then
//! synchronously ships the WAL gap to the replica. `Ok` is returned
//! only once the replica applied the chunk (or has no live replica —
//! the tolerated degraded window). Ack-implies-replicated is what
//! makes "zero acknowledged-write loss through one node crash" hold:
//! whichever copy survives has every acked record.
//!
//! **Failover.** Primary liveness is checked on access. A dead primary
//! promotes the replica after an integrity scan of its WAL; the old
//! primary's durable bytes stay around so a restart can rebuild the
//! copy, catch up the missing suffix from the promoted primary, and
//! rejoin as the new replica.
//!
//! **Read path.** [`Cluster`] implements `dio_sandbox::StoreResolver`:
//! queries naming families on one shard are pushed down (an `Arc`
//! clone of that shard's store), queries spanning shards gather the
//! named families into a scratch store, and dynamic selectors (regex /
//! name-pattern) gather every shard. Resolution failures surface as
//! retryable storage faults, riding the copilot's existing
//! retry-then-degrade machinery.

use crate::ring::HashRing;
use crate::shard::{damage_chunk, ShardCopy, ShipReject};
use dio_faults::{ChaosConfig, Injector};
use dio_obs::{Buckets, Counter, Gauge, Histogram, Registry, SpanContext, Tracer};
use dio_sandbox::StoreResolver;
use dio_tsdb::series::AppendError;
use dio_tsdb::{Labels, MetricStore, Sample};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cluster shape and replication behaviour.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node (== shard) count at construction.
    pub nodes: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Ship WALs to replicas. Forced off when `nodes == 1`.
    pub replication: bool,
    /// Chaos schedule for the replication link (bit flips, torn
    /// chunks, lost shipments). `None` = a clean link.
    pub link_chaos: Option<ChaosConfig>,
    /// Chaotic ship attempts per chunk before falling back to the
    /// reliable recovery channel (a retransmitting transport delivers
    /// eventually; this bounds how long we let chaos stall an ack).
    pub max_reships: usize,
}

impl ClusterConfig {
    /// `nodes` nodes, replication on (when more than one), clean link.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        ClusterConfig {
            nodes,
            vnodes: HashRing::DEFAULT_VNODES,
            replication: nodes > 1,
            link_chaos: None,
            max_reships: 4,
        }
    }

    /// Same, with a chaotic replication link.
    pub fn with_link_chaos(nodes: usize, chaos: ChaosConfig) -> Self {
        let mut c = Self::new(nodes);
        c.link_chaos = Some(chaos);
        c
    }
}

/// Errors from the write path.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The store rejected the sample (out of order). Matches
    /// single-node semantics; the record is WAL-logged on every copy.
    Rejected(AppendError),
    /// The shard has no live copy: primary down and no promotable
    /// replica. Retryable once a node restarts.
    Unavailable {
        /// The shard without a live primary.
        shard: usize,
    },
    /// A WAL medium failed.
    Io(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Rejected(e) => write!(f, "append rejected: {e}"),
            ClusterError::Unavailable { shard } => {
                write!(f, "shard {shard} unavailable: no live copy")
            }
            ClusterError::Io(e) => write!(f, "wal i/o: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A successful acknowledged append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendAck {
    /// The shard that owns the family.
    pub shard: usize,
    /// True when a live replica applied the record before the ack.
    /// False only in the degraded single-copy window.
    pub replicated: bool,
}

/// What restarting a node did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RejoinReport {
    /// Shard copies rebuilt from durable WAL bytes.
    pub recovered_copies: usize,
    /// WAL bytes replayed from the node's own durable media.
    pub replayed_wal_bytes: usize,
    /// Records caught up from the current primaries.
    pub caught_up_records: usize,
    /// Bytes shipped for catch-up.
    pub caught_up_bytes: usize,
    /// Shards where the node resumed as primary (it died unnoticed —
    /// nothing triggered a failover while it was down).
    pub resumed_primary: usize,
    /// Shards the node rejoined as replica.
    pub rejoined_replica: usize,
}

/// What adding a node did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddNodeReport {
    /// The new node's id (also its shard's primary seat).
    pub node: usize,
    /// The new shard's id.
    pub shard: usize,
    /// Metric families whose ownership moved to the new shard.
    pub moved_families: usize,
    /// Samples migrated into the new shard.
    pub moved_samples: usize,
}

/// Span name for one shard touched during store resolution. Attributes:
/// `shard` and `path` (`pushdown` | `gather` | `gather_all`); hedged
/// reads add `hedge` (`win` | `loss`).
pub const SHARD_READ_SPAN: &str = "shard_read";
/// Span name for the synchronous WAL shipment inside a traced append.
pub const WAL_SHIP_SPAN: &str = "wal_ship";

/// Rolling window of served read latencies the hedge delay derives
/// from.
const READ_LATENCY_WINDOW: usize = 256;
/// Served-latency samples required before hedging arms: a cold window
/// has no p99 worth trusting.
const HEDGE_MIN_SAMPLES: usize = 16;
/// Floor on the hedge-fire delay (µs), so a uniformly fast window
/// cannot make every read hedge.
const HEDGE_FLOOR_MICROS: u64 = 500;

const HELP_FAILOVERS: &str = "Replica promotions after a primary was found dead";
const HELP_LAG: &str = "Worst primary-to-replica applied-timestamp gap across shards (s)";
const HELP_LAG_HIST: &str = "Per-shard primary-to-replica applied-timestamp gap at each lag refresh (s)";
const HELP_REBALANCED: &str = "Metric families moved to a new shard by rebalancing";
const HELP_RESHIPS: &str = "Replication chunks re-sent after loss or CRC rejection";
const HELP_APPENDS: &str = "Acknowledged cluster appends";
const HELP_ROUTES: &str = "Query store resolutions by routing path";
const HELP_UNAVAILABLE: &str = "Operations refused because a shard had no live copy";
const HELP_HEDGE: &str =
    "Hedged shard reads by outcome: win (replica served), loss (primary served), cancelled (the losing read was abandoned first-wins)";

#[derive(Debug)]
struct ClusterMetrics {
    registry: Registry,
    failovers: Counter,
    lag: Gauge,
    lag_hist: Histogram,
    rebalanced: Counter,
    reships: Counter,
    appends: Counter,
    route_pushdown: Counter,
    route_gather: Counter,
    route_gather_all: Counter,
    unavailable: Counter,
    hedge_win: Counter,
    hedge_loss: Counter,
    hedge_cancelled: Counter,
}

impl ClusterMetrics {
    fn new(registry: Registry) -> Self {
        ClusterMetrics {
            failovers: registry.counter("dio_cluster_failovers_total", HELP_FAILOVERS),
            lag: registry.gauge("dio_cluster_replication_lag_worst_seconds", HELP_LAG),
            lag_hist: registry.histogram(
                "dio_cluster_replication_lag_seconds",
                HELP_LAG_HIST,
                &Buckets::exponential(0.001, 4.0, 10),
            ),
            rebalanced: registry.counter("dio_cluster_rebalanced_keys_total", HELP_REBALANCED),
            reships: registry.counter("dio_cluster_reships_total", HELP_RESHIPS),
            appends: registry.counter("dio_cluster_appends_total", HELP_APPENDS),
            route_pushdown: registry.counter_with(
                "dio_cluster_routes_total",
                HELP_ROUTES,
                &[("path", "pushdown")],
            ),
            route_gather: registry.counter_with(
                "dio_cluster_routes_total",
                HELP_ROUTES,
                &[("path", "gather")],
            ),
            route_gather_all: registry.counter_with(
                "dio_cluster_routes_total",
                HELP_ROUTES,
                &[("path", "gather_all")],
            ),
            unavailable: registry.counter("dio_cluster_unavailable_total", HELP_UNAVAILABLE),
            hedge_win: registry.counter_with(
                "dio_cluster_hedge_total",
                HELP_HEDGE,
                &[("outcome", "win")],
            ),
            hedge_loss: registry.counter_with(
                "dio_cluster_hedge_total",
                HELP_HEDGE,
                &[("outcome", "loss")],
            ),
            hedge_cancelled: registry.counter_with(
                "dio_cluster_hedge_total",
                HELP_HEDGE,
                &[("outcome", "cancelled")],
            ),
            registry,
        }
    }
}

#[derive(Debug)]
struct ShardState {
    primary_node: usize,
    replica_node: Option<usize>,
    /// Copies by hosting node. Dead nodes keep their entry — that is
    /// the durable media a restart recovers from.
    copies: BTreeMap<usize, ShardCopy>,
}

#[derive(Debug)]
struct Inner {
    ring: HashRing,
    /// Liveness by node id.
    up: Vec<bool>,
    /// By shard id (dense; the cluster never removes shards).
    shards: Vec<ShardState>,
    /// Chaos on the replication link.
    link: Option<Injector>,
    /// Detection-to-takeover times (µs), drained by the bench.
    failover_latencies: Vec<u64>,
    /// Simulated per-read latency by node (µs). Recorded, never slept:
    /// the hedging policy reasons about these virtual latencies
    /// deterministically.
    read_latency_micros: Vec<u64>,
    /// Rolling window of served read latencies (µs); its p99 sets the
    /// hedge-fire delay.
    read_latency_window: VecDeque<u64>,
    /// Total virtual read latency accounted so far (µs).
    injected_read_micros: u64,
}

/// A simulated shard-per-node cluster with WAL-shipping replication.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    inner: Mutex<Inner>,
    metrics: ClusterMetrics,
}

impl Cluster {
    /// Build a cluster with its own private metrics registry.
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::with_registry(cfg, Registry::new())
    }

    /// Build a cluster registering its metrics into `registry` (so a
    /// serving stack scrapes cluster health alongside everything else).
    pub fn with_registry(cfg: ClusterConfig, registry: Registry) -> Self {
        let n = cfg.nodes;
        let replication = cfg.replication && n > 1;
        let shards = (0..n)
            .map(|i| {
                let replica_node = replication.then_some((i + 1) % n);
                let mut copies = BTreeMap::new();
                copies.insert(i, ShardCopy::new());
                if let Some(r) = replica_node {
                    copies.insert(r, ShardCopy::new());
                }
                ShardState {
                    primary_node: i,
                    replica_node,
                    copies,
                }
            })
            .collect();
        let link = cfg.link_chaos.as_ref().map(|c| Injector::derived(c, "replication"));
        Cluster {
            inner: Mutex::new(Inner {
                ring: HashRing::with_vnodes(n, cfg.vnodes),
                up: vec![true; n],
                shards,
                link,
                failover_latencies: Vec::new(),
                read_latency_micros: vec![0; n],
                read_latency_window: VecDeque::new(),
                injected_read_micros: 0,
            }),
            metrics: ClusterMetrics::new(registry),
            cfg: ClusterConfig {
                replication,
                ..cfg
            },
        }
    }

    /// The metrics registry (cluster counters live here).
    pub fn registry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Current node count.
    pub fn nodes(&self) -> usize {
        self.inner.lock().unwrap().up.len()
    }

    /// Current shard count.
    pub fn shard_count(&self) -> usize {
        self.inner.lock().unwrap().shards.len()
    }

    /// Nodes currently down.
    pub fn down_nodes(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap();
        inner
            .up
            .iter()
            .enumerate()
            .filter_map(|(i, u)| (!u).then_some(i))
            .collect()
    }

    /// The node currently holding `shard`'s primary seat.
    pub fn primary_of(&self, shard: usize) -> usize {
        self.inner.lock().unwrap().shards[shard].primary_node
    }

    /// The node holding `shard`'s replica, if any.
    pub fn replica_of(&self, shard: usize) -> Option<usize> {
        self.inner.lock().unwrap().shards[shard].replica_node
    }

    /// The shard owning metric family `family`.
    pub fn shard_for(&self, family: &str) -> usize {
        self.inner.lock().unwrap().ring.owner(family)
    }

    /// The shard a tenant's requests home to (routing affinity: a
    /// tenant's dashboards mostly touch its own slice of the keyspace,
    /// so co-locating its cache/retrieval state with that shard keeps
    /// fan-out low). Same ring, namespaced key.
    pub fn tenant_home(&self, tenant: &str) -> usize {
        self.inner
            .lock()
            .unwrap()
            .ring
            .owner(&format!("tenant:{tenant}"))
    }

    /// Primary and replica WAL byte images for `shard` (tests use this
    /// to prove byte-level convergence).
    pub fn shard_wal_images(&self, shard: usize) -> (Vec<u8>, Option<Vec<u8>>) {
        let inner = self.inner.lock().unwrap();
        let s = &inner.shards[shard];
        let primary = s.copies[&s.primary_node].wal_bytes().to_vec();
        let replica = s
            .replica_node
            .map(|r| s.copies[&r].wal_bytes().to_vec());
        (primary, replica)
    }

    /// Acked records per shard on the current primaries.
    pub fn shard_records(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap();
        inner
            .shards
            .iter()
            .map(|s| s.copies[&s.primary_node].records())
            .collect()
    }

    /// Worst primary-to-replica applied-timestamp gap (seconds).
    pub fn replication_lag_seconds(&self) -> f64 {
        self.metrics.lag.value()
    }

    /// Failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.metrics.failovers.value() as u64
    }

    /// Replication chunks re-sent after damage or loss.
    pub fn reships(&self) -> u64 {
        self.metrics.reships.value() as u64
    }

    /// Drain recorded detection-to-takeover latencies (µs).
    pub fn take_failover_latencies(&self) -> Vec<u64> {
        std::mem::take(&mut self.inner.lock().unwrap().failover_latencies)
    }

    /// Set node `node`'s simulated per-read latency (µs). The latency
    /// is *recorded, never slept* — it feeds the hedging policy and the
    /// virtual-latency accounting deterministically. The drills use
    /// this to make one shard's primary pathologically slow.
    pub fn set_read_latency(&self, node: usize, micros: u64) {
        self.inner.lock().unwrap().read_latency_micros[node] = micros;
    }

    /// Total virtual read latency accounted so far (µs). Grows with
    /// every shard read by the latency of whichever copy served it.
    pub fn injected_read_latency_micros(&self) -> u64 {
        self.inner.lock().unwrap().injected_read_micros
    }

    /// Hedged-read outcomes so far: `(wins, losses, cancelled)`.
    /// `wins` counts reads the replica served first; `losses` reads
    /// where the primary still won after the hedge fired; `cancelled`
    /// every losing in-flight read abandoned first-wins.
    pub fn hedge_outcomes(&self) -> (u64, u64, u64) {
        (
            self.metrics.hedge_win.value() as u64,
            self.metrics.hedge_loss.value() as u64,
            self.metrics.hedge_cancelled.value() as u64,
        )
    }

    /// Load every series of a single-node store into the cluster
    /// (bulk path: local appends per shard, then one catch-up ship per
    /// shard). Returns the number of samples loaded.
    pub fn load_from(&self, source: &MetricStore) -> Result<usize, ClusterError> {
        let mut inner = self.inner.lock().unwrap();
        let mut loaded = 0usize;
        for series in source.iter() {
            let family = series.labels().name().unwrap_or("").to_string();
            let shard = inner.ring.owner(&family);
            self.ensure_primary(&mut inner, shard, None)
                .map_err(|e| self.note_unavailable(e))?;
            let primary = inner.shards[shard].primary_node;
            let copy = inner.shards[shard]
                .copies
                .get_mut(&primary)
                .expect("primary copy exists");
            for sample in series.samples() {
                copy.append_local(series.labels().clone(), sample)
                    .map_err(|e| ClusterError::Io(e.to_string()))?
                    .map_err(ClusterError::Rejected)?;
                loaded += 1;
            }
        }
        let shard_count = inner.shards.len();
        for shard in 0..shard_count {
            self.ship(&mut inner, shard)?;
        }
        self.metrics.appends.add(loaded as f64);
        self.update_lag(&inner);
        Ok(loaded)
    }

    /// Append one sample. `Ok` means the record is framed in the
    /// primary WAL *and* applied by a live replica (when one exists):
    /// the ack survives any single node crash.
    pub fn append(&self, labels: Labels, sample: Sample) -> Result<AppendAck, ClusterError> {
        self.append_traced(labels, sample, None)
    }

    /// [`Cluster::append`] with an optional trace context: the
    /// synchronous WAL shipment is recorded as a [`WAL_SHIP_SPAN`]
    /// child span, and a failover triggered by the append lands as a
    /// [`dio_obs::FAILOVER_SPAN`] on the same trace.
    pub fn append_traced(
        &self,
        labels: Labels,
        sample: Sample,
        trace: Option<(&Tracer, &SpanContext)>,
    ) -> Result<AppendAck, ClusterError> {
        let family = labels.name().unwrap_or("").to_string();
        let mut inner = self.inner.lock().unwrap();
        let shard = inner.ring.owner(&family);
        self.ensure_primary(&mut inner, shard, trace)
            .map_err(|e| self.note_unavailable(e))?;
        let primary = inner.shards[shard].primary_node;
        let copy = inner.shards[shard]
            .copies
            .get_mut(&primary)
            .expect("primary copy exists");
        let applied = copy
            .append_local(labels, sample)
            .map_err(|e| ClusterError::Io(e.to_string()))?;
        // Ship before surfacing a rejection: the rejected record is
        // WAL-logged and the replica must mirror it byte-for-byte.
        let ship_span = trace.map(|(tracer, parent)| {
            let ctx = tracer.child_of(parent);
            (tracer, ctx, tracer.clock_micros(&ctx), Instant::now())
        });
        let shipped = self.ship(&mut inner, shard);
        if let Some((tracer, ctx, start, t0)) = ship_span {
            tracer.record_span(
                &ctx,
                WAL_SHIP_SPAN,
                start,
                dio_obs::micros_u64(t0.elapsed()),
                &[
                    ("shard", &shard.to_string()),
                    (
                        "replicated",
                        match shipped {
                            Ok(true) => "true",
                            _ => "false",
                        },
                    ),
                ],
            );
        }
        let replicated = shipped?;
        self.update_lag(&inner);
        match applied {
            Ok(()) => {
                self.metrics.appends.inc();
                Ok(AppendAck { shard, replicated })
            }
            Err(e) => Err(ClusterError::Rejected(e)),
        }
    }

    /// Kill a node: it stops serving and loses volatile state. Its
    /// WAL bytes (durable media) survive for [`Cluster::restart_node`].
    /// Returns whether the node was up.
    pub fn kill_node(&self, node: usize) -> bool {
        let mut inner = self.inner.lock().unwrap();
        std::mem::replace(&mut inner.up[node], false)
    }

    /// Restart a dead node: rebuild every copy it hosts from durable
    /// WAL bytes (the volatile store is dropped and replayed — the
    /// crash-consistency path), catch up missing records from the
    /// current primaries over the reliable channel, and rejoin as
    /// replica wherever the shard lost one.
    pub fn restart_node(&self, node: usize) -> RejoinReport {
        let mut inner = self.inner.lock().unwrap();
        let mut report = RejoinReport::default();
        if std::mem::replace(&mut inner.up[node], true) {
            return report; // already up
        }
        for shard in 0..inner.shards.len() {
            if !inner.shards[shard].copies.contains_key(&node) {
                continue;
            }
            // Crash-consistent rebuild from the node's own durable log.
            let old = inner.shards[shard]
                .copies
                .get(&node)
                .expect("checked above");
            let bytes = old.wal_bytes().to_vec();
            let (rebuilt, _recovery) = ShardCopy::recover_from_bytes(&bytes);
            report.recovered_copies += 1;
            report.replayed_wal_bytes += bytes.len();
            inner.shards[shard].copies.insert(node, rebuilt);

            // If the shard's primary seat is dead, settle it first so
            // catch-up reads from a live log. Normally this promotes
            // the standing replica; if no other copy is live, the
            // restarting node itself takes over (best effort — under
            // a double failure its log may be the shorter one, which
            // is outside the single-failure tolerance).
            if self.ensure_primary(&mut inner, shard, None).is_err() {
                inner.shards[shard].primary_node = node;
                inner.shards[shard].replica_node = None;
                self.metrics.failovers.inc();
            }
            if inner.shards[shard].primary_node == node {
                // Either it died unnoticed (nothing routed here while
                // it was down, so it still holds the longest log) or
                // it just took the seat back as the only live copy.
                report.resumed_primary += 1;
                continue;
            }
            // Catch up the suffix it missed from the current primary,
            // then take (or retake) the replica seat.
            let primary = inner.shards[shard].primary_node;
            let from = inner.shards[shard].copies[&node].records();
            let chunk = inner.shards[shard].copies[&primary]
                .bytes_from(from)
                .to_vec();
            if !chunk.is_empty() {
                let copy = inner.shards[shard]
                    .copies
                    .get_mut(&node)
                    .expect("just inserted");
                let apply = copy
                    .apply_shipped(&chunk)
                    .expect("reliable catch-up channel delivers pristine bytes");
                report.caught_up_records += apply.applied + apply.rejected;
                report.caught_up_bytes += chunk.len();
            }
            if inner.shards[shard].replica_node.is_none() {
                inner.shards[shard].replica_node = Some(node);
            }
            report.rejoined_replica += 1;
        }
        self.update_lag(&inner);
        report
    }

    /// Add a node (and its shard): extend the ring, migrate the
    /// families the new shard now owns, rebuild the shrunken source
    /// copies, and stand up a replica for the new shard.
    pub fn add_node(&self) -> AddNodeReport {
        let mut inner = self.inner.lock().unwrap();
        let shard = inner.ring.add_shard();
        let node = inner.up.len();
        inner.up.push(true);
        inner.read_latency_micros.push(0);
        let replication = self.cfg.replication || inner.up.len() > 1;
        let mut copies = BTreeMap::new();
        copies.insert(node, ShardCopy::new());
        inner.shards.push(ShardState {
            primary_node: node,
            replica_node: None,
            copies,
        });

        let mut moved_families = 0usize;
        let mut moved_samples = 0usize;
        for src in 0..shard {
            self.ensure_primary(&mut inner, src, None).ok();
            let src_primary = inner.shards[src].primary_node;
            // Split the source store: series staying vs. series moving.
            let (stay, go): (Vec<_>, Vec<_>) = {
                let store = inner.shards[src].copies[&src_primary].store();
                let mut stay = Vec::new();
                let mut go = Vec::new();
                for series in store.iter() {
                    let family = series.labels().name().unwrap_or("");
                    if inner.ring.owner(family) == shard {
                        go.push((series.labels().clone(), series.samples().to_vec()));
                    } else {
                        stay.push((series.labels().clone(), series.samples().to_vec()));
                    }
                }
                (stay, go)
            };
            if go.is_empty() {
                continue;
            }
            let mut families: Vec<&str> =
                go.iter().filter_map(|(l, _)| l.name()).collect();
            families.sort_unstable();
            families.dedup();
            moved_families += families.len();

            // Append moved series into the new shard's primary.
            let dest = inner.shards[shard]
                .copies
                .get_mut(&node)
                .expect("new primary exists");
            for (labels, samples) in &go {
                for s in samples {
                    let _ = dest
                        .append_local(labels.clone(), *s)
                        .expect("in-memory WAL append cannot fail");
                    moved_samples += 1;
                }
            }
            // Rebuild the source primary without the moved families
            // (checkpoint semantics: fresh WAL of exactly what stays).
            let mut rebuilt = ShardCopy::new();
            for (labels, samples) in &stay {
                for s in samples {
                    let _ = rebuilt
                        .append_local(labels.clone(), *s)
                        .expect("in-memory WAL append cannot fail");
                }
            }
            inner.shards[src].copies.insert(src_primary, rebuilt);
            // The old replica's WAL no longer matches; re-seed it from
            // the rebuilt primary over the reliable channel.
            if let Some(r) = inner.shards[src].replica_node {
                let image = inner.shards[src].copies[&src_primary]
                    .bytes_from(0)
                    .to_vec();
                let mut fresh = ShardCopy::new();
                if !image.is_empty() {
                    fresh
                        .apply_shipped(&image)
                        .expect("reliable re-seed delivers pristine bytes");
                }
                inner.shards[src].copies.insert(r, fresh);
            }
        }

        // Stand up the new shard's replica on the next node.
        if replication {
            let r = (node + 1) % inner.up.len();
            let image = inner.shards[shard].copies[&node].bytes_from(0).to_vec();
            let mut fresh = ShardCopy::new();
            if !image.is_empty() {
                fresh
                    .apply_shipped(&image)
                    .expect("reliable re-seed delivers pristine bytes");
            }
            inner.shards[shard].copies.insert(r, fresh);
            inner.shards[shard].replica_node = Some(r);
        }

        self.metrics.rebalanced.add(moved_families as f64);
        self.update_lag(&inner);
        AddNodeReport {
            node,
            shard,
            moved_families,
            moved_samples,
        }
    }

    fn note_unavailable(&self, e: ClusterError) -> ClusterError {
        self.metrics.unavailable.inc();
        e
    }

    /// Make sure `shard` has a live primary, promoting the replica if
    /// the primary is dead (failure detection happens on access). When
    /// a trace context rides along, the promotion is recorded as a
    /// [`dio_obs::FAILOVER_SPAN`] child span covering detection to
    /// takeover — the flight recorder keys on that span to retain the
    /// trace that paid for the failover.
    fn ensure_primary(
        &self,
        inner: &mut Inner,
        shard: usize,
        trace: Option<(&Tracer, &SpanContext)>,
    ) -> Result<(), ClusterError> {
        let primary = inner.shards[shard].primary_node;
        if inner.up[primary] {
            return Ok(());
        }
        let detected = Instant::now();
        let detect_offset = trace.map(|(t, ctx)| t.clock_micros(ctx)).unwrap_or(0);
        let Some(replica) = inner.shards[shard].replica_node.filter(|r| inner.up[*r]) else {
            return Err(ClusterError::Unavailable { shard });
        };
        // Takeover: verify the replica's log integrity before serving
        // from it (a real promotion replays/validates its WAL).
        let scan = dio_tsdb::wal::recover(inner.shards[shard].copies[&replica].wal_bytes());
        debug_assert!(
            scan.is_clean(),
            "replica WAL must be clean: replication never applies damaged chunks"
        );
        inner.shards[shard].primary_node = replica;
        inner.shards[shard].replica_node = None;
        self.metrics.failovers.inc();
        let micros = detected.elapsed().as_micros() as u64;
        inner.failover_latencies.push(micros);
        if let Some((tracer, ctx)) = trace {
            let child = tracer.child_of(ctx);
            tracer.record_span(
                &child,
                dio_obs::FAILOVER_SPAN,
                detect_offset,
                micros,
                &[
                    ("shard", &shard.to_string()),
                    ("from_node", &primary.to_string()),
                    ("to_node", &replica.to_string()),
                ],
            );
        }
        Ok(())
    }

    /// Ship the primary's unreplicated WAL suffix to the replica.
    /// Damaged or lost chunks are re-sent (bounded chaotic attempts,
    /// then the reliable recovery channel). Returns whether a live
    /// replica holds everything.
    fn ship(&self, inner: &mut Inner, shard: usize) -> Result<bool, ClusterError> {
        if !self.cfg.replication {
            return Ok(false);
        }
        let Some(replica) = inner.shards[shard].replica_node else {
            return Ok(false);
        };
        if !inner.up[replica] {
            return Ok(false); // degraded window: ack on primary alone
        }
        let primary = inner.shards[shard].primary_node;
        let mut attempts = 0usize;
        loop {
            let from = inner.shards[shard].copies[&replica].records();
            let chunk = {
                let p = &inner.shards[shard].copies[&primary];
                if from >= p.records() {
                    return Ok(true);
                }
                p.bytes_from(from).to_vec()
            };
            // Pass the chunk through the (possibly chaotic) link.
            let delivered = if attempts < self.cfg.max_reships {
                match inner.link.as_mut().and_then(|l| l.decide()) {
                    Some(fault) => damage_chunk(fault, &chunk),
                    None => Some(chunk.clone()),
                }
            } else {
                Some(chunk.clone()) // reliable recovery channel
            };
            let outcome = match delivered {
                None => Err(ShipReject::Lost),
                Some(bytes) => inner.shards[shard]
                    .copies
                    .get_mut(&replica)
                    .expect("replica copy exists")
                    .apply_shipped(&bytes),
            };
            match outcome {
                Ok(_) => continue, // loop re-checks the gap and returns
                Err(_reject) => {
                    attempts += 1;
                    self.metrics.reships.inc();
                }
            }
        }
    }

    /// Refresh the worst-shard replication lag gauge and feed each
    /// shard's current gap into the lag distribution histogram.
    fn update_lag(&self, inner: &Inner) {
        let mut worst = 0.0f64;
        for s in &inner.shards {
            let Some(r) = s.replica_node else { continue };
            let p_ts = s.copies[&s.primary_node].last_timestamp().unwrap_or(0);
            let r_ts = s.copies[&r].last_timestamp().unwrap_or(0);
            let lag = (p_ts - r_ts).max(0) as f64 / 1_000.0;
            self.metrics.lag_hist.observe(lag);
            worst = worst.max(lag);
        }
        self.metrics.lag.set(worst);
    }

    /// Gather the named families (in order) from their owning shards
    /// into a scratch store. Caller already ensured primaries are live
    /// and passed the stores out of the lock.
    fn merge_families(
        families: &[String],
        stores: &[(usize, Arc<MetricStore>)],
    ) -> MetricStore {
        let mut merged = MetricStore::new();
        for family in families {
            for (_, store) in stores {
                for series in store.series_for(family) {
                    // Sealed chunks move compressed — no decode on the
                    // gather path; overlapping replicas merge per
                    // sample with duplicates skipped.
                    let _ = merged.adopt_series(series.clone());
                }
            }
        }
        merged
    }
}

impl Cluster {
    /// Hedge-fire delay (µs): the p99 of the rolling served-latency
    /// window, floored at [`HEDGE_FLOOR_MICROS`]. `None` until the
    /// window holds [`HEDGE_MIN_SAMPLES`] observations — hedging stays
    /// off while cold so a handful of early reads cannot set the bar.
    fn hedge_delay(inner: &Inner) -> Option<u64> {
        let n = inner.read_latency_window.len();
        if n < HEDGE_MIN_SAMPLES {
            return None;
        }
        let mut v: Vec<u64> = inner.read_latency_window.iter().copied().collect();
        v.sort_unstable();
        Some(v[(n - 1) * 99 / 100].max(HEDGE_FLOOR_MICROS))
    }

    /// Feed one served read latency into the rolling window, bounded at
    /// [`READ_LATENCY_WINDOW`] observations.
    fn note_read_latency(inner: &mut Inner, micros: u64) {
        if inner.read_latency_window.len() == READ_LATENCY_WINDOW {
            inner.read_latency_window.pop_front();
        }
        inner.read_latency_window.push_back(micros);
    }

    /// Touch `shard` under a per-shard [`SHARD_READ_SPAN`]: ensure a
    /// live primary (recording any promotion on the trace) and hand out
    /// a store. The span covers detection/promotion plus the store
    /// fetch and is tagged with the routing path.
    ///
    /// When the primary's virtual latency exceeds the rolling-p99
    /// hedge delay and a live replica exists, a hedged read fires: the
    /// replica copy starts `delay` µs behind the primary, the first
    /// CRC-clean, fully-replicated response wins, and the loser is
    /// cancelled (abandoned first-wins, its bytes never merged). All
    /// latencies are *recorded, never slept* — the virtual completion
    /// times decide the winner deterministically.
    fn read_shard(
        &self,
        inner: &mut Inner,
        shard: usize,
        path: &str,
        trace: Option<(&Tracer, &SpanContext)>,
    ) -> Result<Arc<MetricStore>, String> {
        let span = trace.map(|(tracer, parent)| {
            let ctx = tracer.child_of(parent);
            (tracer, ctx, tracer.clock_micros(&ctx), Instant::now())
        });
        let ensured = self
            .ensure_primary(inner, shard, span.as_ref().map(|(t, ctx, _, _)| (*t, ctx)))
            .map_err(|e| self.note_unavailable(e).to_string());
        let mut hedge: Option<&'static str> = None;
        let mut serving: Option<usize> = None;
        if ensured.is_ok() {
            let p = inner.shards[shard].primary_node;
            let lat_p = inner.read_latency_micros[p];
            let mut chosen = (p, lat_p);
            if let Some(delay) = Self::hedge_delay(inner) {
                if lat_p > delay {
                    let live_replica =
                        inner.shards[shard].replica_node.filter(|r| inner.up[*r]);
                    if let Some(r) = live_replica {
                        // The replica starts `delay` after the primary.
                        let lat_r = delay + inner.read_latency_micros[r];
                        // Serve the replica only when its image is
                        // CRC-clean AND caught up to the primary —
                        // byte-identical by construction, so a hedge
                        // win can never diverge from the unhedged read.
                        let caught_up = inner.shards[shard].copies[&r].records()
                            == inner.shards[shard].copies[&p].records();
                        let clean = caught_up
                            && dio_tsdb::wal::recover(
                                inner.shards[shard].copies[&r].wal_bytes(),
                            )
                            .is_clean();
                        if clean && lat_r < lat_p {
                            self.metrics.hedge_win.inc();
                            hedge = Some("win");
                            chosen = (r, lat_r);
                        } else {
                            self.metrics.hedge_loss.inc();
                            hedge = Some("loss");
                        }
                        // Either way one in-flight read was abandoned.
                        self.metrics.hedge_cancelled.inc();
                    }
                }
            }
            inner.injected_read_micros += chosen.1;
            Self::note_read_latency(inner, chosen.1);
            serving = Some(chosen.0);
        }
        if let Some((tracer, ctx, start, t0)) = span {
            let shard_s = shard.to_string();
            let mut attrs: Vec<(&str, &str)> = vec![("shard", &shard_s), ("path", path)];
            if let Some(outcome) = hedge {
                attrs.push(("hedge", outcome));
            }
            tracer.record_span(
                &ctx,
                SHARD_READ_SPAN,
                start,
                dio_obs::micros_u64(t0.elapsed()),
                &attrs,
            );
        }
        ensured?;
        let node = serving.expect("live primary implies a serving copy was chosen");
        Ok(inner.shards[shard].copies[&node].store())
    }
}

impl StoreResolver for Cluster {
    /// Resolve the store a query should evaluate against. Dead
    /// primaries fail over here — detection-on-access — so a query
    /// arriving mid-crash either lands on the promoted replica or
    /// surfaces a retryable storage fault.
    fn resolve(&self, families: &[String], dynamic: bool) -> Result<Arc<MetricStore>, String> {
        self.resolve_traced(families, dynamic, None)
    }

    /// [`StoreResolver::resolve`] with an optional trace context: each
    /// shard touched is recorded as a [`SHARD_READ_SPAN`] child span
    /// tagged `path=pushdown|gather|gather_all`, and any promotion the
    /// resolution triggered lands as a [`dio_obs::FAILOVER_SPAN`].
    fn resolve_traced(
        &self,
        families: &[String],
        dynamic: bool,
        trace: Option<(&Tracer, &SpanContext)>,
    ) -> Result<Arc<MetricStore>, String> {
        let mut inner = self.inner.lock().unwrap();
        if dynamic || families.is_empty() {
            // Name-pattern selectors need the full keyspace.
            let shard_count = inner.shards.len();
            let mut stores = Vec::with_capacity(shard_count);
            for shard in 0..shard_count {
                stores.push(self.read_shard(&mut inner, shard, "gather_all", trace)?);
            }
            drop(inner);
            self.metrics.route_gather_all.inc();
            let mut merged = MetricStore::new();
            for store in stores {
                for series in store.iter() {
                    let _ = merged.adopt_series(series.clone());
                }
            }
            return Ok(Arc::new(merged));
        }

        // Owning shards, first-occurrence order.
        let mut shards: Vec<usize> = Vec::new();
        for family in families {
            let s = inner.ring.owner(family);
            if !shards.contains(&s) {
                shards.push(s);
            }
        }
        let path = if shards.len() == 1 { "pushdown" } else { "gather" };
        let mut stores = Vec::with_capacity(shards.len());
        for &shard in &shards {
            stores.push((shard, self.read_shard(&mut inner, shard, path, trace)?));
        }
        drop(inner);

        if let [(_, store)] = stores.as_slice() {
            // Single owner: push the query down to the shard's own
            // store. It holds a superset of the named families, but
            // evaluation only touches the names in the query.
            self.metrics.route_pushdown.inc();
            return Ok(Arc::clone(store));
        }
        self.metrics.route_gather.inc();
        Ok(Arc::new(Self::merge_families(families, &stores)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_tsdb::labels::NAME_LABEL;

    fn labels(name: &str, inst: &str) -> Labels {
        Labels::from_pairs([(NAME_LABEL, name), ("instance", inst)])
    }

    fn seed_store(families: &[&str], samples: usize) -> MetricStore {
        let mut store = MetricStore::new();
        for (fi, f) in families.iter().enumerate() {
            for i in 0..samples {
                store
                    .append(
                        labels(f, "amf-0"),
                        Sample::new(1_000 * (i as i64 + 1), (fi * 100 + i) as f64),
                    )
                    .unwrap();
            }
        }
        store
    }

    const FAMILIES: [&str; 6] = [
        "amf_registration_total",
        "smf_session_setup_seconds",
        "upf_throughput_bytes",
        "ausf_auth_reject_total",
        "nrf_discovery_requests_total",
        "pcf_policy_updates_total",
    ];

    #[test]
    fn load_partitions_and_replicates_every_family() {
        let source = seed_store(&FAMILIES, 10);
        let cluster = Cluster::new(ClusterConfig::new(3));
        let loaded = cluster.load_from(&source).unwrap();
        assert_eq!(loaded, 60);
        let records = cluster.shard_records();
        assert_eq!(records.iter().sum::<usize>(), 60);
        for shard in 0..cluster.shard_count() {
            let (p, r) = cluster.shard_wal_images(shard);
            assert_eq!(Some(p), r, "shard {shard} replica diverged after load");
        }
        assert_eq!(cluster.replication_lag_seconds(), 0.0);
    }

    #[test]
    fn acked_appends_survive_primary_kill() {
        let cluster = Cluster::new(ClusterConfig::new(3));
        let mut acked: Vec<(String, i64, f64)> = Vec::new();
        for i in 0..40i64 {
            let f = FAMILIES[(i % 6) as usize];
            let ack = cluster
                .append(labels(f, "smf-1"), Sample::new(1_000 * (i / 6 + 1), i as f64))
                .unwrap();
            assert!(ack.replicated);
            acked.push((f.to_string(), 1_000 * (i / 6 + 1), i as f64));
        }
        // Kill every node in turn (restarting in between): after each
        // failover the resolver must still see every acked sample.
        for victim in 0..3 {
            cluster.kill_node(victim);
            for (f, ts, v) in &acked {
                let store = cluster.resolve(std::slice::from_ref(f), false).unwrap();
                let found = store
                    .series_for(f)
                    .iter()
                    .flat_map(|s| s.samples())
                    .any(|s| s.timestamp_ms == *ts && s.value == *v);
                assert!(found, "acked sample {f}@{ts} lost after killing node {victim}");
            }
            cluster.restart_node(victim);
        }
        assert!(cluster.failovers() > 0, "kills never triggered a failover");
    }

    #[test]
    fn unavailable_shard_surfaces_retryable_error() {
        let cluster = Cluster::new(ClusterConfig::new(2));
        cluster
            .append(labels("amf_registration_total", "a"), Sample::new(1_000, 1.0))
            .unwrap();
        let shard = cluster.shard_for("amf_registration_total");
        let primary = cluster.primary_of(shard);
        let replica = cluster.replica_of(shard).unwrap();
        cluster.kill_node(primary);
        cluster.kill_node(replica);
        let err = cluster
            .append(labels("amf_registration_total", "a"), Sample::new(2_000, 2.0))
            .unwrap_err();
        assert_eq!(err, ClusterError::Unavailable { shard });
        assert!(cluster
            .resolve(&["amf_registration_total".into()], false)
            .is_err());
        // Restarting either copy restores service.
        cluster.restart_node(primary);
        cluster
            .append(labels("amf_registration_total", "a"), Sample::new(3_000, 3.0))
            .unwrap();
    }

    #[test]
    fn restart_rejoins_as_replica_and_catches_up() {
        let cluster = Cluster::new(ClusterConfig::new(2));
        let f = "amf_registration_total";
        let shard = cluster.shard_for(f);
        for i in 0..5i64 {
            cluster.append(labels(f, "a"), Sample::new(1_000 * (i + 1), i as f64)).unwrap();
        }
        let old_primary = cluster.primary_of(shard);
        cluster.kill_node(old_primary);
        // Writes continue on the promoted replica, unreplicated.
        for i in 5..10i64 {
            let ack = cluster.append(labels(f, "a"), Sample::new(1_000 * (i + 1), i as f64)).unwrap();
            assert!(!ack.replicated, "no live replica during the degraded window");
        }
        assert!(cluster.replication_lag_seconds() > 0.0 || cluster.replica_of(shard).is_none());
        let report = cluster.restart_node(old_primary);
        assert!(report.recovered_copies > 0);
        assert!(report.replayed_wal_bytes > 0, "rejoin must replay durable WAL bytes");
        assert!(report.caught_up_records >= 5, "rejoin must catch up the missed suffix");
        assert_eq!(cluster.replica_of(shard), Some(old_primary));
        let (p, r) = cluster.shard_wal_images(shard);
        assert_eq!(Some(p), r, "rejoined replica must converge byte-for-byte");
        // Fail back: kill the current primary; the rejoined replica
        // serves every acked sample.
        cluster.kill_node(cluster.primary_of(shard));
        let store = cluster.resolve(&[f.to_string()], false).unwrap();
        let total: usize = store.series_for(f).iter().map(|s| s.samples().len()).sum();
        assert_eq!(total, 10, "rejoined replica is missing acked samples");
    }

    #[test]
    fn chaotic_link_reships_until_converged_never_diverges() {
        let chaos = ChaosConfig::with_probability(77, 0.6);
        let cluster = Cluster::new(ClusterConfig::with_link_chaos(2, chaos));
        for i in 0..60i64 {
            let f = FAMILIES[(i % 6) as usize];
            let ack = cluster
                .append(labels(f, "upf-2"), Sample::new(1_000 * (i / 6 + 1), i as f64))
                .unwrap();
            assert!(ack.replicated, "append acked without replica apply");
        }
        assert!(cluster.reships() > 0, "p=0.6 link chaos caused no reships");
        for shard in 0..cluster.shard_count() {
            let (p, r) = cluster.shard_wal_images(shard);
            assert_eq!(Some(p), r, "shard {shard} diverged under link chaos");
        }
    }

    #[test]
    fn add_node_moves_about_one_nth_and_keeps_all_samples() {
        let source = seed_store(&FAMILIES, 8);
        let cluster = Cluster::new(ClusterConfig::new(2));
        cluster.load_from(&source).unwrap();
        let before: usize = cluster.shard_records().iter().sum();
        let report = cluster.add_node();
        assert_eq!(report.shard, 2);
        assert_eq!(report.node, 2);
        // Whether families moved depends on the ring; either way no
        // sample may be lost and replicas must converge.
        let after: usize = cluster.shard_records().iter().sum();
        assert_eq!(after, before);
        for f in FAMILIES {
            let store = cluster.resolve(&[f.to_string()], false).unwrap();
            let total: usize = store.series_for(f).iter().map(|s| s.samples().len()).sum();
            assert_eq!(total, 8, "family {f} lost samples in rebalancing");
        }
        for shard in 0..cluster.shard_count() {
            let (p, r) = cluster.shard_wal_images(shard);
            assert_eq!(Some(p), r, "shard {shard} replica diverged after add_node");
        }
    }

    #[test]
    fn resolver_routes_pushdown_gather_and_gather_all() {
        let source = seed_store(&FAMILIES, 4);
        let cluster = Cluster::new(ClusterConfig::new(3));
        cluster.load_from(&source).unwrap();
        // Pushdown: one family.
        let one = cluster.resolve(&[FAMILIES[0].to_string()], false).unwrap();
        assert!(one.has_metric(FAMILIES[0]));
        // Gather: two families on (very likely) different shards —
        // find a pair with distinct owners.
        let pair: Vec<String> = {
            let s0 = cluster.shard_for(FAMILIES[0]);
            match FAMILIES.iter().find(|f| cluster.shard_for(f) != s0) {
                Some(f) => vec![FAMILIES[0].to_string(), f.to_string()],
                None => vec![FAMILIES[0].to_string()],
            }
        };
        let gathered = cluster.resolve(&pair, false).unwrap();
        for f in &pair {
            let total: usize = gathered.series_for(f).iter().map(|s| s.samples().len()).sum();
            assert_eq!(total, 4, "gather dropped samples of {f}");
        }
        // Gather-all: dynamic selector sees the whole keyspace.
        let all = cluster.resolve(&[], true).unwrap();
        assert_eq!(all.sample_count(), source.sample_count());
        let snap = cluster.registry().snapshot();
        assert!(snap.total("dio_cluster_routes_total") >= 3.0);
    }

    #[test]
    fn traced_resolve_records_shard_reads_and_failover_span() {
        let source = seed_store(&FAMILIES, 4);
        let cluster = Cluster::new(ClusterConfig::new(3));
        cluster.load_from(&source).unwrap();
        let tracer = Tracer::new();

        // Healthy gather-all: one shard_read span per shard, no
        // failover span.
        let root = tracer.begin_trace("gather all");
        cluster.resolve_traced(&[], true, Some((&tracer, &root))).unwrap();
        tracer.finish_trace(&root, dio_obs::TraceStatus::Ok);
        let rec = tracer.trace(root.trace_id).unwrap();
        let reads: Vec<_> = rec.spans.iter().filter(|s| s.name == SHARD_READ_SPAN).collect();
        assert_eq!(reads.len(), cluster.shard_count());
        assert!(reads.iter().all(|s| s.attr("path") == Some("gather_all")));
        assert!(!rec.has_span(dio_obs::FAILOVER_SPAN));
        assert_eq!(rec.orphan_count(), 0, "every span must hang off the root");

        // Kill a primary: the next traced pushdown pays for the
        // promotion and the span lands on that trace, parented under
        // its shard_read.
        let f = FAMILIES[0];
        let shard = cluster.shard_for(f);
        cluster.kill_node(cluster.primary_of(shard));
        let root = tracer.begin_trace("failover read");
        cluster
            .resolve_traced(&[f.to_string()], false, Some((&tracer, &root)))
            .unwrap();
        tracer.finish_trace(&root, dio_obs::TraceStatus::Ok);
        let rec = tracer.trace(root.trace_id).unwrap();
        let promo = rec
            .spans
            .iter()
            .find(|s| s.name == dio_obs::FAILOVER_SPAN)
            .expect("promotion must be recorded as a span");
        assert_eq!(promo.attr("shard"), Some(shard.to_string()).as_deref());
        let read = rec
            .spans
            .iter()
            .find(|s| s.name == SHARD_READ_SPAN)
            .expect("shard_read span present");
        assert_eq!(promo.parent_span_id, Some(read.span_id));
        assert_eq!(read.attr("path"), Some("pushdown"));
        assert_eq!(rec.orphan_count(), 0);

        // The lag histogram (satellite: proper histogram under the old
        // gauge's name) saw per-shard observations during load/append.
        let snap = cluster.registry().snapshot();
        let fam = snap.family("dio_cluster_replication_lag_seconds").unwrap();
        let dio_obs::SeriesValue::Histogram(h) = &fam.series[0].value else {
            panic!("replication lag must now be a histogram");
        };
        assert!(h.count > 0, "update_lag never fed the histogram");
        assert!(
            snap.family("dio_cluster_replication_lag_worst_seconds").is_some(),
            "worst-lag gauge keeps the old reading under a new name"
        );
    }

    #[test]
    fn hedged_read_serves_replica_when_primary_is_slow() {
        let source = seed_store(&FAMILIES, 4);
        let cluster = Cluster::new(ClusterConfig::new(2));
        cluster.load_from(&source).unwrap();
        let f = FAMILIES[0];
        let shard = cluster.shard_for(f);

        // Cold window: no hedging regardless of latency skew.
        cluster.set_read_latency(cluster.primary_of(shard), 50_000);
        let baseline = cluster.resolve(&[f.to_string()], false).unwrap();
        assert_eq!(cluster.hedge_outcomes(), (0, 0, 0), "cold window must not hedge");
        cluster.set_read_latency(cluster.primary_of(shard), 0);

        // Warm the window with fast reads so the p99 delay settles at
        // the floor.
        for _ in 0..20 {
            cluster.resolve(&[f.to_string()], false).unwrap();
        }

        // Slow primary: the hedge fires after the p99 delay and the
        // byte-identical replica wins the race.
        cluster.set_read_latency(cluster.primary_of(shard), 50_000);
        let before_virtual = cluster.injected_read_latency_micros();
        let tracer = Tracer::new();
        let root = tracer.begin_trace("hedged read");
        let hedged = cluster
            .resolve_traced(&[f.to_string()], false, Some((&tracer, &root)))
            .unwrap();
        tracer.finish_trace(&root, dio_obs::TraceStatus::Ok);
        let (wins, _losses, cancelled) = cluster.hedge_outcomes();
        assert!(wins >= 1, "slow primary with a fast replica must lose the race");
        assert!(cancelled >= wins, "every hedge abandons one loser first-wins");
        // Correctness gate: the replica is byte-identical, so the
        // hedged answer must match the unhedged one exactly.
        assert_eq!(hedged.sample_count(), baseline.sample_count());
        let total: usize = hedged.series_for(f).iter().map(|s| s.samples().len()).sum();
        assert_eq!(total, 4, "hedged read dropped samples");
        // The served latency is the replica's virtual completion, not
        // the slow primary's.
        let served = cluster.injected_read_latency_micros() - before_virtual;
        assert!(served < 50_000, "win must account the replica's latency, got {served}");
        // The winning read is tagged on the trace.
        let rec = tracer.trace(root.trace_id).unwrap();
        let read = rec
            .spans
            .iter()
            .find(|s| s.name == SHARD_READ_SPAN)
            .expect("shard_read span present");
        assert_eq!(read.attr("hedge"), Some("win"));
        let snap = cluster.registry().snapshot();
        assert!(snap.total("dio_cluster_hedge_total") >= 2.0);
    }

    #[test]
    fn hedge_loses_when_replica_is_even_slower() {
        let source = seed_store(&FAMILIES, 4);
        let cluster = Cluster::new(ClusterConfig::new(2));
        cluster.load_from(&source).unwrap();
        let f = FAMILIES[0];
        let shard = cluster.shard_for(f);
        for _ in 0..20 {
            cluster.resolve(&[f.to_string()], false).unwrap();
        }
        // Primary slow enough to hedge, replica slower still: the
        // hedge fires but the primary keeps winning.
        cluster.set_read_latency(cluster.primary_of(shard), 10_000);
        cluster.set_read_latency(cluster.replica_of(shard).unwrap(), 60_000);
        cluster.resolve(&[f.to_string()], false).unwrap();
        let (wins, losses, cancelled) = cluster.hedge_outcomes();
        assert_eq!(wins, 0, "a slower replica must not win");
        assert!(losses >= 1, "the fired hedge must be counted as a loss");
        assert!(cancelled >= 1, "the losing replica read must be cancelled");
    }

    #[test]
    fn tenant_homes_are_stable_and_spread() {
        let cluster = Cluster::new(ClusterConfig::new(4));
        let homes: Vec<usize> = (0..32)
            .map(|i| cluster.tenant_home(&format!("tenant-{i}")))
            .collect();
        assert_eq!(
            homes,
            (0..32)
                .map(|i| cluster.tenant_home(&format!("tenant-{i}")))
                .collect::<Vec<_>>()
        );
        assert!(homes.iter().collect::<std::collections::BTreeSet<_>>().len() > 1);
    }
}

//! The kill-at-every-byte-offset sweep, extended to the replication
//! path: whatever prefix of a shipped chunk survives the link — and
//! whatever single bit flips in flight — the replica either applies a
//! clean record prefix or rejects the whole shipment. It never
//! silently diverges from the primary, and catch-up shipping always
//! converges the copies byte-for-byte.

use dio_cluster::{ShardCopy, ShipReject};
use dio_tsdb::labels::NAME_LABEL;
use dio_tsdb::{Labels, Sample};

fn primary_with(records: usize) -> (ShardCopy, Vec<usize>) {
    let mut primary = ShardCopy::new();
    let mut boundaries = Vec::new();
    for i in 0..records {
        let labels = Labels::from_pairs([
            (NAME_LABEL, "amf_registration_total"),
            ("instance", &format!("amf-{}", i % 2)),
        ]);
        primary
            .append_local(labels, Sample::new(1_000 * (i as i64 + 1), i as f64))
            .unwrap()
            .unwrap();
        boundaries.push(primary.wal_len());
    }
    (primary, boundaries)
}

#[test]
fn truncation_at_every_byte_offset_never_diverges_replica() {
    let (primary, boundaries) = primary_with(4);
    let chunk = primary.bytes_from(0).to_vec();
    for cut in 0..=chunk.len() {
        let mut replica = ShardCopy::new();
        let acked_prefix = boundaries.iter().filter(|&&b| b <= cut).count();
        match replica.apply_shipped(&chunk[..cut]) {
            Ok(apply) => {
                // Only whole-frame prefixes may apply, and they must
                // apply exactly.
                assert!(
                    cut == 0 || boundaries.contains(&cut),
                    "cut {cut} mid-frame was applied"
                );
                assert_eq!(apply.applied, acked_prefix, "cut {cut}");
                assert_eq!(
                    replica.wal_bytes(),
                    &chunk[..cut],
                    "cut {cut} produced divergent replica bytes"
                );
            }
            Err(reject) => {
                assert_eq!(reject, ShipReject::TornTail, "cut {cut}");
                assert_eq!(replica.records(), 0, "cut {cut} partially applied");
            }
        }
        // Whatever happened, one pristine catch-up ship converges.
        replica
            .apply_shipped(primary.bytes_from(replica.records()))
            .unwrap();
        assert_eq!(
            replica.wal_bytes(),
            primary.wal_bytes(),
            "cut {cut} failed to converge after re-ship"
        );
    }
}

#[test]
fn every_single_bit_flip_in_flight_is_detected() {
    let (primary, _) = primary_with(3);
    let chunk = primary.bytes_from(0).to_vec();
    for bit in 0..chunk.len() * 8 {
        let mut damaged = chunk.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        let mut replica = ShardCopy::new();
        match replica.apply_shipped(&damaged) {
            Err(_) => assert_eq!(replica.records(), 0, "bit {bit} partially applied"),
            Ok(_) => panic!("bit flip at {bit} went undetected and was applied"),
        }
        // Re-ship of the pristine chunk self-heals.
        replica.apply_shipped(&chunk).unwrap();
        assert_eq!(replica.wal_bytes(), primary.wal_bytes(), "bit {bit}");
    }
}

//! Singleflight coalescing: concurrent identical requests share one
//! computation.
//!
//! The first caller to [`Singleflight::join`] a key becomes the
//! **leader** and receives a [`LeaderGuard`]; callers arriving while
//! the leader is in flight become **followers** and block (with a
//! budget-derived timeout) until the leader publishes. One key epoch —
//! from the leader's join to its publish or abandon — admits exactly
//! one computation, no matter how many callers pile on.
//!
//! Cancellation safety is the delicate part:
//!
//! * a leader that drops its guard without publishing (deadline abort,
//!   panic unwind, browned-out answer it refuses to share) *abandons*
//!   the epoch: every follower wakes immediately with
//!   [`FollowerOutcome::Abandoned`] and may start a fresh epoch —
//!   followers never outlive a cancelled leader;
//! * a follower whose own budget lapses stops waiting with
//!   [`FollowerOutcome::TimedOut`] without disturbing the epoch — the
//!   leader keeps computing for whoever remains.
//!
//! The structure is deliberately value-agnostic (`V: Clone`) and free
//! of metrics/trace plumbing so its invariants are directly
//! property-testable; the serve tier layers attribution on top.

use dio_obs::Budget;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Epoch state shared between a leader and its followers.
#[derive(Debug)]
enum FlightState<V> {
    /// The leader is computing.
    Pending,
    /// The leader published; followers take clones.
    Done(V),
    /// The leader dropped without publishing.
    Abandoned,
}

#[derive(Debug)]
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// Map of in-flight computations, keyed by (normalized) request key.
#[derive(Debug, Default)]
pub struct Singleflight<V> {
    flights: Mutex<HashMap<String, Arc<Flight<V>>>>,
}

/// What [`Singleflight::join`] resolved to.
pub enum Join<'a, V: Clone> {
    /// This caller leads the epoch and must publish or abandon.
    Leader(LeaderGuard<'a, V>),
    /// Another caller leads; wait on this handle.
    Follower(FollowerHandle<V>),
}

/// A follower's wait result.
#[derive(Debug, Clone, PartialEq)]
pub enum FollowerOutcome<V> {
    /// The leader published; this is a clone of its value.
    Ready(V),
    /// The leader abandoned the epoch without publishing.
    Abandoned,
    /// The follower's own budget lapsed while waiting.
    TimedOut,
}

/// Obligation to finish an epoch: publish a value for the followers or
/// abandon on drop. Dropping without [`LeaderGuard::publish`] wakes
/// every follower with [`FollowerOutcome::Abandoned`].
pub struct LeaderGuard<'a, V: Clone> {
    sf: &'a Singleflight<V>,
    key: String,
    flight: Arc<Flight<V>>,
    finished: bool,
}

/// A follower's handle on the leader's in-flight epoch.
pub struct FollowerHandle<V> {
    flight: Arc<Flight<V>>,
}

/// Polling slice for follower waits: long enough to be cheap, short
/// enough that a cancelled budget is observed promptly.
const WAIT_SLICE: Duration = Duration::from_millis(5);

impl<V: Clone> Singleflight<V> {
    /// An empty coalescer.
    pub fn new() -> Self {
        Singleflight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Join the epoch for `key`: lead it if nobody else is, follow
    /// otherwise.
    pub fn join(&self, key: &str) -> Join<'_, V> {
        let mut flights = self.flights.lock().unwrap();
        if let Some(flight) = flights.get(key) {
            return Join::Follower(FollowerHandle {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        flights.insert(key.to_string(), Arc::clone(&flight));
        Join::Leader(LeaderGuard {
            sf: self,
            key: key.to_string(),
            flight,
            finished: false,
        })
    }

    /// Keys currently in flight (for tests and introspection).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().unwrap().len()
    }

    fn close_epoch(&self, key: &str, flight: &Arc<Flight<V>>, state: FlightState<V>) {
        // Publish/abandon under the flight lock, then retire the key so
        // the next join opens a fresh epoch. Ordering matters: state
        // first, removal second — a caller that finds the key mid-close
        // becomes a follower and wakes immediately on the final state.
        {
            let mut st = flight.state.lock().unwrap();
            *st = state;
            flight.cv.notify_all();
        }
        let mut flights = self.flights.lock().unwrap();
        if let Some(current) = flights.get(key) {
            if Arc::ptr_eq(current, flight) {
                flights.remove(key);
            }
        }
    }
}

impl<V: Clone> LeaderGuard<'_, V> {
    /// Publish `value` to every follower and close the epoch.
    pub fn publish(mut self, value: V) {
        self.finished = true;
        self.sf
            .close_epoch(&self.key, &self.flight, FlightState::Done(value));
    }

    /// Explicitly abandon the epoch (equivalent to dropping the guard).
    pub fn abandon(self) {}
}

impl<V: Clone> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        if !self.finished {
            self.sf
                .close_epoch(&self.key, &self.flight, FlightState::Abandoned);
        }
    }
}

impl<V: Clone> FollowerHandle<V> {
    /// Block until the leader publishes or abandons, or `budget`
    /// lapses. Cancellation (of the budget's token) is observed within
    /// one wait slice.
    pub fn wait(&self, budget: &Budget) -> FollowerOutcome<V> {
        let mut st = self.flight.state.lock().unwrap();
        loop {
            match &*st {
                FlightState::Done(v) => return FollowerOutcome::Ready(v.clone()),
                FlightState::Abandoned => return FollowerOutcome::Abandoned,
                FlightState::Pending => {}
            }
            if budget.expired() {
                return FollowerOutcome::TimedOut;
            }
            let slice = match budget.remaining() {
                Some(left) => left.min(WAIT_SLICE),
                None => WAIT_SLICE,
            };
            let (guard, _) = self
                .flight
                .cv
                .wait_timeout(st, slice.max(Duration::from_micros(100)))
                .unwrap();
            st = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    #[test]
    fn leader_publishes_and_followers_share_the_value() {
        let sf = Arc::new(Singleflight::<String>::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sf = Arc::clone(&sf);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || match sf.join("q") {
                Join::Leader(guard) => {
                    calls.fetch_add(1, Ordering::SeqCst);
                    // Give followers time to pile on.
                    std::thread::sleep(Duration::from_millis(20));
                    guard.publish("answer".to_string());
                    "answer".to_string()
                }
                Join::Follower(h) => match h.wait(&Budget::unbounded()) {
                    FollowerOutcome::Ready(v) => v,
                    other => panic!("follower got {other:?}"),
                },
            }));
        }
        let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| r == "answer"));
        // Followers that joined during the epoch did no computation.
        assert!(calls.load(Ordering::SeqCst) >= 1);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn abandoned_leader_wakes_followers_immediately() {
        let sf = Arc::new(Singleflight::<u32>::new());
        let guard = match sf.join("k") {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("first join must lead"),
        };
        let follower = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || match sf.join("k") {
                Join::Follower(h) => {
                    let started = Instant::now();
                    let out = h.wait(&Budget::within(Duration::from_secs(10)));
                    (out, started.elapsed())
                }
                Join::Leader(_) => panic!("leader already exists"),
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(guard); // abandon without publishing
        let (out, waited) = follower.join().unwrap();
        assert_eq!(out, FollowerOutcome::Abandoned);
        // The follower did not ride out its own 10s budget.
        assert!(waited < Duration::from_secs(2), "waited {waited:?}");
        // The epoch closed: the key leads again.
        assert!(matches!(sf.join("k"), Join::Leader(_)));
    }

    #[test]
    fn follower_budget_lapse_times_out_without_closing_the_epoch() {
        let sf = Singleflight::<u32>::new();
        let _guard = match sf.join("k") {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!(),
        };
        let follower = match sf.join("k") {
            Join::Follower(h) => h,
            Join::Leader(_) => panic!(),
        };
        let out = follower.wait(&Budget::within(Duration::from_millis(15)));
        assert_eq!(out, FollowerOutcome::TimedOut);
        // The leader's epoch is still open.
        assert_eq!(sf.in_flight(), 1);
    }

    #[test]
    fn cancelled_budget_is_observed_promptly() {
        let sf = Singleflight::<u32>::new();
        let _guard = match sf.join("k") {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!(),
        };
        let follower = match sf.join("k") {
            Join::Follower(h) => h,
            Join::Leader(_) => panic!(),
        };
        let budget = Budget::within(Duration::from_secs(30));
        let cancel = budget.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            cancel.cancel();
        });
        let started = Instant::now();
        assert_eq!(follower.wait(&budget), FollowerOutcome::TimedOut);
        assert!(started.elapsed() < Duration::from_secs(2));
        t.join().unwrap();
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf = Singleflight::<u32>::new();
        let a = sf.join("a");
        let b = sf.join("b");
        assert!(matches!(a, Join::Leader(_)));
        assert!(matches!(b, Join::Leader(_)));
    }
}

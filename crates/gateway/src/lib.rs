//! # dio-gateway
//!
//! The model-plane gateway: everything that stands between the serving
//! tier's workers and the (expensive, rate-limited) foundation model.
//!
//! PromCopilot-style NL→PromQL traffic is **duplicate-heavy**: a fleet
//! of operators watching the same incident asks the same handful of
//! questions, phrased with minor variations, within seconds of each
//! other. The paper's cost numbers (§4.2.5: ~4¢ per GPT-4 answer, most
//! of it the re-sent catalog+exemplar prefix) make that duplication the
//! single largest avoidable line item. This crate removes it in three
//! layers, ordered cheapest-first:
//!
//! 1. [`singleflight`] — concurrent *identical* (normalized) questions
//!    coalesce: one leader computes, followers clone the result.
//!    Answer-shaped, sits at the question level in `dio-serve`.
//! 2. [`semantic`] — *near*-duplicates (paraphrases) are served from an
//!    embedding-similarity cache behind the exact caches, gated by a
//!    cosine floor and the knowledge-generation atomic.
//! 3. [`model`] — what still reaches the model is **batched**: a
//!    bounded-delay, bounded-size, deadline-aware accumulator answers K
//!    queued prompts in one combined call, pricing the shared prefix
//!    once per batch.
//!
//! [`normalize`] hosts the question normalizer both the serve-tier
//! answer cache and the singleflight keyer share (serve re-exports it),
//! so the two planes cannot drift.

pub mod model;
pub mod normalize;
pub mod semantic;
pub mod singleflight;

pub use model::{BatchConfig, FlushRecord, FlushTrigger, GatewayHandle, ModelGateway};
pub use normalize::normalize_question;
pub use semantic::{Probe, SemanticCache, SemanticConfig, SemanticStats};
pub use singleflight::{FollowerHandle, FollowerOutcome, Join, LeaderGuard, Singleflight};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_types_cross_threads() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Singleflight<String>>();
        assert_send_sync::<SemanticCache<String>>();
        assert_send_sync::<ModelGateway>();
        assert_send::<GatewayHandle>();
    }
}

//! Cache-key normalization for natural-language questions.
//!
//! Operators phrase the same question many ways that differ only in
//! whitespace and letter case ("What is the PRB utilization?" vs
//! " what   is the prb utilization? "). The serve tier's answer cache
//! and the gateway's singleflight coalescer both key on the normalized
//! form — and they key on *this* function, so the two planes cannot
//! drift: a question that hits the normalized answer cache is, by
//! construction, the same key a concurrent duplicate coalesces on.
//! (The function lives here, below `dio-serve` in the dependency
//! order; serve re-exports it.)

/// Normalize a question into its cache key: trim leading/trailing
/// whitespace, collapse internal whitespace runs to a single space,
/// and casefold via Unicode lowercasing.
pub fn normalize_question(question: &str) -> String {
    let mut out = String::with_capacity(question.len());
    for word in question.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        for c in word.chars() {
            out.extend(c.to_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_collapses_and_casefolds() {
        assert_eq!(
            normalize_question("  What   is\tthe PRB\n utilization? "),
            "what is the prb utilization?"
        );
    }

    #[test]
    fn empty_and_whitespace_only_normalize_to_empty() {
        assert_eq!(normalize_question(""), "");
        assert_eq!(normalize_question(" \t\n "), "");
    }

    #[test]
    fn already_normal_is_unchanged() {
        assert_eq!(normalize_question("a b c"), "a b c");
    }

    #[test]
    fn unicode_lowercase_expansion() {
        // U+0130 lowercases to a two-char sequence; must not panic or
        // truncate.
        assert_eq!(normalize_question("\u{130}stanbul"), "i\u{307}stanbul");
    }
}

//! Embedding-similarity semantic answer cache.
//!
//! The exact and normalized answer caches in `dio-serve` only absorb
//! repeats that normalize to the same string. Operators also *rephrase*
//! — PromCopilot (arXiv:2503.03114) reports repeated-query locality as
//! the defining workload property of NL→PromQL traffic, and much of it
//! arrives as near-duplicates. This cache layers behind the exact
//! caches: it stores the question vectors the embed cache already
//! produced and serves a **neighbor's** answer when the cosine
//! similarity clears a configurable floor.
//!
//! Admission rule: a probe only hits when (a) the candidate was cached
//! at the same evaluation timestamp, (b) under the *current* knowledge
//! generation (the same atomic that invalidates the serve caches —
//! stale-generation entries are dropped lazily on contact), and (c)
//! cosine ≥ floor. A best-match below the floor is a **reject**, and a
//! reject is never served — that near-miss discipline is what keeps EX
//! parity intact. Hits, misses, and rejects are counted in
//! `dio_gateway_semantic_cache_total{event}`.

use dio_embed::Vector;
use dio_obs::{Buckets, Counter, Histogram, Registry};
use std::sync::{Arc, Mutex};

/// Instrument names.
const EVENTS_NAME: &str = "dio_gateway_semantic_cache_total";
const EVENTS_HELP: &str = "Semantic answer-cache probes, by event (hit/miss/reject).";
const SIMILARITY_NAME: &str = "dio_gateway_semantic_similarity";
const SIMILARITY_HELP: &str = "Best-neighbor cosine similarity of semantic cache probes.";

/// Semantic-cache policy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SemanticConfig {
    /// Minimum cosine similarity for serving a neighbor's answer.
    pub floor: f32,
    /// Maximum retained entries (LRU beyond this).
    pub capacity: usize,
}

impl Default for SemanticConfig {
    /// The default floor is deliberately conservative: the
    /// deterministic embedder maps paraphrases that share almost all
    /// content words above ~0.95, while questions about *different*
    /// metrics land well below it (see the EX-parity proptests).
    fn default() -> Self {
        SemanticConfig {
            floor: 0.95,
            capacity: 2048,
        }
    }
}

/// One probe's outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe<V> {
    /// A neighbor cleared the floor; serve its answer.
    Hit {
        /// The neighbor's cached value.
        value: V,
        /// The neighbor's (normalized) question key.
        neighbor: String,
        /// The winning cosine similarity.
        similarity: f32,
    },
    /// Candidates existed but the best fell below the floor.
    Reject {
        /// The best (rejected) similarity.
        similarity: f32,
    },
    /// No candidate at this (timestamp, generation).
    Miss,
}

impl<V> Probe<V> {
    /// The metric label for this outcome.
    pub fn event(&self) -> &'static str {
        match self {
            Probe::Hit { .. } => "hit",
            Probe::Reject { .. } => "reject",
            Probe::Miss => "miss",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<V> {
    key: String,
    ts: i64,
    generation: u64,
    vector: Arc<Vector>,
    value: V,
    /// Monotone use stamp for LRU eviction.
    used: u64,
}

#[derive(Debug)]
struct Inner<V> {
    entries: Vec<Entry<V>>,
    clock: u64,
}

/// Aggregate counters, mirrored from the registry for cheap assertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SemanticStats {
    /// Probes served from a neighbor.
    pub hits: u64,
    /// Probes with no candidate.
    pub misses: u64,
    /// Probes whose best neighbor fell below the floor.
    pub rejects: u64,
    /// Entries dropped by generation invalidation.
    pub invalidations: u64,
    /// Entries evicted by capacity.
    pub evictions: u64,
}

/// The semantic answer cache. `V` is whatever the serving tier caches
/// (a full response); the cache itself only reasons about vectors.
pub struct SemanticCache<V> {
    inner: Mutex<Inner<V>>,
    config: SemanticConfig,
    stats: Mutex<SemanticStats>,
    hit: Counter,
    miss: Counter,
    reject: Counter,
    similarity: Histogram,
}

impl<V: Clone> SemanticCache<V> {
    /// An empty cache counting into `registry`.
    pub fn new(registry: &Registry, config: SemanticConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.floor),
            "similarity floor {} outside [0,1]",
            config.floor
        );
        SemanticCache {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                clock: 0,
            }),
            config,
            stats: Mutex::new(SemanticStats::default()),
            hit: registry.counter_with(EVENTS_NAME, EVENTS_HELP, &[("event", "hit")]),
            miss: registry.counter_with(EVENTS_NAME, EVENTS_HELP, &[("event", "miss")]),
            reject: registry.counter_with(EVENTS_NAME, EVENTS_HELP, &[("event", "reject")]),
            similarity: registry.histogram_with(
                SIMILARITY_NAME,
                SIMILARITY_HELP,
                &Buckets::unit_fractions(),
                &[],
            ),
        }
    }

    /// The configured admission policy.
    pub fn config(&self) -> SemanticConfig {
        self.config
    }

    /// Probe for a neighbor of `qvec` cached at (`ts`, `generation`).
    pub fn probe(&self, ts: i64, generation: u64, qvec: &Vector) -> Probe<V> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let dropped = drop_stale(&mut inner.entries, generation);
        let mut best: Option<(usize, f32)> = None;
        for (i, e) in inner.entries.iter().enumerate() {
            if e.ts != ts {
                continue;
            }
            let sim = dio_embed::cosine(&e.vector, qvec);
            if best.map(|(_, b)| sim > b).unwrap_or(true) {
                best = Some((i, sim));
            }
        }
        let outcome = match best {
            Some((i, sim)) if sim >= self.config.floor => {
                let e = &mut inner.entries[i];
                e.used = clock;
                Probe::Hit {
                    value: e.value.clone(),
                    neighbor: e.key.clone(),
                    similarity: sim,
                }
            }
            Some((_, sim)) => Probe::Reject { similarity: sim },
            None => Probe::Miss,
        };
        drop(inner);
        let mut stats = self.stats.lock().unwrap();
        stats.invalidations += dropped as u64;
        match &outcome {
            Probe::Hit { similarity, .. } => {
                stats.hits += 1;
                self.hit.inc();
                self.similarity.observe(*similarity as f64);
            }
            Probe::Reject { similarity } => {
                stats.rejects += 1;
                self.reject.inc();
                self.similarity.observe(*similarity as f64);
            }
            Probe::Miss => {
                stats.misses += 1;
                self.miss.inc();
            }
        }
        outcome
    }

    /// Cache `value` for the question `key` (normalized) embedded as
    /// `vector`, valid at (`ts`, `generation`). Re-inserting an
    /// existing key refreshes its value.
    pub fn insert(&self, ts: i64, generation: u64, key: &str, vector: Arc<Vector>, value: V) {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let dropped = drop_stale(&mut inner.entries, generation);
        let mut evicted = 0u64;
        if let Some(e) = inner
            .entries
            .iter_mut()
            .find(|e| e.ts == ts && e.key == key)
        {
            e.value = value;
            e.vector = vector;
            e.used = clock;
        } else {
            if self.config.capacity > 0 && inner.entries.len() >= self.config.capacity {
                // Evict the least-recently-used entry.
                if let Some((idx, _)) = inner
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.used)
                {
                    inner.entries.swap_remove(idx);
                    evicted = 1;
                }
            }
            inner.entries.push(Entry {
                key: key.to_string(),
                ts,
                generation,
                vector,
                value,
                used: clock,
            });
        }
        drop(inner);
        let mut stats = self.stats.lock().unwrap();
        stats.invalidations += dropped as u64;
        stats.evictions += evicted;
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SemanticStats {
        *self.stats.lock().unwrap()
    }
}

/// Drop entries cached under an older knowledge generation; returns
/// how many were invalidated. (Newer-than-current never occurs — the
/// generation is monotone — but would be dropped too.)
fn drop_stale<V>(entries: &mut Vec<Entry<V>>, generation: u64) -> usize {
    let before = entries.len();
    entries.retain(|e| e.generation == generation);
    before - entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(values: &[f32]) -> Arc<Vector> {
        // Unit-normalize so cosine is a plain dot product.
        let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
        Arc::new(Vector(values.iter().map(|v| v / norm).collect()))
    }

    fn cache(floor: f32) -> SemanticCache<String> {
        SemanticCache::new(
            &Registry::new(),
            SemanticConfig {
                floor,
                capacity: 4,
            },
        )
    }

    #[test]
    fn neighbor_above_the_floor_hits() {
        let c = cache(0.9);
        c.insert(100, 1, "how many drops", vec_of(&[1.0, 0.1, 0.0]), "A".into());
        match c.probe(100, 1, &vec_of(&[1.0, 0.12, 0.0])) {
            Probe::Hit {
                value,
                neighbor,
                similarity,
            } => {
                assert_eq!(value, "A");
                assert_eq!(neighbor, "how many drops");
                assert!(similarity >= 0.9);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn below_the_floor_is_rejected_never_served() {
        let c = cache(0.95);
        c.insert(100, 1, "k", vec_of(&[1.0, 0.0, 0.0]), "A".into());
        match c.probe(100, 1, &vec_of(&[0.5, 1.0, 0.0])) {
            Probe::Reject { similarity } => assert!(similarity < 0.95),
            other => panic!("expected reject, got {other:?}"),
        }
        assert_eq!(c.stats().rejects, 1);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn different_timestamp_is_a_miss() {
        let c = cache(0.5);
        c.insert(100, 1, "k", vec_of(&[1.0, 0.0, 0.0]), "A".into());
        assert_eq!(c.probe(200, 1, &vec_of(&[1.0, 0.0, 0.0])), Probe::Miss);
    }

    #[test]
    fn generation_bump_invalidates_atomically() {
        let c = cache(0.5);
        c.insert(100, 1, "k", vec_of(&[1.0, 0.0, 0.0]), "A".into());
        // Same vector, new generation: the stale entry must not serve.
        assert_eq!(c.probe(100, 2, &vec_of(&[1.0, 0.0, 0.0])), Probe::Miss);
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let c = cache(0.99);
        for i in 0..4 {
            let mut v = vec![0.0; 5];
            v[i] = 1.0;
            c.insert(100, 1, &format!("k{i}"), vec_of(&v), format!("v{i}"));
        }
        // Touch k0 so k1 becomes the LRU.
        let _ = c.probe(100, 1, &vec_of(&[1.0, 0.0, 0.0, 0.0, 0.0]));
        let mut v4 = vec![0.0; 5];
        v4[4] = 1.0;
        c.insert(100, 1, "k4", vec_of(&v4), "v4".into());
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats().evictions, 1);
        // k1's direction no longer hits.
        let probe = c.probe(100, 1, &vec_of(&[0.0, 1.0, 0.0, 0.0, 0.0]));
        assert!(!matches!(probe, Probe::Hit { .. }), "{probe:?}");
    }

    #[test]
    fn registry_counts_every_event() {
        let registry = Registry::new();
        let c: SemanticCache<String> =
            SemanticCache::new(&registry, SemanticConfig::default());
        c.insert(1, 1, "k", vec_of(&[1.0, 0.0]), "A".into());
        let _ = c.probe(1, 1, &vec_of(&[1.0, 0.0])); // hit
        let _ = c.probe(1, 1, &vec_of(&[0.0, 1.0])); // reject
        let _ = c.probe(2, 1, &vec_of(&[1.0, 0.0])); // miss
        let snap = registry.snapshot();
        assert_eq!(snap.total(EVENTS_NAME), 3.0);
        let stats = c.stats();
        assert_eq!((stats.hits, stats.rejects, stats.misses), (1, 1, 1));
    }
}

//! The batching model front-end: a [`FoundationModel`] that accumulates
//! concurrent completion requests and answers K of them with **one**
//! upstream call.
//!
//! ## Flush triggers
//!
//! A queued request carries a *due* instant — the earliest of
//! `enqueue + max_delay` (bounded delay) and, when the request has a
//! `timeout_ms`, `deadline - min_slack` (deadline pressure). The queue
//! flushes when it reaches `max_batch` items (**full**), when the
//! oldest due instant passes (**due**), or when the passing due instant
//! was deadline-derived (**deadline**). A request whose hard deadline
//! has already lapsed while queued is *never* sent upstream: it fails
//! locally with a transient error so the serving tier's deadline abort
//! machinery — not a late answer — handles it.
//!
//! ## Cost attribution
//!
//! The combined call is billed once; [`BatchLayout::attribute`] splits
//! the combined prompt bill into per-item shares (own suffix + an equal
//! slice of the shared prefix and framing), so each item's
//! [`Completion::usage`] reconciles with the single upstream bill and
//! the [`CostLedger`] records the prefix exactly once per batch.
//!
//! ## Fault domain
//!
//! The gateway sits *above* whatever fault injection wraps the
//! upstream (`FaultyModel<BatchExpander<SimulatedModel>>` in tests):
//! one injected fault corrupts one combined attempt. A whole-call
//! `Unavailable` fails every item transiently (each item's own
//! `RecoveryPolicy` retries through a fresh batch); a corrupted
//! combined *completion* degrades only the items whose answer blocks
//! were damaged, because [`split_batch`] recovers every block whose
//! markers survive.

use dio_llm::{
    compose_batch, count_tokens, Completion, CompletionRequest, CostLedger, FoundationModel,
    ModelError, Pricing, TokenUsage,
};
use dio_obs::{Buckets, Counter, Histogram, Registry, SpanContext, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batching policy. (Not serde-derived: the vendored serde stand-in
/// has no `Duration` impls; benches report the fields individually.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum items per combined call.
    pub max_batch: usize,
    /// Maximum time a request may wait for companions.
    pub max_delay: Duration,
    /// Slack reserved before a request's hard deadline: a request is
    /// flushed no later than `deadline - min_slack` so the upstream
    /// call (and the caller's parse/repair work) fits before the
    /// deadline.
    pub min_slack: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(3),
            min_slack: Duration::from_millis(200),
        }
    }
}

/// Why a flush fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum FlushTrigger {
    /// The queue reached `max_batch`.
    Full,
    /// The oldest bounded-delay due instant passed.
    Due,
    /// A deadline-derived due instant passed.
    Deadline,
}

impl FlushTrigger {
    /// Metric label.
    pub fn label(&self) -> &'static str {
        match self {
            FlushTrigger::Full => "full",
            FlushTrigger::Due => "due",
            FlushTrigger::Deadline => "deadline",
        }
    }
}

/// Audit record of one flush, retained (bounded) for tests and the
/// bench's deadline audit.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FlushRecord {
    /// Items in the combined call.
    pub size: usize,
    /// What fired the flush.
    pub trigger: FlushTrigger,
    /// Longest queue wait among the flushed items, µs.
    pub waited_micros: u64,
    /// Whether every flushed item still had its hard deadline ahead of
    /// it when the flush started.
    pub within_deadline: bool,
    /// Items failed locally because their deadline lapsed in the queue
    /// (these were *not* sent upstream).
    pub lapsed: usize,
}

/// Retain at most this many flush records.
const FLUSH_LOG_CAP: usize = 4096;

struct Slot {
    id: u64,
    request: CompletionRequest,
    ctx: Option<SpanContext>,
    enqueued: Instant,
    due: Instant,
    hard_deadline: Option<Instant>,
    deadline_driven: bool,
}

struct BatchState {
    next_id: u64,
    queue: Vec<Slot>,
    results: HashMap<u64, Result<Completion, ModelError>>,
    flushing: bool,
}

/// The shared gateway core. [`GatewayHandle`]s clone the `Arc`.
pub struct ModelGateway {
    upstream: Mutex<Box<dyn FoundationModel>>,
    config: BatchConfig,
    // Upstream identity snapshotted at construction (`FoundationModel`
    // hands out borrowed strs; the handle needs owned copies).
    name: String,
    window: usize,
    pricing: Pricing,
    state: Mutex<BatchState>,
    cv: Condvar,
    ledger: Mutex<CostLedger>,
    flush_log: Mutex<Vec<FlushRecord>>,
    tracer: Option<Tracer>,
    upstream_calls: Counter,
    flush_full: Counter,
    flush_due: Counter,
    flush_deadline: Counter,
    lapsed_total: Counter,
    batch_size: Histogram,
    prefix_saved: Counter,
}

impl std::fmt::Debug for ModelGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelGateway")
            .field("name", &self.name)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ModelGateway {
    /// A gateway over `upstream`, instrumented into `registry`. Pass a
    /// tracer to get `batch_flush` spans and per-item `batched` events
    /// threaded under the callers' span contexts.
    pub fn new(
        upstream: Box<dyn FoundationModel>,
        config: BatchConfig,
        registry: &Registry,
        tracer: Option<Tracer>,
    ) -> Arc<Self> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        let name = format!("gateway({})", upstream.name());
        let window = upstream.context_window();
        let pricing = upstream.pricing();
        Arc::new(ModelGateway {
            upstream: Mutex::new(upstream),
            config,
            name,
            window,
            pricing,
            state: Mutex::new(BatchState {
                next_id: 0,
                queue: Vec::new(),
                results: HashMap::new(),
                flushing: false,
            }),
            cv: Condvar::new(),
            ledger: Mutex::new(CostLedger::new()),
            flush_log: Mutex::new(Vec::new()),
            tracer,
            upstream_calls: registry.counter(
                "dio_gateway_upstream_calls_total",
                "Combined model calls the gateway sent upstream.",
            ),
            flush_full: registry.counter_with(
                "dio_gateway_batch_flush_total",
                "Batch flushes, by trigger.",
                &[("trigger", "full")],
            ),
            flush_due: registry.counter_with(
                "dio_gateway_batch_flush_total",
                "Batch flushes, by trigger.",
                &[("trigger", "due")],
            ),
            flush_deadline: registry.counter_with(
                "dio_gateway_batch_flush_total",
                "Batch flushes, by trigger.",
                &[("trigger", "deadline")],
            ),
            lapsed_total: registry.counter(
                "dio_gateway_queue_lapsed_total",
                "Requests failed locally because their deadline lapsed in the gateway queue.",
            ),
            batch_size: registry.histogram(
                "dio_gateway_batch_size",
                "Items per combined upstream call.",
                &Buckets::linear(1.0, 1.0, 8),
            ),
            prefix_saved: registry.counter(
                "dio_gateway_prefix_tokens_saved_total",
                "Shared-prefix tokens amortized away by batching.",
            ),
        })
    }

    /// The batching policy in force.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Snapshot of the gateway's cost ledger.
    pub fn ledger(&self) -> CostLedger {
        self.ledger.lock().unwrap().clone()
    }

    /// Snapshot of the (bounded) flush audit log.
    pub fn flush_log(&self) -> Vec<FlushRecord> {
        self.flush_log.lock().unwrap().clone()
    }

    /// A fresh per-caller handle. Each worker thread should hold its
    /// own so its span context rides along without cross-talk.
    pub fn handle(self: &Arc<Self>) -> GatewayHandle {
        GatewayHandle {
            core: Arc::clone(self),
            ctx: Arc::new(Mutex::new(None)),
        }
    }

    /// Enqueue, wait for a flush (ours or a companion's), return this
    /// request's own result.
    fn complete_with(
        &self,
        request: &CompletionRequest,
        ctx: Option<SpanContext>,
    ) -> Result<Completion, ModelError> {
        let now = Instant::now();
        let delay_due = now + self.config.max_delay;
        let hard_deadline = request
            .timeout_ms
            .map(|ms| now + Duration::from_millis(ms));
        let deadline_due =
            hard_deadline.map(|hard| hard.checked_sub(self.config.min_slack).unwrap_or(now));
        let (due, deadline_driven) = match deadline_due {
            Some(d) if d < delay_due => (d, true),
            _ => (delay_due, false),
        };

        let mut state = self.state.lock().unwrap();
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push(Slot {
            id,
            request: request.clone(),
            ctx,
            enqueued: now,
            due,
            hard_deadline,
            deadline_driven,
        });
        if state.queue.len() >= self.config.max_batch {
            self.cv.notify_all();
        }

        loop {
            if let Some(result) = state.results.remove(&id) {
                return result;
            }
            let now = Instant::now();
            let trigger = if state.flushing {
                None
            } else if state.queue.len() >= self.config.max_batch {
                Some(FlushTrigger::Full)
            } else {
                state
                    .queue
                    .iter()
                    .filter(|s| s.due <= now)
                    .max_by_key(|s| s.deadline_driven)
                    .map(|s| {
                        if s.deadline_driven {
                            FlushTrigger::Deadline
                        } else {
                            FlushTrigger::Due
                        }
                    })
            };
            if let Some(trigger) = trigger {
                if !state.queue.is_empty() {
                    state.flushing = true;
                    let batch = take_batch(&mut state.queue, self.config.max_batch, self.window);
                    drop(state);
                    self.flush(batch, trigger);
                    state = self.state.lock().unwrap();
                    state.flushing = false;
                    self.cv.notify_all();
                    continue;
                }
            }
            // Sleep until the earliest queued due instant (a flush in
            // progress or an empty queue just waits a slice).
            let wait = state
                .queue
                .iter()
                .map(|s| s.due.saturating_duration_since(now))
                .min()
                .filter(|_| !state.flushing)
                .unwrap_or(Duration::from_millis(1))
                .clamp(Duration::from_micros(100), Duration::from_millis(50));
            let (guard, _) = self.cv.wait_timeout(state, wait).unwrap();
            state = guard;
        }
    }

    /// Execute one combined call for `batch` and publish per-item
    /// results. Runs with the state lock *released*; companions keep
    /// waiting on the condvar meanwhile.
    fn flush(&self, mut batch: Vec<Slot>, trigger: FlushTrigger) {
        let start = Instant::now();
        // Fail queue-lapsed items locally: a deadline already behind us
        // must produce a deadline abort at the caller, never a late
        // answer from upstream.
        let mut lapsed: Vec<Slot> = Vec::new();
        batch.retain_mut_into(&mut lapsed, |s| {
            s.hard_deadline.map(|h| h <= start).unwrap_or(false)
        });
        let lapsed_count = lapsed.len();
        let mut results: Vec<(u64, Result<Completion, ModelError>)> = lapsed
            .into_iter()
            .map(|s| {
                (
                    s.id,
                    Err(ModelError::Unavailable(
                        "gateway queue deadline lapsed before flush".to_string(),
                    )),
                )
            })
            .collect();
        if lapsed_count > 0 {
            self.lapsed_total.add(lapsed_count as f64);
        }

        let waited_micros = batch
            .iter()
            .map(|s| s.enqueued.elapsed().as_micros() as u64)
            .max()
            .unwrap_or(0);
        let size = batch.len();

        if !batch.is_empty() {
            self.flush_trigger_counter(trigger).inc();
            self.batch_size.observe(size as f64);
            let outcome = self.call_upstream(&batch);
            let prefix_tokens = outcome.prefix_tokens;
            for (slot, result) in batch.iter().zip(outcome.results) {
                results.push((slot.id, result));
            }
            if prefix_tokens > 0 && size > 1 {
                self.prefix_saved
                    .add((prefix_tokens * (size - 1)) as f64);
            }
            // Trace plumbing: one batch_flush span under the first
            // item's context, a `batched` event under every item's.
            if let Some(tracer) = &self.tracer {
                let duration = dio_obs::micros_u64(start.elapsed());
                let size_attr = size.to_string();
                let prefix_attr = prefix_tokens.to_string();
                if let Some(first_ctx) = batch.iter().find_map(|s| s.ctx) {
                    let span = tracer.child_of(&first_ctx);
                    let start_micros = tracer.clock_micros(&span).saturating_sub(duration);
                    tracer.record_span(
                        &span,
                        "batch_flush",
                        start_micros,
                        duration,
                        &[
                            ("size", size_attr.as_str()),
                            ("trigger", trigger.label()),
                            ("prefix_tokens", prefix_attr.as_str()),
                        ],
                    );
                }
                for slot in &batch {
                    if let Some(ctx) = &slot.ctx {
                        tracer.event(
                            ctx,
                            "batched",
                            &[
                                ("size", size_attr.as_str()),
                                ("trigger", trigger.label()),
                            ],
                        );
                    }
                }
            }
        }

        {
            let mut log = self.flush_log.lock().unwrap();
            if log.len() < FLUSH_LOG_CAP {
                log.push(FlushRecord {
                    size,
                    trigger,
                    waited_micros,
                    within_deadline: lapsed_count == 0,
                    lapsed: lapsed_count,
                });
            }
        }

        let mut state = self.state.lock().unwrap();
        state.results.extend(results);
        drop(state);
        self.cv.notify_all();
    }

    fn flush_trigger_counter(&self, trigger: FlushTrigger) -> &Counter {
        match trigger {
            FlushTrigger::Full => &self.flush_full,
            FlushTrigger::Due => &self.flush_due,
            FlushTrigger::Deadline => &self.flush_deadline,
        }
    }

    /// One upstream call (combined when the batch has companions),
    /// billed into the ledger with per-item attribution.
    fn call_upstream(&self, batch: &[Slot]) -> UpstreamOutcome {
        if batch.len() == 1 {
            let result = {
                let upstream = self.upstream.lock().unwrap();
                self.upstream_calls.inc();
                upstream.complete(&batch[0].request)
            };
            if let Ok(c) = &result {
                self.ledger.lock().unwrap().record(c.usage, self.pricing);
            }
            return UpstreamOutcome {
                prefix_tokens: 0,
                results: vec![result],
            };
        }
        let requests: Vec<CompletionRequest> =
            batch.iter().map(|s| s.request.clone()).collect();
        let (combined, layout) = match compose_batch(&requests) {
            Ok(pair) => pair,
            Err(_) => {
                // Composition failed (malformed prompt sections):
                // degrade to serial per-item calls rather than failing
                // the batch.
                let upstream = self.upstream.lock().unwrap();
                let mut ledger = self.ledger.lock().unwrap();
                let results = requests
                    .iter()
                    .map(|r| {
                        self.upstream_calls.inc();
                        let result = upstream.complete(r);
                        if let Ok(c) = &result {
                            ledger.record(c.usage, self.pricing);
                        }
                        result
                    })
                    .collect();
                return UpstreamOutcome {
                    prefix_tokens: 0,
                    results,
                };
            }
        };
        let combined_result = {
            let upstream = self.upstream.lock().unwrap();
            self.upstream_calls.inc();
            upstream.complete(&combined)
        };
        match combined_result {
            Ok(c) => {
                self.ledger.lock().unwrap().record_batch(
                    c.usage,
                    layout.prefix_tokens,
                    batch.len(),
                    self.pricing,
                );
                let prompt_shares = layout.attribute(c.usage.prompt_tokens);
                let results = dio_llm::split_batch(&c.text, batch.len())
                    .into_iter()
                    .enumerate()
                    .map(|(i, item)| {
                        item.map(|text| {
                            let usage = TokenUsage {
                                prompt_tokens: prompt_shares[i],
                                completion_tokens: count_tokens(&text),
                            };
                            Completion { text, usage }
                        })
                    })
                    .collect();
                UpstreamOutcome {
                    prefix_tokens: layout.prefix_tokens,
                    results,
                }
            }
            Err(e) => UpstreamOutcome {
                prefix_tokens: layout.prefix_tokens,
                results: batch.iter().map(|_| Err(e.clone())).collect(),
            },
        }
    }
}

struct UpstreamOutcome {
    prefix_tokens: usize,
    results: Vec<Result<Completion, ModelError>>,
}

/// Split `v` in place: elements matching `pred` move to `out`,
/// preserving order of the survivors.
trait RetainInto<T> {
    fn retain_mut_into(&mut self, out: &mut Vec<T>, pred: impl Fn(&T) -> bool);
}

impl<T> RetainInto<T> for Vec<T> {
    fn retain_mut_into(&mut self, out: &mut Vec<T>, pred: impl Fn(&T) -> bool) {
        let mut i = 0;
        while i < self.len() {
            if pred(&self[i]) {
                out.push(self.remove(i));
            } else {
                i += 1;
            }
        }
    }
}

/// Take a FIFO batch: up to `max_batch` items whose combined prompt
/// tokens (plus framing overhead) fit the upstream window. Always takes
/// at least one item.
fn take_batch(queue: &mut Vec<Slot>, max_batch: usize, window: usize) -> Vec<Slot> {
    const FRAMING_OVERHEAD: usize = 64;
    let mut taken = Vec::new();
    let mut tokens = FRAMING_OVERHEAD;
    while !queue.is_empty() && taken.len() < max_batch {
        let next_tokens = queue[0].request.prompt.tokens;
        if !taken.is_empty() && tokens + next_tokens > window {
            break;
        }
        tokens += next_tokens;
        taken.push(queue.remove(0));
    }
    taken
}

/// A per-caller [`FoundationModel`] facade over a shared
/// [`ModelGateway`]. The handle carries an optional span context cell
/// the owning worker sets per job, so flush spans and `batched` events
/// land under the right trace.
pub struct GatewayHandle {
    core: Arc<ModelGateway>,
    ctx: Arc<Mutex<Option<SpanContext>>>,
}

impl std::fmt::Debug for GatewayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayHandle")
            .field("name", &self.core.name)
            .finish_non_exhaustive()
    }
}

impl GatewayHandle {
    /// Set (or clear) the span context attached to subsequent calls
    /// through this handle.
    pub fn set_span_ctx(&self, ctx: Option<SpanContext>) {
        *self.ctx.lock().unwrap() = ctx;
    }

    /// The shared span-context cell, for workers that box the handle
    /// but still need to update the context per job.
    pub fn ctx_cell(&self) -> Arc<Mutex<Option<SpanContext>>> {
        Arc::clone(&self.ctx)
    }

    /// The shared gateway core.
    pub fn core(&self) -> &Arc<ModelGateway> {
        &self.core
    }
}

impl Clone for GatewayHandle {
    /// Clones share the core but get a *fresh* context cell: contexts
    /// are per-worker state, not gateway state.
    fn clone(&self) -> Self {
        self.core.handle()
    }
}

impl FoundationModel for GatewayHandle {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn context_window(&self) -> usize {
        self.core.window
    }

    fn pricing(&self) -> Pricing {
        self.core.pricing
    }

    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError> {
        let ctx = *self.ctx.lock().unwrap();
        self.core.complete_with(request, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_llm::{BatchExpander, ModelProfile, PromptBuilder, SimulatedModel, TaskKind};

    fn request(question: &str) -> CompletionRequest {
        let prompt = PromptBuilder::new()
            .system("You are a 5G SA operator data analytics copilot.")
            .question(question)
            .task(TaskKind::AnswerDirectly)
            .build(8192, 1000);
        CompletionRequest::paper_defaults(prompt)
    }

    fn gateway(config: BatchConfig) -> Arc<ModelGateway> {
        ModelGateway::new(
            Box::new(BatchExpander::new(SimulatedModel::new(
                ModelProfile::gpt4_sim(),
            ))),
            config,
            &Registry::new(),
            None,
        )
    }

    #[test]
    fn concurrent_requests_share_one_upstream_call() {
        let gw = gateway(BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(50),
            min_slack: Duration::from_millis(200),
        });
        let solo = SimulatedModel::new(ModelProfile::gpt4_sim());
        let questions: Vec<String> =
            (0..4).map(|i| format!("how many registrations happened on slice {i}?")).collect();
        let expected: Vec<String> = questions
            .iter()
            .map(|q| solo.complete(&request(q)).unwrap().text)
            .collect();
        let mut handles = Vec::new();
        for q in &questions {
            let h = gw.handle();
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                h.complete(&request(&q)).unwrap().text
            }));
        }
        let got: Vec<String> = handles.into_iter().map(|t| t.join().unwrap()).collect();
        // Byte-identical answers to the unbatched path: EX parity.
        assert_eq!(got, expected);
        let ledger = gw.ledger();
        assert_eq!(ledger.queries(), 4);
        assert_eq!(ledger.batches(), 1);
        assert!(ledger.prefix_tokens_saved() > 0);
        let log = gw.flush_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].size, 4);
        assert_eq!(log[0].trigger, FlushTrigger::Full);
        assert!(log[0].within_deadline);
    }

    #[test]
    fn a_lone_request_flushes_on_the_delay_bound() {
        let gw = gateway(BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(5),
            min_slack: Duration::from_millis(200),
        });
        let started = Instant::now();
        let c = gw
            .handle()
            .complete(&request("how many handovers failed?"))
            .unwrap();
        assert!(!c.text.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(4));
        let log = gw.flush_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].size, 1);
        assert_eq!(log[0].trigger, FlushTrigger::Due);
    }

    #[test]
    fn a_tight_deadline_pulls_the_flush_forward() {
        let gw = gateway(BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_secs(5),
            min_slack: Duration::from_millis(100),
        });
        let started = Instant::now();
        let req = request("how many PDU sessions dropped?").with_timeout_ms(120);
        gw.handle().complete(&req).unwrap();
        // Flushed around deadline - slack (~20ms), nowhere near the 5s
        // delay bound.
        assert!(started.elapsed() < Duration::from_secs(1));
        let log = gw.flush_log();
        assert_eq!(log[0].trigger, FlushTrigger::Deadline);
        assert!(log[0].within_deadline);
    }

    #[test]
    fn a_lapsed_deadline_fails_locally_without_an_upstream_call() {
        let registry = Registry::new();
        let gw = ModelGateway::new(
            Box::new(BatchExpander::new(SimulatedModel::new(
                ModelProfile::gpt4_sim(),
            ))),
            BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(30),
                min_slack: Duration::ZERO,
            },
            &registry,
            None,
        );
        // With zero slack, `due == hard deadline`: the flush can only
        // start *after* the deadline has lapsed, so the item must fail
        // locally and never reach upstream.
        let req = request("how many drops?").with_timeout_ms(1);
        let err = gw.handle().complete(&req).unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        assert_eq!(registry.snapshot().total("dio_gateway_upstream_calls_total"), 0.0);
        assert_eq!(registry.snapshot().total("dio_gateway_queue_lapsed_total"), 1.0);
        let log = gw.flush_log();
        assert_eq!(log[0].lapsed, 1);
        assert!(!log[0].within_deadline);
    }

    #[test]
    fn per_item_attribution_reconciles_with_the_registry_bill() {
        let gw = gateway(BatchConfig {
            max_batch: 3,
            max_delay: Duration::from_millis(50),
            min_slack: Duration::from_millis(200),
        });
        let questions = [
            "how many registrations succeeded?",
            "what is the prb utilization?",
            "how many paging requests were seen?",
        ];
        let mut handles = Vec::new();
        for q in questions {
            let h = gw.handle();
            handles.push(std::thread::spawn(move || h.complete(&request(q)).unwrap()));
        }
        let completions: Vec<Completion> =
            handles.into_iter().map(|t| t.join().unwrap()).collect();
        let attributed: usize = completions.iter().map(|c| c.usage.prompt_tokens).sum();
        let ledger = gw.ledger();
        // The per-item prompt shares sum exactly to the combined bill.
        assert_eq!(attributed, ledger.usage().prompt_tokens);
        assert_eq!(ledger.batches(), 1);
    }

    #[test]
    fn whole_call_unavailability_fails_every_item_transiently() {
        struct DownModel;
        impl FoundationModel for DownModel {
            fn name(&self) -> &str {
                "down"
            }
            fn context_window(&self) -> usize {
                8192
            }
            fn pricing(&self) -> Pricing {
                Pricing::gpt4()
            }
            fn complete(&self, _: &CompletionRequest) -> Result<Completion, ModelError> {
                Err(ModelError::Unavailable("outage".into()))
            }
        }
        let gw = ModelGateway::new(
            Box::new(DownModel),
            BatchConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(50),
                min_slack: Duration::from_millis(200),
            },
            &Registry::new(),
            None,
        );
        let mut handles = Vec::new();
        for q in ["a?", "b?"] {
            let h = gw.handle();
            handles.push(std::thread::spawn(move || h.complete(&request(q))));
        }
        for t in handles {
            let err = t.join().unwrap().unwrap_err();
            assert!(err.is_transient());
        }
        // One combined attempt, zero successful queries billed.
        assert_eq!(gw.ledger().queries(), 0);
    }

    #[test]
    fn handle_clones_do_not_share_span_context() {
        let gw = gateway(BatchConfig::default());
        let a = gw.handle();
        let tracer = Tracer::new();
        let ctx = tracer.begin_trace("t");
        a.set_span_ctx(Some(ctx));
        let b = a.clone();
        assert!(b.ctx_cell().lock().unwrap().is_none());
        assert!(a.ctx_cell().lock().unwrap().is_some());
    }
}

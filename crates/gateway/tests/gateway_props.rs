//! Property tests for the gateway's three planes.
//!
//! * **Singleflight** — exactly one computation per key epoch; every
//!   follower either shares the leader's published value or observes
//!   the abandon promptly (never outliving a cancelled leader).
//! * **Batching** — under seeded random arrival schedules, no flush
//!   exceeds the size bound, every request resolves exactly once, and
//!   no request with a deadline is *answered* after that deadline has
//!   lapsed.
//! * **Semantic cache** — a best neighbor below the similarity floor
//!   is never served (the EX-parity admission rule), and every hit's
//!   similarity clears the floor.

use dio_embed::Vector;
use dio_gateway::{
    BatchConfig, FollowerOutcome, Join, ModelGateway, Probe, SemanticCache, SemanticConfig,
    Singleflight,
};
use dio_llm::{
    BatchExpander, CompletionRequest, FoundationModel, ModelProfile, PromptBuilder,
    SimulatedModel, TaskKind,
};
use dio_obs::{Budget, Registry};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- singleflight

proptest! {
    /// One epoch, F followers: the leader computes exactly once and
    /// every follower receives a clone of the published value.
    #[test]
    fn one_computation_per_epoch(followers in 1usize..6, publish_delay_ms in 0u64..6) {
        let sf = Arc::new(Singleflight::<u64>::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let guard = match sf.join("q") {
            Join::Leader(g) => g,
            Join::Follower(_) => unreachable!("first join leads"),
        };
        // Register every follower inside the epoch *before* spawning
        // the waiter threads — joining is non-blocking, so this pins
        // each one to the leader's epoch without a startup race.
        let handles: Vec<_> = (0..followers)
            .map(|_| match sf.join("q") {
                Join::Follower(h) => h,
                Join::Leader(_) => unreachable!("epoch already led"),
            })
            .map(|h| {
                std::thread::spawn(move || h.wait(&Budget::within(Duration::from_secs(10))))
            })
            .collect();
        computations.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(publish_delay_ms));
        guard.publish(42);
        for h in handles {
            prop_assert_eq!(h.join().unwrap(), FollowerOutcome::Ready(42));
        }
        prop_assert_eq!(computations.load(Ordering::SeqCst), 1);
        // The epoch closed; the key is free again.
        prop_assert_eq!(sf.in_flight(), 0);
    }

    /// A cancelled (dropped-without-publish) leader wakes every
    /// follower with `Abandoned` — followers never ride out their own
    /// budgets waiting on a dead epoch.
    #[test]
    fn followers_never_outlive_a_cancelled_leader(
        followers in 1usize..6,
        abandon_delay_ms in 0u64..6,
    ) {
        let sf = Arc::new(Singleflight::<u64>::new());
        let guard = match sf.join("q") {
            Join::Leader(g) => g,
            Join::Follower(_) => unreachable!(),
        };
        let handles: Vec<_> = (0..followers)
            .map(|_| match sf.join("q") {
                Join::Follower(h) => h,
                Join::Leader(_) => unreachable!("epoch already led"),
            })
            .map(|h| {
                std::thread::spawn(move || {
                    let started = Instant::now();
                    let out = h.wait(&Budget::within(Duration::from_secs(30)));
                    (out, started.elapsed())
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(abandon_delay_ms));
        drop(guard);
        for h in handles {
            let (out, waited) = h.join().unwrap();
            prop_assert_eq!(out, FollowerOutcome::Abandoned);
            prop_assert!(waited < Duration::from_secs(5), "waited {:?}", waited);
        }
        prop_assert_eq!(sf.in_flight(), 0);
    }
}

// -------------------------------------------------------------------- batching

fn request(question: &str, timeout_ms: Option<u64>) -> CompletionRequest {
    let prompt = PromptBuilder::new()
        .system("You are a 5G SA operator data analytics copilot.")
        .question(question)
        .task(TaskKind::AnswerDirectly)
        .build(8192, 1000);
    let req = CompletionRequest::paper_defaults(prompt);
    match timeout_ms {
        Some(ms) => req.with_timeout_ms(ms),
        None => req,
    }
}

proptest! {
    /// Seeded random arrival schedule: every request resolves, no
    /// flush exceeds `max_batch`, nothing is lost or double-flushed,
    /// and no deadline-carrying request is *answered* past its
    /// deadline.
    #[test]
    fn batch_bounds_hold_under_random_arrivals(
        n in 2usize..9,
        offsets in prop::collection::vec(0u64..7, 9..10),
        timeouts in prop::collection::vec(0u64..300, 9..10),
        max_batch in 1usize..5,
        max_delay_ms in 1u64..7,
    ) {
        let gw = ModelGateway::new(
            Box::new(BatchExpander::new(SimulatedModel::new(
                ModelProfile::gpt4_sim(),
            ))),
            BatchConfig {
                max_batch,
                max_delay: Duration::from_millis(max_delay_ms),
                min_slack: Duration::from_millis(50),
            },
            &Registry::new(),
            None,
        );
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let h = gw.handle();
                let offset_ms = offsets[i];
                // Below 60 means "no deadline"; otherwise the timeout
                // leaves room for the 50ms flush slack.
                let timeout_ms = if timeouts[i] < 60 { None } else { Some(timeouts[i]) };
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(offset_ms));
                    let enqueued = Instant::now();
                    let deadline = timeout_ms.map(|ms| enqueued + Duration::from_millis(ms));
                    let result =
                        h.complete(&request(&format!("how many drops on slice {i}?"), timeout_ms));
                    (result, deadline, Instant::now())
                })
            })
            .collect();
        for h in handles {
            let (result, deadline, done_at) = h.join().unwrap();
            // Every request resolves; an `Ok` answer must have landed
            // inside its own deadline (`min_slack` pre-books the
            // upstream call time).
            if let (Ok(_), Some(deadline)) = (&result, deadline) {
                prop_assert!(
                    done_at <= deadline,
                    "answered {:?} past the deadline",
                    done_at.duration_since(deadline)
                );
            }
        }
        let log = gw.flush_log();
        prop_assert!(!log.is_empty());
        let mut flushed = 0usize;
        for record in &log {
            prop_assert!(record.size <= max_batch, "flush of {} > {}", record.size, max_batch);
            flushed += record.size + record.lapsed;
        }
        // Conservation: every arrival was either flushed upstream or
        // failed locally as lapsed — none lost, none duplicated.
        prop_assert_eq!(flushed, n);
    }
}

// -------------------------------------------------------------- semantic cache

fn unit(values: &[f32]) -> Arc<Vector> {
    let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
    Arc::new(Vector(values.iter().map(|v| v / norm).collect()))
}

proptest! {
    /// The admission rule, adversarially: compute the best cosine
    /// independently and require the cache's verdict to agree with the
    /// floor — a sub-floor best neighbor is never served, and every
    /// hit's similarity clears the floor.
    #[test]
    fn sub_floor_neighbors_are_never_served(
        floor in 0.0f32..1.0,
        entries in prop::collection::vec(
            prop::collection::vec(-1.0f32..1.0, 4..5),
            1..8,
        ),
        query in prop::collection::vec(-1.0f32..1.0, 4..5),
    ) {
        // Skip degenerate zero-ish vectors (cosine numerically moot).
        if query.iter().all(|v| v.abs() <= 1e-3)
            || entries.iter().any(|e| e.iter().all(|v| v.abs() <= 1e-3))
        {
            return ::core::result::Result::Ok(());
        }
        let cache: SemanticCache<usize> = SemanticCache::new(
            &Registry::new(),
            SemanticConfig { floor, capacity: 64 },
        );
        let vectors: Vec<Arc<Vector>> = entries.iter().map(|e| unit(e)).collect();
        for (i, v) in vectors.iter().enumerate() {
            cache.insert(7, 1, &format!("q{i}"), Arc::clone(v), i);
        }
        let qv = unit(&query);
        let best = vectors
            .iter()
            .map(|v| dio_embed::cosine(v, &qv))
            .fold(f32::NEG_INFINITY, f32::max);
        match cache.probe(7, 1, &qv) {
            Probe::Hit { similarity, value, .. } => {
                prop_assert!(similarity >= floor, "served {} below floor {}", similarity, floor);
                // The served value belongs to the best neighbor.
                let sim_of_value = dio_embed::cosine(&vectors[value], &qv);
                prop_assert!((sim_of_value - best).abs() < 1e-5);
            }
            Probe::Reject { similarity } => {
                prop_assert!(similarity < floor);
                prop_assert!((similarity - best).abs() < 1e-5);
            }
            Probe::Miss => prop_assert!(false, "candidates existed; miss is impossible"),
        }
    }
}

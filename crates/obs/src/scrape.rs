//! Self-scraping: registry snapshots → `dio-tsdb` series + auto-built
//! `dio-catalog` descriptions.
//!
//! This is what makes the telemetry *self-hosting*: the copilot's own
//! instruments become ordinary operator metrics — stored in the same
//! TSDB, documented in the same catalog — so the standard
//! retrieve→generate→execute pipeline can answer natural-language
//! questions about the copilot itself.

use crate::exporter::to_prometheus;
use crate::expo::{parse_exposition, ExpoError, ScrapedKind};
use crate::registry::Registry;
use dio_catalog::{Catalog, CounterType, MetricDef, MetricRole, NetworkFunction, TrafficHint, Unit};
use dio_tsdb::{Labels, MetricStore, Sample};

/// Result of one scrape pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrapeStats {
    /// Samples appended to the store.
    pub appended: usize,
    /// Samples skipped (NaN values, out-of-order timestamps).
    pub skipped: usize,
}

/// Converts registry snapshots into TSDB series and catalog entries.
///
/// Scraping deliberately goes *through the text exposition* — export,
/// parse, ingest — rather than reading the snapshot directly, so every
/// scrape is also a round-trip proof that the exporter emits valid
/// Prometheus text.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsScraper;

impl ObsScraper {
    /// A scraper.
    pub fn new() -> Self {
        ObsScraper
    }

    /// Export `registry`, parse the exposition text back, and append
    /// every sample to `store` at timestamp `ts`. Call repeatedly at
    /// increasing timestamps to build real history for rate queries.
    pub fn scrape(
        &self,
        registry: &Registry,
        ts: i64,
        store: &mut MetricStore,
    ) -> Result<ScrapeStats, ExpoError> {
        self.scrape_text(&to_prometheus(&registry.snapshot()), ts, store)
    }

    /// Ingest already-rendered exposition text (the scrape half alone).
    pub fn scrape_text(
        &self,
        text: &str,
        ts: i64,
        store: &mut MetricStore,
    ) -> Result<ScrapeStats, ExpoError> {
        let mut stats = ScrapeStats::default();
        for family in parse_exposition(text)? {
            for sample in family.samples {
                if sample.value.is_nan() {
                    stats.skipped += 1;
                    continue;
                }
                let mut pairs: Vec<(String, String)> =
                    Vec::with_capacity(1 + sample.labels.len());
                pairs.push(("__name__".to_string(), sample.name));
                pairs.extend(sample.labels);
                match store.append(Labels::from_pairs(pairs), Sample::new(ts, sample.value)) {
                    Ok(()) => stats.appended += 1,
                    Err(_) => stats.skipped += 1,
                }
            }
        }
        Ok(stats)
    }

    /// Build a catalog describing every instrument the registry would
    /// export: one [`MetricDef`] per counter/gauge family and per
    /// histogram sub-series (`_bucket`/`_sum`/`_count`), each carrying
    /// the instrument's help text so retrieval can match questions
    /// against it.
    pub fn catalog(&self, registry: &Registry) -> Catalog {
        let text = to_prometheus(&registry.snapshot());
        let families = parse_exposition(&text).expect("exporter output must parse");
        let mut metrics = Vec::new();
        for family in &families {
            let def = |name: &str, description: String, counter_type: CounterType| {
                let role = match counter_type {
                    CounterType::Gauge => MetricRole::ActiveGauge,
                    _ => MetricRole::Event {
                        event: "self_observation".to_string(),
                    },
                };
                MetricDef {
                    name: name.to_string(),
                    nf: NetworkFunction::Dio,
                    service: "obs".to_string(),
                    procedure: family.name.clone(),
                    procedure_display: family.name.replace('_', " "),
                    role,
                    counter_type,
                    unit: if family.name.contains("micros") {
                        Unit::Milliseconds
                    } else {
                        Unit::Count
                    },
                    description,
                    spec_ref: "dio-obs self-telemetry".to_string(),
                    traffic: TrafficHint {
                        base_rate: 0.0,
                        couple_ratio: None,
                    },
                }
            };
            match family.kind {
                ScrapedKind::Histogram => {
                    metrics.push(def(
                        &format!("{}_sum", family.name),
                        format!("{} Accumulated sum over every observation.", family.help),
                        CounterType::Counter64,
                    ));
                    metrics.push(def(
                        &format!("{}_count", family.name),
                        format!(
                            "The number of observations recorded by the {} histogram.",
                            family.name.replace('_', " ")
                        ),
                        CounterType::Counter64,
                    ));
                    metrics.push(def(
                        &format!("{}_bucket", family.name),
                        format!(
                            "Cumulative per-bucket observation tallies (le upper bounds) of the {} histogram.",
                            family.name.replace('_', " ")
                        ),
                        CounterType::Counter64,
                    ));
                }
                ScrapedKind::Gauge => {
                    metrics.push(def(&family.name.clone(), family.help.clone(), CounterType::Gauge));
                }
                _ => {
                    metrics.push(def(
                        &family.name.clone(),
                        family.help.clone(),
                        CounterType::Counter64,
                    ));
                }
            }
        }
        Catalog {
            metrics,
            groups: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Buckets;

    fn seeded_registry() -> Registry {
        let r = Registry::new();
        r.counter("dio_copilot_repairs_total", "Repair rounds the copilot ran.")
            .add(5.0);
        r.counter_with(
            "dio_llm_model_calls_total",
            "Completion calls made to the foundation model.",
            &[("outcome", "ok")],
        )
        .add(12.0);
        r.gauge("dio_copilot_degradation_level", "Current degradation level.")
            .set(1.0);
        let h = r.histogram(
            "dio_copilot_ask_duration_micros",
            "Microseconds spent answering questions end to end.",
            &Buckets::latency_micros(),
        );
        h.observe(2500.0);
        h.observe(90000.0);
        r
    }

    #[test]
    fn scrape_lands_every_sample_in_the_store() {
        let r = seeded_registry();
        let mut store = MetricStore::new();
        let stats = ObsScraper::new().scrape(&r, 60_000, &mut store).unwrap();
        assert_eq!(stats.skipped, 0);
        // 2 counters + 1 gauge + histogram (10 buckets + inf + sum + count)
        assert_eq!(stats.appended, 3 + 13);
        assert_eq!(store.series_count(), stats.appended);
        let names = store.metric_names();
        assert!(names.contains(&"dio_copilot_repairs_total"));
        assert!(names.contains(&"dio_copilot_ask_duration_micros_sum"));
    }

    #[test]
    fn repeated_scrapes_build_history() {
        let r = seeded_registry();
        let mut store = MetricStore::new();
        let scraper = ObsScraper::new();
        scraper.scrape(&r, 60_000, &mut store).unwrap();
        r.counter("dio_copilot_repairs_total", "Repair rounds the copilot ran.")
            .inc();
        scraper.scrape(&r, 120_000, &mut store).unwrap();
        let sel = store.select(
            &[dio_tsdb::Matcher::eq("__name__", "dio_copilot_repairs_total")],
        );
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].samples().len(), 2);
        assert_eq!(sel[0].samples()[1].value, 6.0);
    }

    #[test]
    fn rescrape_at_same_timestamp_skips_not_fails() {
        let r = seeded_registry();
        let mut store = MetricStore::new();
        let scraper = ObsScraper::new();
        let first = scraper.scrape(&r, 60_000, &mut store).unwrap();
        let second = scraper.scrape(&r, 60_000, &mut store).unwrap();
        assert_eq!(second.appended, 0);
        assert_eq!(second.skipped, first.appended);
    }

    #[test]
    fn catalog_covers_every_exported_instrument() {
        let r = seeded_registry();
        let catalog = ObsScraper::new().catalog(&r);
        let names: Vec<&str> = catalog.metrics.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"dio_copilot_repairs_total"));
        assert!(names.contains(&"dio_llm_model_calls_total"));
        assert!(names.contains(&"dio_copilot_degradation_level"));
        assert!(names.contains(&"dio_copilot_ask_duration_micros_sum"));
        assert!(names.contains(&"dio_copilot_ask_duration_micros_count"));
        assert!(names.contains(&"dio_copilot_ask_duration_micros_bucket"));
        for m in &catalog.metrics {
            assert_eq!(m.nf, NetworkFunction::Dio);
            assert!(!m.description.is_empty(), "{} lacks a description", m.name);
        }
        let gauge = catalog.metrics.iter().find(|m| m.name == "dio_copilot_degradation_level").unwrap();
        assert_eq!(gauge.counter_type, CounterType::Gauge);
        assert_eq!(gauge.role, MetricRole::ActiveGauge);
        // Help text flows into the description so retrieval can match it.
        let repairs = catalog.metrics.iter().find(|m| m.name == "dio_copilot_repairs_total").unwrap();
        assert!(repairs.description.contains("Repair rounds"));
    }

    #[test]
    fn scraped_store_answers_sum_queries_about_the_registry() {
        // The end-to-end contract in miniature: registry → scrape →
        // instant query over the scraped store equals the live total.
        let r = seeded_registry();
        let mut store = MetricStore::new();
        ObsScraper::new().scrape(&r, 60_000, &mut store).unwrap();
        let sel = store.select(&[dio_tsdb::Matcher::eq(
            "__name__",
            "dio_llm_model_calls_total",
        )]);
        let total: f64 = sel
            .iter()
            .filter_map(|s| s.samples().last().copied())
            .map(|s| s.value)
            .sum();
        assert_eq!(total, r.snapshot().total("dio_llm_model_calls_total"));
    }
}

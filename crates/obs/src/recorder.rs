//! Tail-sampling flight recorder: a byte-budgeted ring of complete
//! span trees for *interesting* traces.
//!
//! Head sampling (keep every Nth trace) is blind to exactly the
//! requests an operator wants: the slow tail, the errors, the sheds,
//! the failovers. The recorder decides at trace *completion* — when
//! status and duration are known — and retains only traces that are:
//!
//! * not `Ok` (errored, shed, degraded, or deadline-exceeded),
//! * failed-over (carry a [`FAILOVER_SPAN`] span), or
//! * slow: total duration at or above the rolling p99 of recently
//!   finished traces (once enough samples accumulated).
//!
//! Retention is bounded by a byte budget measured on the serialized
//! JSON; oldest retained traces are evicted first. Partial trees
//! (unfinished, or with orphan spans) are never retained — a dump is
//! only useful when the causal structure is intact.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::span::TraceStatus;
use crate::tracer::TraceRecord;

/// Span name that marks a trace as having ridden through a primary
/// failure (recorded by `dio-cluster` on the promoted request).
pub const FAILOVER_SPAN: &str = "failover_promotion";

/// Tuning for the recorder's retention policy.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Ceiling on the summed serialized size of retained traces.
    pub byte_budget: usize,
    /// Rolling window of recent trace durations the p99 slow threshold
    /// is computed over.
    pub window: usize,
    /// Minimum durations observed before the slow threshold applies
    /// (cold p99 over 3 samples would retain everything).
    pub min_samples: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            byte_budget: 1 << 20, // 1 MiB
            window: 512,
            min_samples: 32,
        }
    }
}

/// One retained trace with its retention verdict.
#[derive(Debug, Clone, Serialize)]
pub struct RetainedTrace {
    /// Why it was kept: `error`, `shed`, `degraded`,
    /// `deadline_exceeded`, `failed_over`, or `slow`.
    pub reason: String,
    /// Serialized size charged against the byte budget.
    pub bytes: usize,
    /// The complete trace.
    pub record: TraceRecord,
}

#[derive(Debug, Default)]
struct RecorderInner {
    cfg: RecorderConfig,
    retained: VecDeque<RetainedTrace>,
    bytes_used: usize,
    durations: VecDeque<u64>,
    offered: u64,
    rejected_partial: u64,
}

impl RecorderInner {
    fn rolling_p99(&self) -> Option<u64> {
        if self.durations.len() < self.cfg.min_samples {
            return None;
        }
        let mut sorted: Vec<u64> = self.durations.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }
}

/// Shared flight recorder. Cheap to clone; clones share the ring.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl FlightRecorder {
    /// A recorder with the default config (1 MiB budget).
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// A recorder with explicit tuning.
    pub fn with_config(cfg: RecorderConfig) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                cfg,
                ..RecorderInner::default()
            })),
        }
    }

    /// Offer a finished trace. Returns the retention reason when the
    /// trace was kept, `None` when it was sampled away.
    ///
    /// Every *complete* offer feeds the rolling duration window,
    /// retained or not — the slow threshold must track the whole
    /// population, not just the survivors.
    pub fn offer(&self, record: &TraceRecord) -> Option<String> {
        let mut inner = self.inner.lock().unwrap();
        inner.offered += 1;
        // Partial trees are never retained and never counted: an
        // unfinished trace has no meaningful total duration, and an
        // orphaned one has no trustworthy structure.
        if !record.is_complete() {
            inner.rejected_partial += 1;
            return None;
        }
        let p99 = inner.rolling_p99();
        inner.durations.push_back(record.total_micros);
        if inner.durations.len() > inner.cfg.window {
            inner.durations.pop_front();
        }
        let reason = match record.status {
            TraceStatus::Error => Some("error"),
            TraceStatus::Shed => Some("shed"),
            TraceStatus::Degraded => Some("degraded"),
            TraceStatus::DeadlineExceeded => Some("deadline_exceeded"),
            TraceStatus::Ok => {
                if record.has_span(FAILOVER_SPAN) {
                    Some("failed_over")
                } else if p99.is_some_and(|p| record.total_micros >= p) {
                    Some("slow")
                } else {
                    None
                }
            }
        }?;
        let bytes = serde_json::to_string(record).map(|s| s.len()).unwrap_or(0);
        if bytes == 0 || bytes > inner.cfg.byte_budget {
            // A trace bigger than the whole budget can never fit.
            return None;
        }
        inner.retained.push_back(RetainedTrace {
            reason: reason.to_string(),
            bytes,
            record: record.clone(),
        });
        inner.bytes_used += bytes;
        while inner.bytes_used > inner.cfg.byte_budget {
            if let Some(evicted) = inner.retained.pop_front() {
                inner.bytes_used -= evicted.bytes;
            } else {
                break;
            }
        }
        Some(reason.to_string())
    }

    /// Snapshot of the retained traces, oldest first.
    pub fn retained(&self) -> Vec<RetainedTrace> {
        self.inner.lock().unwrap().retained.iter().cloned().collect()
    }

    /// Retained traces kept for `reason`.
    pub fn retained_for(&self, reason: &str) -> Vec<RetainedTrace> {
        self.retained()
            .into_iter()
            .filter(|r| r.reason == reason)
            .collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().retained.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn bytes_used(&self) -> usize {
        self.inner.lock().unwrap().bytes_used
    }

    /// The configured byte ceiling.
    pub fn byte_budget(&self) -> usize {
        self.inner.lock().unwrap().cfg.byte_budget
    }

    /// Current rolling p99 threshold, once warmed up.
    pub fn rolling_p99(&self) -> Option<u64> {
        self.inner.lock().unwrap().rolling_p99()
    }

    /// (offered, rejected-as-partial) counters since construction.
    pub fn offer_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.offered, inner.rejected_partial)
    }

    /// The retained traces as one JSON document (array of
    /// `{reason, bytes, record}` objects, oldest first).
    pub fn dump_json(&self) -> String {
        serde_json::to_string_pretty(&self.retained()).unwrap_or_else(|_| "[]".to_string())
    }

    /// Write [`FlightRecorder::dump_json`] to `path`, creating parent
    /// directories. Returns the number of traces written.
    pub fn dump(&self, path: &Path) -> std::io::Result<usize> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let retained = self.retained();
        let mut f = std::fs::File::create(path)?;
        f.write_all(
            serde_json::to_string_pretty(&retained)
                .unwrap_or_else(|_| "[]".to_string())
                .as_bytes(),
        )?;
        Ok(retained.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanRecord, TraceStatus};

    fn complete_trace(id: u64, total_micros: u64, status: TraceStatus) -> TraceRecord {
        TraceRecord {
            id,
            label: format!("trace {id}"),
            root_span_id: 1,
            status,
            total_micros,
            finished: true,
            spans: vec![SpanRecord {
                span_id: 1,
                parent_span_id: None,
                name: "request".into(),
                start_micros: 0,
                micros: total_micros,
                attrs: vec![("status".into(), status.slug().into())],
            }],
            events: Vec::new(),
        }
    }

    #[test]
    fn retains_errors_sheds_and_degraded_but_not_fast_ok() {
        let rec = FlightRecorder::new();
        assert!(rec.offer(&complete_trace(1, 100, TraceStatus::Ok)).is_none());
        assert_eq!(
            rec.offer(&complete_trace(2, 100, TraceStatus::Error)).as_deref(),
            Some("error")
        );
        assert_eq!(
            rec.offer(&complete_trace(3, 100, TraceStatus::Shed)).as_deref(),
            Some("shed")
        );
        assert_eq!(
            rec.offer(&complete_trace(4, 100, TraceStatus::Degraded)).as_deref(),
            Some("degraded")
        );
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn retains_failed_over_traces() {
        let rec = FlightRecorder::new();
        let mut t = complete_trace(1, 100, TraceStatus::Ok);
        t.spans.push(SpanRecord {
            span_id: 2,
            parent_span_id: Some(1),
            name: FAILOVER_SPAN.into(),
            start_micros: 10,
            micros: 500,
            attrs: vec![("shard".into(), "3".into())],
        });
        assert_eq!(rec.offer(&t).as_deref(), Some("failed_over"));
    }

    #[test]
    fn slow_threshold_needs_warmup_then_catches_tail() {
        let rec = FlightRecorder::with_config(RecorderConfig {
            min_samples: 10,
            ..RecorderConfig::default()
        });
        // 10 fast OKs warm the window; none retained.
        for i in 0..10 {
            assert!(rec.offer(&complete_trace(i, 100, TraceStatus::Ok)).is_none());
        }
        assert_eq!(rec.rolling_p99(), Some(100));
        // An outlier above the rolling p99 is retained as slow.
        assert_eq!(
            rec.offer(&complete_trace(99, 10_000, TraceStatus::Ok)).as_deref(),
            Some("slow")
        );
    }

    #[test]
    fn partial_trees_are_never_retained() {
        let rec = FlightRecorder::new();
        let mut unfinished = complete_trace(1, 100, TraceStatus::Error);
        unfinished.finished = false;
        assert!(rec.offer(&unfinished).is_none());
        let mut orphaned = complete_trace(2, 100, TraceStatus::Error);
        orphaned.spans.push(SpanRecord {
            span_id: 9,
            parent_span_id: Some(777), // parent never recorded
            name: "lost".into(),
            start_micros: 0,
            micros: 1,
            attrs: Vec::new(),
        });
        assert!(rec.offer(&orphaned).is_none());
        assert!(rec.is_empty());
        assert_eq!(rec.offer_stats(), (2, 2));
    }

    #[test]
    fn byte_budget_evicts_oldest() {
        let one = serde_json::to_string(&complete_trace(0, 100, TraceStatus::Error))
            .unwrap()
            .len();
        let rec = FlightRecorder::with_config(RecorderConfig {
            byte_budget: one * 2 + one / 2, // room for two, not three
            ..RecorderConfig::default()
        });
        for i in 0..5 {
            rec.offer(&complete_trace(i, 100, TraceStatus::Error));
        }
        assert!(rec.bytes_used() <= rec.byte_budget());
        assert_eq!(rec.len(), 2);
        let ids: Vec<u64> = rec.retained().iter().map(|r| r.record.id).collect();
        assert_eq!(ids, vec![3, 4]); // oldest evicted first
    }

    #[test]
    fn dump_json_round_trips_reasons() {
        let rec = FlightRecorder::new();
        rec.offer(&complete_trace(1, 100, TraceStatus::Error));
        let doc = rec.dump_json();
        assert!(doc.contains("\"reason\""));
        assert!(doc.contains("error"));
        assert!(doc.contains("\"span_id\""));
    }
}

//! Request budgets: an absolute deadline plus a cooperative
//! cancellation token, carried by value through every plane.
//!
//! A [`Budget`] travels alongside the [`crate::SpanContext`]: the serve
//! tier stamps one at admission, workers check it between pipeline
//! stages, the copilot caps retries and backoff by the remaining
//! budget, model calls derive per-call timeouts from it, and hedged
//! shard reads use its token for first-wins cancellation of the loser.
//!
//! All deadline arithmetic is *saturating*: once the deadline has
//! passed, [`Budget::remaining`] reports `Duration::ZERO` — it never
//! panics or wraps, no matter how late the caller checks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An absolute deadline plus a shared cancellation token.
///
/// Cheap to clone: clones share the cancellation token (cancelling one
/// cancels all) and copy the deadline. An unbounded budget (no
/// deadline) never expires on its own but can still be cancelled.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unbounded()
    }
}

impl Budget {
    /// A budget with no deadline. It only expires if cancelled.
    pub fn unbounded() -> Self {
        Budget {
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A budget expiring `allowance` from now.
    pub fn within(allowance: Duration) -> Self {
        Budget::with_deadline(Instant::now() + allowance)
    }

    /// A budget expiring at the absolute instant `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The absolute deadline, `None` for an unbounded budget.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline: `None` for an unbounded budget,
    /// `Some(Duration::ZERO)` once the deadline passed (saturating —
    /// never negative, never a panic) or the budget was cancelled.
    pub fn remaining(&self) -> Option<Duration> {
        if self.is_cancelled() {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// True once the budget cannot fund more work: cancelled, or the
    /// deadline passed. An unbounded, uncancelled budget never expires.
    pub fn expired(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        match self.deadline {
            Some(d) => d.saturating_duration_since(Instant::now()) == Duration::ZERO,
            None => false,
        }
    }

    /// Cap `want` by the remaining budget (saturating). Unbounded
    /// budgets return `want` unchanged; expired ones `Duration::ZERO`.
    pub fn cap(&self, want: Duration) -> Duration {
        match self.remaining() {
            Some(left) => want.min(left),
            None => {
                if self.is_cancelled() {
                    Duration::ZERO
                } else {
                    want
                }
            }
        }
    }

    /// Signal cooperative cancellation to every clone of this budget.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// True once any clone called [`Budget::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires_until_cancelled() {
        let b = Budget::unbounded();
        assert!(!b.expired());
        assert_eq!(b.remaining(), None);
        assert_eq!(b.cap(Duration::from_secs(5)), Duration::from_secs(5));
        b.cancel();
        assert!(b.expired());
        assert_eq!(b.cap(Duration::from_secs(5)), Duration::ZERO);
    }

    #[test]
    fn past_deadline_saturates_to_zero() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(b.expired());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        assert_eq!(b.cap(Duration::from_millis(50)), Duration::ZERO);
    }

    #[test]
    fn clones_share_the_cancellation_token() {
        let b = Budget::within(Duration::from_secs(60));
        let clone = b.clone();
        assert!(!clone.expired());
        b.cancel();
        assert!(clone.expired());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cap_shrinks_toward_the_deadline() {
        let b = Budget::within(Duration::from_millis(10));
        assert!(b.cap(Duration::from_secs(5)) <= Duration::from_millis(10));
    }
}

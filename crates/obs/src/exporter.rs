//! Prometheus text exposition (format 0.0.4) of a registry snapshot.

use crate::registry::{InstrumentKind, SeriesValue, Snapshot};

/// Render `snapshot` in the Prometheus text format: `# HELP` and
/// `# TYPE` per family, then one line per series; histograms expand to
/// cumulative `_bucket{le=...}` lines plus `_sum` and `_count`.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snapshot.families {
        out.push_str(&format!("# HELP {} {}\n", fam.name, escape_help(&fam.help)));
        out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.type_keyword()));
        for series in &fam.series {
            match &series.value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                    out.push_str(&fam.name);
                    out.push_str(&render_labels(&series.labels, None));
                    out.push(' ');
                    out.push_str(&fmt_value(*v));
                    out.push('\n');
                }
                SeriesValue::Histogram(h) => {
                    debug_assert_eq!(fam.kind, InstrumentKind::Histogram);
                    for (bound, cumulative) in &h.buckets {
                        out.push_str(&fam.name);
                        out.push_str("_bucket");
                        out.push_str(&render_labels(&series.labels, Some(*bound)));
                        out.push(' ');
                        out.push_str(&fmt_value(*cumulative as f64));
                        out.push('\n');
                    }
                    out.push_str(&fam.name);
                    out.push_str("_sum");
                    out.push_str(&render_labels(&series.labels, None));
                    out.push(' ');
                    out.push_str(&fmt_value(h.sum));
                    out.push('\n');
                    out.push_str(&fam.name);
                    out.push_str("_count");
                    out.push_str(&render_labels(&series.labels, None));
                    out.push(' ');
                    out.push_str(&fmt_value(h.count as f64));
                    out.push('\n');
                }
            }
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], le: Option<f64>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(bound) = le {
        parts.push(format!("le=\"{}\"", fmt_bound(bound)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape HELP text: backslash and newline (quotes stay literal).
pub fn escape_help(h: &str) -> String {
    let mut out = String::with_capacity(h.len());
    for c in h.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a sample value: integral values print without a decimal
/// point (`17`, not `17.0`); specials use Prometheus spellings.
pub fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_bound(b: f64) -> String {
    if b.is_infinite() {
        "+Inf".to_string()
    } else {
        fmt_value(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Buckets, Registry};

    #[test]
    fn exports_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter_with("asks_total", "Total asks.", &[("mode", "flat")])
            .add(3.0);
        r.gauge("depth", "Queue depth.").set(2.5);
        let h = r.histogram("lat_micros", "Latency.", &Buckets::explicit(vec![100.0, 400.0]));
        h.observe(50.0);
        h.observe(300.0);
        h.observe(9000.0);
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("# HELP asks_total Total asks.\n"));
        assert!(text.contains("# TYPE asks_total counter\n"));
        assert!(text.contains("asks_total{mode=\"flat\"} 3\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth 2.5\n"));
        assert!(text.contains("lat_micros_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("lat_micros_bucket{le=\"400\"} 2\n"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_micros_sum 9350\n"));
        assert!(text.contains("lat_micros_count 3\n"));
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        let r = Registry::new();
        r.counter_with("esc_total", "Esc.", &[("q", "say \"hi\"\nback\\slash")])
            .inc();
        let text = to_prometheus(&r.snapshot());
        assert!(
            text.contains("esc_total{q=\"say \\\"hi\\\"\\nback\\\\slash\"} 1\n"),
            "bad escaping: {text}"
        );
    }

    #[test]
    fn escapes_help_text() {
        assert_eq!(escape_help("one\ntwo\\three"), "one\\ntwo\\\\three");
        let r = Registry::new();
        r.counter("h_total", "line one\nline two").inc();
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("# HELP h_total line one\\nline two\n"));
    }

    #[test]
    fn formats_values() {
        assert_eq!(fmt_value(17.0), "17");
        assert_eq!(fmt_value(-3.0), "-3");
        assert_eq!(fmt_value(2.5), "2.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
    }
}

//! Parser for the Prometheus text exposition format (0.0.4).
//!
//! This is the scraper's half of the loop: [`crate::exporter`] renders,
//! this module parses back. Round-tripping through both is asserted in
//! CI, so the exporter can never drift into producing text the scraper
//! cannot ingest.

use std::collections::HashMap;
use std::fmt;

/// Parse failure with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpoError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ExpoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExpoError {}

/// Kind declared by a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrapedKind {
    /// `counter`
    Counter,
    /// `gauge`
    Gauge,
    /// `histogram`
    Histogram,
    /// No `# TYPE` line seen.
    Untyped,
}

/// One sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedSample {
    /// Full sample name (`family`, `family_bucket`, `family_sum`, …).
    pub name: String,
    /// Label pairs in appearance order, unescaped.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

/// One family: HELP/TYPE metadata plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedFamily {
    /// Family name.
    pub name: String,
    /// HELP text (unescaped), empty when absent.
    pub help: String,
    /// Declared kind.
    pub kind: ScrapedKind,
    /// Samples in appearance order.
    pub samples: Vec<ScrapedSample>,
}

/// Parse an exposition document into families. Histogram sub-samples
/// (`_bucket`/`_sum`/`_count`) are attached to their declaring family;
/// samples with no metadata become untyped families.
pub fn parse_exposition(text: &str) -> Result<Vec<ScrapedFamily>, ExpoError> {
    let mut families: Vec<ScrapedFamily> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();

    let ensure = |families: &mut Vec<ScrapedFamily>,
                      index: &mut HashMap<String, usize>,
                      name: &str|
     -> usize {
        if let Some(&i) = index.get(name) {
            return i;
        }
        families.push(ScrapedFamily {
            name: name.to_string(),
            help: String::new(),
            kind: ScrapedKind::Untyped,
            samples: Vec::new(),
        });
        index.insert(name.to_string(), families.len() - 1);
        families.len() - 1
    };

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = match rest.split_once(' ') {
                Some((n, h)) => (n, h),
                None => (rest, ""),
            };
            let i = ensure(&mut families, &mut index, name);
            families[i].help = unescape_help(help);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or_else(|| ExpoError {
                line: lineno,
                message: "TYPE line missing kind".into(),
            })?;
            let kind = match kind.trim() {
                "counter" => ScrapedKind::Counter,
                "gauge" => ScrapedKind::Gauge,
                "histogram" => ScrapedKind::Histogram,
                other => {
                    return Err(ExpoError {
                        line: lineno,
                        message: format!("unknown TYPE '{other}'"),
                    })
                }
            };
            let i = ensure(&mut families, &mut index, name);
            families[i].kind = kind;
            continue;
        }
        if line.starts_with('#') {
            continue; // ordinary comment
        }

        let sample = parse_sample_line(line, lineno)?;
        // Attach histogram sub-samples to their declaring family.
        let family_name = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = sample.name.strip_suffix(suffix)?;
                let &i = index.get(base)?;
                (families[i].kind == ScrapedKind::Histogram).then(|| base.to_string())
            })
            .unwrap_or_else(|| sample.name.clone());
        let i = ensure(&mut families, &mut index, &family_name);
        families[i].samples.push(sample);
    }
    Ok(families)
}

fn parse_sample_line(line: &str, lineno: usize) -> Result<ScrapedSample, ExpoError> {
    let err = |message: String| ExpoError { line: lineno, message };
    let bytes = line.as_bytes();
    let mut pos = 0;

    while pos < bytes.len() && !matches!(bytes[pos], b'{' | b' ' | b'\t') {
        pos += 1;
    }
    if pos == 0 {
        return Err(err("missing sample name".into()));
    }
    let name = line[..pos].to_string();

    let mut labels = Vec::new();
    if pos < bytes.len() && bytes[pos] == b'{' {
        pos += 1;
        loop {
            while pos < bytes.len() && bytes[pos] == b' ' {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'}' {
                pos += 1;
                break;
            }
            let key_start = pos;
            while pos < bytes.len() && bytes[pos] != b'=' {
                pos += 1;
            }
            if pos == bytes.len() {
                return Err(err("unterminated label block".into()));
            }
            let key = line[key_start..pos].trim().to_string();
            pos += 1; // '='
            if pos >= bytes.len() || bytes[pos] != b'"' {
                return Err(err(format!("label '{key}' value is not quoted")));
            }
            pos += 1; // opening quote
            let mut value = String::new();
            loop {
                if pos >= bytes.len() {
                    return Err(err(format!("unterminated value for label '{key}'")));
                }
                match bytes[pos] {
                    b'"' => {
                        pos += 1;
                        break;
                    }
                    b'\\' => {
                        pos += 1;
                        if pos >= bytes.len() {
                            return Err(err("dangling escape in label value".into()));
                        }
                        match bytes[pos] {
                            b'\\' => {
                                value.push('\\');
                                pos += 1;
                            }
                            b'"' => {
                                value.push('"');
                                pos += 1;
                            }
                            b'n' => {
                                value.push('\n');
                                pos += 1;
                            }
                            _ => {
                                // Unknown escape: keep both characters,
                                // advancing a whole UTF-8 character — a
                                // byte-wise skip can land mid-character
                                // and panic on the next slice.
                                value.push('\\');
                                let ch = line[pos..].chars().next().unwrap();
                                value.push(ch);
                                pos += ch.len_utf8();
                            }
                        }
                    }
                    _ => {
                        // Advance one full UTF-8 character.
                        let ch = line[pos..].chars().next().unwrap();
                        value.push(ch);
                        pos += ch.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            while pos < bytes.len() && bytes[pos] == b' ' {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b',' {
                pos += 1;
            }
        }
    }

    let rest = line[pos..].trim();
    if rest.is_empty() {
        return Err(err(format!("sample '{name}' has no value")));
    }
    // Value, then optional timestamp (ignored).
    let value_token = rest.split_whitespace().next().unwrap();
    let value = parse_value(value_token)
        .ok_or_else(|| err(format!("bad sample value '{value_token}'")))?;
    Ok(ScrapedSample { name, labels, value })
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => token.parse::<f64>().ok(),
    }
}

fn unescape_help(h: &str) -> String {
    let mut out = String::with_capacity(h.len());
    let mut chars = h.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exporter::to_prometheus;
    use crate::registry::{Buckets, Registry};

    #[test]
    fn parses_simple_families() {
        let text = "\
# HELP asks_total Total asks.
# TYPE asks_total counter
asks_total{mode=\"flat\"} 3
asks_total{mode=\"ivf\"} 2.5
# TYPE depth gauge
depth 7
untyped_thing 1 1700000000
";
        let fams = parse_exposition(text).unwrap();
        assert_eq!(fams.len(), 3);
        assert_eq!(fams[0].name, "asks_total");
        assert_eq!(fams[0].kind, ScrapedKind::Counter);
        assert_eq!(fams[0].help, "Total asks.");
        assert_eq!(fams[0].samples.len(), 2);
        assert_eq!(fams[0].samples[1].value, 2.5);
        assert_eq!(fams[1].kind, ScrapedKind::Gauge);
        assert_eq!(fams[2].kind, ScrapedKind::Untyped);
        assert_eq!(fams[2].samples[0].value, 1.0); // timestamp ignored
    }

    #[test]
    fn attaches_histogram_subsamples_to_family() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"100\"} 1
lat_bucket{le=\"+Inf\"} 3
lat_sum 9350
lat_count 3
lat_suffixless 9
";
        let fams = parse_exposition(text).unwrap();
        assert_eq!(fams[0].name, "lat");
        assert_eq!(fams[0].samples.len(), 4);
        assert_eq!(fams[0].samples[1].labels[0].1, "+Inf");
        assert!(fams[0].samples[1].value.is_finite());
        // Non-histogram-suffixed name becomes its own family.
        assert_eq!(fams[1].name, "lat_suffixless");
    }

    #[test]
    fn unescapes_label_values() {
        let text = "m{q=\"say \\\"hi\\\"\\nback\\\\slash\",u=\"a,b\"} 1\n";
        let fams = parse_exposition(text).unwrap();
        let labels = &fams[0].samples[0].labels;
        assert_eq!(labels[0], ("q".into(), "say \"hi\"\nback\\slash".into()));
        assert_eq!(labels[1], ("u".into(), "a,b".into()));
    }

    #[test]
    fn multibyte_unknown_escape_is_kept_not_panicked_on() {
        // Regression: `\é` used to advance one byte past the backslash,
        // landing mid-character and panicking on the next slice.
        let fams = parse_exposition("m{k=\"\\é\"} 1\n").unwrap();
        assert_eq!(fams[0].samples[0].labels[0].1, "\\é");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("name_only\n").is_err());
        assert!(parse_exposition("m{k=unquoted} 1\n").is_err());
        assert!(parse_exposition("m{k=\"open} 1\n").is_err());
        assert!(parse_exposition("m not_a_number\n").is_err());
        assert!(parse_exposition("# TYPE m summary\n").is_err());
        let e = parse_exposition("ok 1\nbad{\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn special_values_parse() {
        let fams = parse_exposition("a +Inf\nb -Inf\nc NaN\n").unwrap();
        assert!(fams[0].samples[0].value.is_infinite());
        assert!(fams[1].samples[0].value < 0.0);
        assert!(fams[2].samples[0].value.is_nan());
    }

    #[test]
    fn round_trips_exporter_output() {
        let r = Registry::new();
        r.counter_with("rt_calls_total", "Calls with \"tricky\"\\chars\nand lines.", &[("model", "gpt4\nsim")])
            .add(7.0);
        r.gauge("rt_level", "Level.").set(-1.25);
        let h = r.histogram("rt_lat_micros", "Latency.", &Buckets::latency_micros());
        h.observe(250.0);
        h.observe(5000.0);
        let text = to_prometheus(&r.snapshot());
        let fams = parse_exposition(&text).unwrap();
        assert_eq!(fams.len(), 3);
        let calls = fams.iter().find(|f| f.name == "rt_calls_total").unwrap();
        assert_eq!(calls.kind, ScrapedKind::Counter);
        assert_eq!(calls.help, "Calls with \"tricky\"\\chars\nand lines.");
        assert_eq!(calls.samples[0].labels[0], ("model".into(), "gpt4\nsim".into()));
        assert_eq!(calls.samples[0].value, 7.0);
        let lat = fams.iter().find(|f| f.name == "rt_lat_micros").unwrap();
        assert_eq!(lat.kind, ScrapedKind::Histogram);
        // 10 finite buckets + the +Inf bucket + _sum + _count
        assert_eq!(lat.samples.len(), 13);
        let count = lat.samples.iter().find(|s| s.name == "rt_lat_micros_count").unwrap();
        assert_eq!(count.value, 2.0);
    }
}

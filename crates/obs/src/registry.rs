//! Lock-free-ish metrics registry: counters, gauges, histograms.
//!
//! Registration (first sight of a family or a label set) takes a write
//! lock; the hot path — incrementing through a handle — is a single
//! atomic op on an [`Arc`]'d cell, so instrumented code never contends
//! on the registry itself. Values are `f64` stored as bit patterns in
//! `AtomicU64` (CAS loop for adds, plain store for gauge sets);
//! histogram buckets are plain `AtomicU64` event counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotone sum of events.
    Counter,
    /// Point-in-time level, may go down.
    Gauge,
    /// Distribution of observations over fixed buckets.
    Histogram,
}

impl InstrumentKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn type_keyword(&self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "histogram",
        }
    }
}

/// Upper bucket bounds for a histogram (finite, strictly increasing).
/// An implicit `+Inf` bucket is always appended.
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets(Vec<f64>);

impl Buckets {
    /// Explicit bounds. Panics unless finite and strictly increasing.
    pub fn explicit(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bucket bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite (+Inf is implicit)"
        );
        Buckets(bounds)
    }

    /// `count` bounds starting at `start`, each `factor` times the last.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && count >= 1);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Buckets::explicit(bounds)
    }

    /// `count` bounds starting at `start`, each `width` apart.
    pub fn linear(start: f64, width: f64, count: usize) -> Self {
        assert!(width > 0.0 && count >= 1);
        let bounds = (0..count).map(|i| start + width * i as f64).collect();
        Buckets::explicit(bounds)
    }

    /// Default latency buckets in microseconds: 100µs … ~26s, ×4 steps.
    /// Wide enough for both in-process stage timings and whole asks.
    pub fn latency_micros() -> Self {
        Buckets::exponential(100.0, 4.0, 10)
    }

    /// Ten equal buckets over `(0, 1]` — similarity scores, ratios.
    pub fn unit_fractions() -> Self {
        Buckets::linear(0.1, 0.1, 10)
    }

    /// The finite upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0
    }
}

/// One stored series: the atomics behind every handle for a given
/// (family, label set) pair.
#[derive(Debug, Default)]
struct SeriesCell {
    /// Counter/gauge value as `f64` bits.
    value_bits: AtomicU64,
    /// Histogram per-bucket event counts (non-cumulative), one per
    /// finite bound plus a final `+Inf` slot.
    bucket_counts: Vec<AtomicU64>,
    /// Histogram sum of observations as `f64` bits.
    sum_bits: AtomicU64,
    /// Histogram observation count.
    count: AtomicU64,
}

fn atomic_f64_add(bits: &AtomicU64, delta: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Canonical (sorted) label pairs identifying one series in a family.
type LabelKey = Vec<(String, String)>;

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: InstrumentKind,
    /// Finite bucket bounds (histograms only).
    bounds: Vec<f64>,
    series: RwLock<BTreeMap<LabelKey, Arc<SeriesCell>>>,
}

impl Family {
    fn series(&self, labels: &[(&str, &str)]) -> Arc<SeriesCell> {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        if let Some(cell) = self.series.read().unwrap().get(&key) {
            return Arc::clone(cell);
        }
        let mut w = self.series.write().unwrap();
        Arc::clone(w.entry(key).or_insert_with(|| {
            let mut cell = SeriesCell::default();
            if self.kind == InstrumentKind::Histogram {
                cell.bucket_counts = (0..=self.bounds.len()).map(|_| AtomicU64::new(0)).collect();
            }
            Arc::new(cell)
        }))
    }
}

/// The process-wide instrument registry. Cheap to clone; all clones
/// share the same underlying families.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Arc<RwLock<BTreeMap<String, Arc<Family>>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn family(
        &self,
        name: &str,
        help: &str,
        kind: InstrumentKind,
        bounds: Vec<f64>,
    ) -> Arc<Family> {
        if let Some(f) = self.families.read().unwrap().get(name) {
            assert!(
                f.kind == kind,
                "instrument '{name}' already registered as a {}",
                f.kind.type_keyword()
            );
            assert!(
                kind != InstrumentKind::Histogram || f.bounds == bounds,
                "instrument '{name}' already registered with different buckets"
            );
            return Arc::clone(f);
        }
        let mut w = self.families.write().unwrap();
        Arc::clone(w.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                bounds,
                series: RwLock::new(BTreeMap::new()),
            })
        }))
    }

    /// An unlabelled counter handle (registers on first use).
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// A labelled counter handle.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let fam = self.family(name, help, InstrumentKind::Counter, Vec::new());
        Counter {
            cell: fam.series(labels),
        }
    }

    /// An unlabelled gauge handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// A labelled gauge handle.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let fam = self.family(name, help, InstrumentKind::Gauge, Vec::new());
        Gauge {
            cell: fam.series(labels),
        }
    }

    /// An unlabelled histogram handle.
    pub fn histogram(&self, name: &str, help: &str, buckets: &Buckets) -> Histogram {
        self.histogram_with(name, help, buckets, &[])
    }

    /// A labelled histogram handle.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        buckets: &Buckets,
        labels: &[(&str, &str)],
    ) -> Histogram {
        let fam = self.family(name, help, InstrumentKind::Histogram, buckets.0.clone());
        let cell = fam.series(labels);
        Histogram { fam, cell }
    }

    /// A consistent point-in-time copy of every family and series,
    /// deterministically ordered (families and label sets sorted).
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.read().unwrap();
        let mut out = Vec::with_capacity(families.len());
        for fam in families.values() {
            let series_map = fam.series.read().unwrap();
            let mut series = Vec::with_capacity(series_map.len());
            for (labels, cell) in series_map.iter() {
                let value = match fam.kind {
                    InstrumentKind::Counter => {
                        SeriesValue::Counter(f64::from_bits(cell.value_bits.load(Ordering::Acquire)))
                    }
                    InstrumentKind::Gauge => {
                        SeriesValue::Gauge(f64::from_bits(cell.value_bits.load(Ordering::Acquire)))
                    }
                    InstrumentKind::Histogram => {
                        let mut cumulative = 0u64;
                        let mut buckets = Vec::with_capacity(cell.bucket_counts.len());
                        for (i, c) in cell.bucket_counts.iter().enumerate() {
                            cumulative += c.load(Ordering::Acquire);
                            let bound = fam.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                            buckets.push((bound, cumulative));
                        }
                        SeriesValue::Histogram(HistogramSnapshot {
                            buckets,
                            sum: f64::from_bits(cell.sum_bits.load(Ordering::Acquire)),
                            count: cell.count.load(Ordering::Acquire),
                        })
                    }
                };
                series.push(SeriesSnapshot {
                    labels: labels.clone(),
                    value,
                });
            }
            out.push(FamilySnapshot {
                name: fam.name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                series,
            });
        }
        Snapshot { families: out }
    }
}

/// Counter handle: monotone adds only.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<SeriesCell>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Add `v`; negative or non-finite deltas are ignored (counters are
    /// monotone).
    pub fn add(&self, v: f64) {
        if v.is_finite() && v > 0.0 {
            atomic_f64_add(&self.cell.value_bits, v);
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.value_bits.load(Ordering::Acquire))
    }
}

/// Gauge handle: set/add/sub.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<SeriesCell>,
}

impl Gauge {
    /// Set to `v`.
    pub fn set(&self, v: f64) {
        self.cell.value_bits.store(v.to_bits(), Ordering::Release);
    }

    /// Add `v` (may be negative).
    pub fn add(&self, v: f64) {
        atomic_f64_add(&self.cell.value_bits, v);
    }

    /// Subtract `v`.
    pub fn sub(&self, v: f64) {
        self.add(-v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.value_bits.load(Ordering::Acquire))
    }
}

/// Histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    fam: Arc<Family>,
    cell: Arc<SeriesCell>,
}

impl Histogram {
    /// Record one observation. Prometheus semantics: the value lands in
    /// the first bucket whose upper bound is `>= v` (bounds are
    /// inclusive), so zero and negative observations land in the lowest
    /// bucket; NaN observations are dropped.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self
            .fam
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.fam.bounds.len());
        self.cell.bucket_counts[idx].fetch_add(1, Ordering::AcqRel);
        atomic_f64_add(&self.cell.sum_bits, v);
        self.cell.count.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Acquire)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum_bits.load(Ordering::Acquire))
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// Look up a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of all counter/gauge series of `name` (0.0 when absent).
    /// Histograms contribute their observation sums.
    pub fn total(&self, name: &str) -> f64 {
        self.family(name)
            .map(|f| {
                f.series
                    .iter()
                    .map(|s| match &s.value {
                        SeriesValue::Counter(v) | SeriesValue::Gauge(v) => *v,
                        SeriesValue::Histogram(h) => h.sum,
                    })
                    .sum()
            })
            .unwrap_or(0.0)
    }
}

/// One family in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Family (instrument) name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Instrument kind.
    pub kind: InstrumentKind,
    /// Series sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Sorted label pairs (without `__name__`).
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SeriesValue,
}

/// A snapshotted value.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Counter value.
    Counter(f64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper bound, cumulative count)` per bucket; the final bound is
    /// `+Inf` and its count equals `count`.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation
    /// within the bucket holding the target rank, Prometheus
    /// `histogram_quantile` style. Values in the `+Inf` bucket clamp to
    /// the highest finite bound. Returns `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return f64::NAN;
        }
        let rank = q * self.count as f64;
        let mut lower = 0.0f64;
        let mut prev_cum = 0u64;
        for (bound, cum) in &self.buckets {
            if (*cum as f64) >= rank {
                if !bound.is_finite() {
                    // Clamp into the highest finite bound.
                    return lower;
                }
                let in_bucket = (cum - prev_cum) as f64;
                if in_bucket == 0.0 {
                    return *bound;
                }
                let frac = (rank - prev_cum as f64) / in_bucket;
                return lower + (bound - lower) * frac;
            }
            prev_cum = *cum;
            if bound.is_finite() {
                lower = *bound;
            }
        }
        lower
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_ignores_negative() {
        let r = Registry::new();
        let c = r.counter("hits_total", "Hits.");
        c.inc();
        c.add(2.5);
        c.add(-10.0); // ignored: counters are monotone
        c.add(f64::NAN); // ignored
        assert_eq!(c.value(), 3.5);
        // A second handle to the same series shares the cell.
        let c2 = r.counter("hits_total", "Hits.");
        c2.inc();
        assert_eq!(c.value(), 4.5);
    }

    #[test]
    fn gauge_sets_and_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("level", "Level.");
        g.set(10.0);
        g.sub(4.0);
        g.add(1.0);
        assert_eq!(g.value(), 7.0);
    }

    #[test]
    fn labelled_series_are_distinct_and_order_insensitive() {
        let r = Registry::new();
        let a = r.counter_with("calls_total", "Calls.", &[("model", "gpt4"), ("outcome", "ok")]);
        let b = r.counter_with("calls_total", "Calls.", &[("outcome", "ok"), ("model", "gpt4")]);
        let c = r.counter_with("calls_total", "Calls.", &[("model", "gpt35"), ("outcome", "ok")]);
        a.inc();
        b.inc(); // same series as `a`: label order must not matter
        c.inc();
        let snap = r.snapshot();
        let fam = snap.family("calls_total").unwrap();
        assert_eq!(fam.series.len(), 2);
        assert_eq!(snap.total("calls_total"), 3.0);
        let gpt4 = fam
            .series
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "gpt4"))
            .unwrap();
        assert_eq!(gpt4.value, SeriesValue::Counter(2.0));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("thing", "A thing.");
        r.gauge("thing", "A thing.");
    }

    #[test]
    fn histogram_buckets_zero_negative_and_boundary_values() {
        let r = Registry::new();
        let h = r.histogram("lat", "Latency.", &Buckets::explicit(vec![1.0, 10.0, 100.0]));
        h.observe(0.0); // zero → lowest bucket
        h.observe(-5.0); // negative → lowest bucket
        h.observe(1.0); // exactly on a bound → that bucket (le is inclusive)
        h.observe(10.0);
        h.observe(100.0);
        h.observe(100.000001); // just over the top bound → +Inf bucket
        h.observe(f64::NAN); // dropped
        let snap = r.snapshot();
        let fam = snap.family("lat").unwrap();
        let SeriesValue::Histogram(hs) = &fam.series[0].value else {
            panic!("not a histogram");
        };
        assert_eq!(hs.count, 6);
        assert_eq!(hs.buckets.len(), 4);
        assert_eq!(hs.buckets[0], (1.0, 3)); // 0, -5, 1
        assert_eq!(hs.buckets[1], (10.0, 4));
        assert_eq!(hs.buckets[2], (100.0, 5));
        assert_eq!(hs.buckets[3].1, 6); // +Inf cumulative == count
        assert!(!hs.buckets[3].0.is_finite());
        assert!((hs.sum - 206.000001).abs() < 1e-6);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let r = Registry::new();
        let h = r.histogram("q", "Q.", &Buckets::linear(10.0, 10.0, 4));
        for v in [5.0, 15.0, 25.0, 35.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let SeriesValue::Histogram(hs) = &snap.family("q").unwrap().series[0].value else {
            panic!("not a histogram");
        };
        // Median rank 2.0 falls on the second bucket (10, 20].
        let p50 = hs.quantile(0.5);
        assert!((10.0..=20.0).contains(&p50), "p50={p50}");
        // Everything fits under the top bound.
        assert!(hs.quantile(1.0) <= 40.0);
        assert!(hs.quantile(-0.1).is_nan());
        let empty = HistogramSnapshot {
            buckets: vec![(1.0, 0), (f64::INFINITY, 0)],
            sum: 0.0,
            count: 0,
        };
        assert!(empty.quantile(0.5).is_nan());
    }

    #[test]
    fn quantile_clamps_inf_bucket_to_highest_finite_bound() {
        let r = Registry::new();
        let h = r.histogram("c", "C.", &Buckets::explicit(vec![1.0, 2.0]));
        h.observe(50.0);
        h.observe(60.0);
        let snap = r.snapshot();
        let SeriesValue::Histogram(hs) = &snap.family("c").unwrap().series[0].value else {
            panic!("not a histogram");
        };
        assert_eq!(hs.quantile(0.9), 2.0);
    }

    #[test]
    fn exponential_and_linear_buckets() {
        assert_eq!(
            Buckets::exponential(100.0, 4.0, 3).bounds(),
            &[100.0, 400.0, 1600.0]
        );
        assert_eq!(Buckets::linear(0.1, 0.1, 3).bounds(), &[0.1, 0.2, 0.30000000000000004]);
        assert_eq!(Buckets::latency_micros().bounds().len(), 10);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        r.counter("z_total", "Z.").inc();
        r.counter("a_total", "A.").inc();
        r.counter_with("m_total", "M.", &[("k", "2")]).inc();
        r.counter_with("m_total", "M.", &[("k", "1")]).inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "m_total", "z_total"]);
        let m = snap.family("m_total").unwrap();
        assert_eq!(m.series[0].labels[0].1, "1");
        assert_eq!(m.series[1].labels[0].1, "2");
    }

    #[test]
    fn registry_clones_share_state_across_threads() {
        let r = Registry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r2 = r.clone();
            handles.push(std::thread::spawn(move || {
                let c = r2.counter("par_total", "Parallel.");
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().total("par_total"), 4000.0);
    }
}

//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] names an objective — request availability, or a
//! latency threshold at a quantile-free bucket boundary — over the
//! instruments the registry already collects. The [`SloEngine`]
//! ingests registry snapshots on a *simulated clock* (callers pass
//! `ts_ms`; nothing here reads wall time, so a drill can compress
//! three days into milliseconds), maintains per-SLO good/total
//! history, and evaluates burn rates over the canonical four windows:
//!
//! * **page**: 5m AND 1h burn > 14.4 (2% of a 3d budget in 1h),
//! * **ticket**: 6h AND 3d burn > 1 (steady budget-rate overspend).
//!
//! Results are exported back into the registry as `dio_slo_*` gauges
//! and counters, so they ride the Prometheus text path and the
//! self-scrape loop like any other instrument — the copilot answers
//! "which tenant is burning its error budget" from its own telemetry.

use std::collections::VecDeque;

use crate::registry::{Registry, SeriesValue, Snapshot};

/// The four canonical burn windows: `(label, milliseconds)`.
pub const WINDOWS: [(&str, u64); 4] = [
    ("5m", 5 * 60 * 1000),
    ("1h", 60 * 60 * 1000),
    ("6h", 6 * 60 * 60 * 1000),
    ("3d", 3 * 24 * 60 * 60 * 1000),
];

/// Page when both fast windows burn faster than this (2% of a 3-day
/// budget spent within one hour).
pub const PAGE_BURN: f64 = 14.4;
/// Ticket when both slow windows burn faster than budget rate.
pub const TICKET_BURN: f64 = 1.0;

const BURN_NAME: &str = "dio_slo_burn_rate";
const BURN_HELP: &str = "Error-budget burn rate per SLO and window (1 = exactly on budget).";
const BUDGET_NAME: &str = "dio_slo_error_budget_remaining_ratio";
const BUDGET_HELP: &str = "Fraction of the 3d error budget remaining per SLO (negative = overspent).";
const ACTIVE_NAME: &str = "dio_slo_alert_active";
const ACTIVE_HELP: &str = "1 while the burn-rate alert of this severity is firing for the SLO.";
const FIRED_NAME: &str = "dio_slo_alerts_total";
const FIRED_HELP: &str = "Burn-rate alert activations per SLO and severity.";

/// A label-subset series selector: matches every series of `metric`
/// whose labels contain all of `labels`.
#[derive(Debug, Clone)]
pub struct Selector {
    /// Family name, e.g. `dio_serve_requests_total`.
    pub metric: String,
    /// Required label pairs, e.g. `[("outcome", "error")]`.
    pub labels: Vec<(String, String)>,
}

impl Selector {
    /// Build a selector.
    pub fn new(metric: &str, labels: &[(&str, &str)]) -> Self {
        Selector {
            metric: metric.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn matches(&self, series_labels: &[(String, String)]) -> bool {
        self.labels
            .iter()
            .all(|want| series_labels.iter().any(|have| have == want))
    }

    /// Sum of matching counter/gauge series (histograms contribute
    /// their observation counts).
    pub fn sum(&self, snap: &Snapshot) -> f64 {
        let Some(family) = snap.family(&self.metric) else {
            return 0.0;
        };
        family
            .series
            .iter()
            .filter(|s| self.matches(&s.labels))
            .map(|s| match &s.value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => *v,
                SeriesValue::Histogram(h) => h.count as f64,
            })
            .sum()
    }

    /// `(good, total)` over matching histogram series, where good is
    /// the cumulative count at the largest bucket bound ≤
    /// `threshold` — the conservative (undercounting) read when the
    /// threshold falls inside a bucket.
    pub fn histogram_good_total(&self, snap: &Snapshot, threshold: f64) -> (f64, f64) {
        let Some(family) = snap.family(&self.metric) else {
            return (0.0, 0.0);
        };
        let mut good = 0.0;
        let mut total = 0.0;
        for series in family.series.iter().filter(|s| self.matches(&s.labels)) {
            if let SeriesValue::Histogram(h) = &series.value {
                total += h.count as f64;
                good += h
                    .buckets
                    .iter()
                    .filter(|(bound, _)| *bound <= threshold)
                    .map(|(_, cum)| *cum)
                    .next_back()
                    .unwrap_or(0) as f64;
            }
        }
        (good, total)
    }
}

/// What an SLO measures.
#[derive(Debug, Clone)]
pub enum Objective {
    /// Fraction of requests that are not bad: `1 - bad/total`.
    Availability {
        /// All requests.
        total: Selector,
        /// Bad requests; multiple selectors sum (e.g. `outcome=error`
        /// plus `outcome=panic`).
        bad: Vec<Selector>,
    },
    /// Fraction of requests completing within `threshold_micros`,
    /// read from a latency histogram's buckets.
    LatencyThreshold {
        /// The latency histogram.
        histogram: Selector,
        /// The "good" boundary in microseconds; align it with a bucket
        /// bound for an exact read.
        threshold_micros: f64,
    },
}

/// One declared objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable identifier, e.g. `availability-premium`. Becomes the
    /// `slo` label value.
    pub name: String,
    /// Target good fraction, e.g. `0.99`. Budget is `1 - target`.
    pub target: f64,
    /// What is measured.
    pub objective: Objective,
}

/// Burn rate over one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBurn {
    /// Window label (`5m`, `1h`, `6h`, `3d`).
    pub window: &'static str,
    /// Error-rate / budget over that window; 1 = exactly on budget.
    pub burn: f64,
}

/// One SLO's evaluated state — the ground truth drills verify the
/// copilot's answers against.
#[derive(Debug, Clone, PartialEq)]
pub struct SloState {
    /// The spec name.
    pub name: String,
    /// The target good fraction.
    pub target: f64,
    /// Burn per window, in [`WINDOWS`] order.
    pub burn: Vec<WindowBurn>,
    /// Fraction of the 3d budget left (negative when overspent).
    pub budget_remaining_ratio: f64,
    /// Fast-burn alert (page severity) firing.
    pub page: bool,
    /// Slow-burn alert (ticket severity) firing.
    pub ticket: bool,
}

impl SloState {
    /// Burn rate for a window label, `0.0` when unknown.
    pub fn burn_for(&self, window: &str) -> f64 {
        self.burn
            .iter()
            .find(|b| b.window == window)
            .map(|b| b.burn)
            .unwrap_or(0.0)
    }
}

struct SloEntry {
    spec: SloSpec,
    /// `(ts_ms, cumulative bad, cumulative total)` samples, oldest
    /// first, pruned past the longest window.
    history: VecDeque<(u64, f64, f64)>,
    page_active: bool,
    ticket_active: bool,
    last: Option<SloState>,
}

/// The burn-rate engine. Owns its SLO list; exports evaluated state
/// into the registry it was built over.
pub struct SloEngine {
    registry: Registry,
    entries: Vec<SloEntry>,
}

impl SloEngine {
    /// An engine exporting into `registry`.
    pub fn new(registry: Registry) -> Self {
        SloEngine {
            registry,
            entries: Vec::new(),
        }
    }

    /// Declare an SLO. Registers its exported series at zero so the
    /// families exist before the first evaluation.
    pub fn add(&mut self, spec: SloSpec) {
        for (window, _) in WINDOWS {
            self.registry
                .gauge_with(BURN_NAME, BURN_HELP, &[("slo", &spec.name), ("window", window)]);
        }
        self.registry
            .gauge_with(BUDGET_NAME, BUDGET_HELP, &[("slo", &spec.name)])
            .set(1.0);
        for severity in ["page", "ticket"] {
            self.registry.gauge_with(
                ACTIVE_NAME,
                ACTIVE_HELP,
                &[("slo", &spec.name), ("severity", severity)],
            );
            self.registry.counter_with(
                FIRED_NAME,
                FIRED_HELP,
                &[("slo", &spec.name), ("severity", severity)],
            );
        }
        self.entries.push(SloEntry {
            spec,
            history: VecDeque::new(),
            page_active: false,
            ticket_active: false,
            last: None,
        });
    }

    /// Declared SLO names, in declaration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.spec.name.clone()).collect()
    }

    /// Ingest a registry snapshot at simulated time `ts_ms` and
    /// re-evaluate every SLO. Returns the new states and updates the
    /// exported `dio_slo_*` instruments.
    pub fn observe(&mut self, ts_ms: u64, snap: &Snapshot) -> Vec<SloState> {
        let max_window = WINDOWS[WINDOWS.len() - 1].1;
        let mut states = Vec::with_capacity(self.entries.len());
        for entry in &mut self.entries {
            let (bad, total) = match &entry.spec.objective {
                Objective::Availability { total, bad } => {
                    let t = total.sum(snap);
                    let b: f64 = bad.iter().map(|s| s.sum(snap)).sum();
                    (b, t)
                }
                Objective::LatencyThreshold {
                    histogram,
                    threshold_micros,
                } => {
                    let (good, t) = histogram.histogram_good_total(snap, *threshold_micros);
                    (t - good, t)
                }
            };
            entry.history.push_back((ts_ms, bad, total));
            // Keep one sample at or beyond the longest window so the
            // 3d baseline lookup stays exact.
            while entry.history.len() >= 2
                && ts_ms.saturating_sub(entry.history[1].0) >= max_window
            {
                entry.history.pop_front();
            }

            let budget = (1.0 - entry.spec.target).max(1e-9);
            let mut burns = Vec::with_capacity(WINDOWS.len());
            for (label, window_ms) in WINDOWS {
                let horizon = ts_ms.saturating_sub(window_ms);
                // Latest sample at or before the window start; the
                // oldest sample when history is shorter than the
                // window (burn over available history).
                let baseline = entry
                    .history
                    .iter()
                    .rev()
                    .find(|(t, _, _)| *t <= horizon)
                    .or_else(|| entry.history.front())
                    .copied()
                    .unwrap_or((ts_ms, bad, total));
                let d_total = total - baseline.2;
                let d_bad = bad - baseline.1;
                let error_rate = if d_total > 0.0 { d_bad / d_total } else { 0.0 };
                burns.push(WindowBurn {
                    window: label,
                    burn: error_rate / budget,
                });
            }
            // Budget consumed over the 3d window = burn × the covered
            // fraction of the window.
            let oldest = entry.history.front().map(|(t, _, _)| *t).unwrap_or(ts_ms);
            let covered = (ts_ms.saturating_sub(oldest)).min(max_window) as f64;
            let consumed = burns[3].burn * (covered / max_window as f64);
            let remaining = 1.0 - consumed;

            let page = burns[0].burn > PAGE_BURN && burns[1].burn > PAGE_BURN;
            let ticket = burns[2].burn > TICKET_BURN && burns[3].burn > TICKET_BURN;
            let name = entry.spec.name.as_str();
            for b in &burns {
                self.registry
                    .gauge_with(BURN_NAME, BURN_HELP, &[("slo", name), ("window", b.window)])
                    .set(b.burn);
            }
            self.registry
                .gauge_with(BUDGET_NAME, BUDGET_HELP, &[("slo", name)])
                .set(remaining);
            for (severity, active, was_active) in [
                ("page", page, &mut entry.page_active),
                ("ticket", ticket, &mut entry.ticket_active),
            ] {
                self.registry
                    .gauge_with(ACTIVE_NAME, ACTIVE_HELP, &[("slo", name), ("severity", severity)])
                    .set(if active { 1.0 } else { 0.0 });
                if active && !*was_active {
                    self.registry
                        .counter_with(
                            FIRED_NAME,
                            FIRED_HELP,
                            &[("slo", name), ("severity", severity)],
                        )
                        .inc();
                }
                *was_active = active;
            }
            let state = SloState {
                name: entry.spec.name.clone(),
                target: entry.spec.target,
                burn: burns,
                budget_remaining_ratio: remaining,
                page,
                ticket,
            };
            entry.last = Some(state.clone());
            states.push(state);
        }
        states
    }

    /// The most recent evaluation per SLO (empty before the first
    /// [`SloEngine::observe`]).
    pub fn states(&self) -> Vec<SloState> {
        self.entries.iter().filter_map(|e| e.last.clone()).collect()
    }

    /// The most recent state for `name`.
    pub fn state(&self, name: &str) -> Option<SloState> {
        self.entries
            .iter()
            .find(|e| e.spec.name == name)
            .and_then(|e| e.last.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Buckets;

    const MIN_MS: u64 = 60 * 1000;

    fn availability_spec(name: &str, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            target,
            objective: Objective::Availability {
                total: Selector::new("req_total", &[]),
                bad: vec![Selector::new("req_total", &[("outcome", "error")])],
            },
        }
    }

    #[test]
    fn steady_on_budget_traffic_burns_at_one() {
        let reg = Registry::new();
        let ok = reg.counter_with("req_total", "Requests.", &[("outcome", "ok")]);
        let err = reg.counter_with("req_total", "Requests.", &[("outcome", "error")]);
        let mut engine = SloEngine::new(reg.clone());
        engine.add(availability_spec("avail", 0.99)); // 1% budget
        // 1% errors, sampled every simulated minute for 2h.
        for minute in 0..120u64 {
            ok.add(99.0);
            err.add(1.0);
            engine.observe(minute * MIN_MS, &reg.snapshot());
        }
        let s = engine.state("avail").unwrap();
        assert!((s.burn_for("5m") - 1.0).abs() < 0.05, "5m burn {}", s.burn_for("5m"));
        assert!((s.burn_for("1h") - 1.0).abs() < 0.05);
        assert!(!s.page && !s.ticket);
    }

    #[test]
    fn fast_burn_pages_and_exports_series() {
        let reg = Registry::new();
        let ok = reg.counter_with("req_total", "Requests.", &[("outcome", "ok")]);
        let err = reg.counter_with("req_total", "Requests.", &[("outcome", "error")]);
        let mut engine = SloEngine::new(reg.clone());
        engine.add(availability_spec("avail", 0.99));
        // 50% errors for 90 simulated minutes: burn 50 over both fast
        // windows.
        for minute in 0..90u64 {
            ok.add(50.0);
            err.add(50.0);
            engine.observe(minute * MIN_MS, &reg.snapshot());
        }
        let s = engine.state("avail").unwrap();
        assert!(s.burn_for("5m") > PAGE_BURN && s.burn_for("1h") > PAGE_BURN);
        assert!(s.page);
        assert!(s.budget_remaining_ratio < 1.0);
        let snap = reg.snapshot();
        let burn_family = snap.family("dio_slo_burn_rate").unwrap();
        assert_eq!(burn_family.series.len(), 4);
        // A sustained 50% error stream trips both severities once each.
        assert_eq!(snap.total("dio_slo_alerts_total"), 2.0);
        assert_eq!(
            Selector::new("dio_slo_alerts_total", &[("severity", "page")]).sum(&snap),
            1.0
        );
        let active = snap.family("dio_slo_alert_active").unwrap();
        let page_active = active
            .series
            .iter()
            .find(|s| s.labels.contains(&("severity".into(), "page".into())))
            .unwrap();
        assert_eq!(page_active.value, SeriesValue::Gauge(1.0));
    }

    #[test]
    fn alert_clears_when_burn_stops_and_counter_counts_activations_once() {
        let reg = Registry::new();
        let ok = reg.counter_with("req_total", "Requests.", &[("outcome", "ok")]);
        let err = reg.counter_with("req_total", "Requests.", &[("outcome", "error")]);
        let mut engine = SloEngine::new(reg.clone());
        engine.add(availability_spec("avail", 0.99));
        for minute in 0..70u64 {
            ok.add(50.0);
            err.add(50.0);
            engine.observe(minute * MIN_MS, &reg.snapshot());
        }
        assert!(engine.state("avail").unwrap().page);
        // Clean traffic long enough to flush both fast windows.
        for minute in 70..140u64 {
            ok.add(100.0);
            engine.observe(minute * MIN_MS, &reg.snapshot());
        }
        assert!(!engine.state("avail").unwrap().page);
        // One page activation counted despite many firing evaluations
        // (the slow windows still remember the bad hour, so the ticket
        // stays active — that is the point of the slow pair).
        assert_eq!(
            Selector::new("dio_slo_alerts_total", &[("severity", "page")]).sum(&reg.snapshot()),
            1.0
        );
    }

    #[test]
    fn latency_objective_reads_histogram_buckets() {
        let reg = Registry::new();
        let h = reg.histogram_with(
            "lat_micros",
            "Latency.",
            &Buckets::explicit(vec![100.0, 1000.0, 10000.0]),
            &[("class", "premium")],
        );
        let mut engine = SloEngine::new(reg.clone());
        engine.add(SloSpec {
            name: "latency-premium".into(),
            target: 0.9,
            objective: Objective::LatencyThreshold {
                histogram: Selector::new("lat_micros", &[("class", "premium")]),
                threshold_micros: 1000.0,
            },
        });
        engine.observe(0, &reg.snapshot());
        // 80% fast, 20% over threshold → error rate 0.2, budget 0.1,
        // burn 2.
        for _ in 0..80 {
            h.observe(50.0);
        }
        for _ in 0..20 {
            h.observe(5000.0);
        }
        engine.observe(MIN_MS, &reg.snapshot());
        let s = engine.state("latency-premium").unwrap();
        assert!((s.burn_for("5m") - 2.0).abs() < 1e-6, "burn {}", s.burn_for("5m"));
    }

    #[test]
    fn selector_label_subset_matching() {
        let reg = Registry::new();
        reg.counter_with("m", "M.", &[("a", "1"), ("b", "2")]).add(5.0);
        reg.counter_with("m", "M.", &[("a", "1"), ("b", "3")]).add(7.0);
        let snap = reg.snapshot();
        assert_eq!(Selector::new("m", &[("a", "1")]).sum(&snap), 12.0);
        assert_eq!(Selector::new("m", &[("b", "3")]).sum(&snap), 7.0);
        assert_eq!(Selector::new("m", &[("b", "9")]).sum(&snap), 0.0);
        assert_eq!(Selector::new("absent", &[]).sum(&snap), 0.0);
    }
}

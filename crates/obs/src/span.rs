//! Span identity and tree assembly for hierarchical tracing.
//!
//! A [`SpanContext`] is the propagated currency of distributed tracing:
//! every async/thread boundary (admission enqueue → worker pickup,
//! pipeline stage forks, shard scatter-gather, WAL shipment) carries one
//! explicitly, so a request's causal structure survives handoffs that a
//! thread-local or flat correlation ID would lose.
//!
//! Completed spans ([`SpanRecord`]) are flat rows keyed by
//! `(span_id, parent_span_id)`; [`build_tree`] reassembles them into a
//! [`SpanTree`] and surfaces *orphans* — spans whose parent chain does
//! not reach the root, the tell-tale of a dropped context at a
//! boundary. CI fails on a non-zero orphan count.

use serde::Serialize;

/// Propagated identity of one span within one trace.
///
/// `Copy` on purpose: contexts cross thread boundaries by value (inside
/// queued jobs, closure captures, shipped batches). A child context is
/// allocated *before* its work starts ([`crate::Tracer::child_of`]), so
/// grandchildren can parent under a span that has not finished yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct SpanContext {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's own ID, unique within the tracer.
    pub span_id: u64,
    /// The parent span, `None` for the root.
    pub parent_span_id: Option<u64>,
}

impl SpanContext {
    /// True for the root context of a trace.
    pub fn is_root(&self) -> bool {
        self.parent_span_id.is_none()
    }
}

/// Terminal status of a finished trace, set at
/// [`crate::Tracer::finish_trace`]. Drives tail-sampling retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceStatus {
    /// Completed normally.
    Ok,
    /// Failed with an error the caller saw.
    Error,
    /// Rejected by admission control before service.
    Shed,
    /// Answered, but through a degraded fallback path.
    Degraded,
    /// Abandoned cooperatively because the request's budget lapsed
    /// mid-service (distinct from `Shed`, which never started).
    DeadlineExceeded,
}

impl TraceStatus {
    /// Stable lowercase label for metrics and dump files.
    pub fn slug(&self) -> &'static str {
        match self {
            TraceStatus::Ok => "ok",
            TraceStatus::Error => "error",
            TraceStatus::Shed => "shed",
            TraceStatus::Degraded => "degraded",
            TraceStatus::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// One completed span: identity, name, when it started (offset from the
/// trace's begin instant), how long it ran, and closed-enum attributes
/// (`shard`, `path`, `cache`, ... — never free text beyond the values
/// the emitting site already bounds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanRecord {
    /// This span's ID.
    pub span_id: u64,
    /// The parent span ID, `None` for the root span.
    pub parent_span_id: Option<u64>,
    /// Stage name, e.g. `retrieve` or `shard_read`.
    pub name: String,
    /// Start offset from the trace's begin instant, microseconds.
    pub start_micros: u64,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
    /// Attribute pairs, e.g. `[("path", "gather"), ("shard", "3")]`.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// The value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One node of an assembled span tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanNode {
    /// The span at this node.
    pub span: SpanRecord,
    /// Child spans, ordered by start offset.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of spans in this subtree (including this node).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }
}

/// A rooted span tree plus the spans that failed to attach.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanTree {
    /// The root node (the whole-request span).
    pub root: SpanNode,
    /// Spans not reachable from the root: their parent was never
    /// recorded, or sits in a detached subtree. A correct propagation
    /// leaves this empty.
    pub orphans: Vec<SpanRecord>,
}

impl SpanTree {
    /// Number of spans attached under the root.
    pub fn rooted_len(&self) -> usize {
        self.root.size()
    }
}

/// Assemble flat span rows into a tree rooted at `root_span_id`.
///
/// Returns `None` when the root span itself is missing (e.g. the trace
/// was never finished). Spans whose parent chain does not reach the
/// root are reported as orphans, in recording order.
pub fn build_tree(spans: &[SpanRecord], root_span_id: u64) -> Option<SpanTree> {
    let root_at = spans.iter().position(|s| s.span_id == root_span_id)?;
    let mut attached: Vec<bool> = vec![false; spans.len()];
    attached[root_at] = true;
    // Fixed-point attach: spans may be recorded before their parents
    // (a child finishes while the parent is still open), so a single
    // pass in recording order is not enough.
    loop {
        let mut progressed = false;
        for i in 0..spans.len() {
            if attached[i] {
                continue;
            }
            if let Some(p) = spans[i].parent_span_id {
                let parent_attached = spans
                    .iter()
                    .zip(attached.iter())
                    .any(|(s, a)| *a && s.span_id == p);
                if parent_attached {
                    attached[i] = true;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let orphans: Vec<SpanRecord> = spans
        .iter()
        .zip(attached.iter())
        .filter(|&(_, a)| !*a)
        .map(|(s, _)| s.clone())
        .collect();
    let root = assemble(spans, &attached, root_at);
    Some(SpanTree { root, orphans })
}

fn assemble(spans: &[SpanRecord], attached: &[bool], at: usize) -> SpanNode {
    let id = spans[at].span_id;
    let mut children: Vec<usize> = (0..spans.len())
        .filter(|&i| i != at && attached[i] && spans[i].parent_span_id == Some(id))
        .collect();
    children.sort_by_key(|&i| (spans[i].start_micros, spans[i].span_id));
    SpanNode {
        span: spans[at].clone(),
        children: children
            .into_iter()
            .map(|i| assemble(spans, attached, i))
            .collect(),
    }
}

/// Count spans in `spans` that do not attach under `root_span_id`.
/// When the root itself is missing every span counts as an orphan.
pub fn orphan_count(spans: &[SpanRecord], root_span_id: u64) -> usize {
    match build_tree(spans, root_span_id) {
        Some(tree) => tree.orphans.len(),
        None => spans.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start: u64) -> SpanRecord {
        SpanRecord {
            span_id: id,
            parent_span_id: parent,
            name: name.into(),
            start_micros: start,
            micros: 10,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn tree_assembles_out_of_order_spans() {
        // Children recorded before the root (the real recording order:
        // a span completes before its enclosing span does).
        let spans = vec![
            span(3, Some(2), "shard_read", 5),
            span(2, Some(1), "execute", 3),
            span(4, Some(2), "shard_read", 6),
            span(1, None, "request", 0),
        ];
        let tree = build_tree(&spans, 1).unwrap();
        assert!(tree.orphans.is_empty());
        assert_eq!(tree.rooted_len(), 4);
        assert_eq!(tree.root.children.len(), 1);
        let exec = &tree.root.children[0];
        assert_eq!(exec.span.name, "execute");
        assert_eq!(exec.children.len(), 2);
        // Ordered by start offset.
        assert_eq!(exec.children[0].span.span_id, 3);
        assert_eq!(exec.children[1].span.span_id, 4);
    }

    #[test]
    fn dropped_context_surfaces_as_orphans() {
        let spans = vec![
            span(1, None, "request", 0),
            span(2, Some(1), "retrieve", 1),
            // Parent 99 was never recorded: this span and its child are
            // both detached from the root.
            span(5, Some(99), "lost", 2),
            span(6, Some(5), "lost_child", 3),
        ];
        let tree = build_tree(&spans, 1).unwrap();
        assert_eq!(tree.rooted_len(), 2);
        assert_eq!(tree.orphans.len(), 2);
        assert_eq!(orphan_count(&spans, 1), 2);
    }

    #[test]
    fn missing_root_counts_everything_orphaned() {
        let spans = vec![span(2, Some(1), "retrieve", 1)];
        assert!(build_tree(&spans, 1).is_none());
        assert_eq!(orphan_count(&spans, 1), 1);
    }

    #[test]
    fn attrs_lookup() {
        let mut s = span(1, None, "shard_read", 0);
        s.attrs = vec![("shard".into(), "3".into()), ("path".into(), "gather".into())];
        assert_eq!(s.attr("path"), Some("gather"));
        assert_eq!(s.attr("missing"), None);
    }
}

//! Hierarchical span/event tracer with propagated contexts.
//!
//! Each traced operation opens a trace ([`Tracer::begin_trace`]) and
//! receives the root [`SpanContext`]; every boundary the request
//! crosses derives a child context ([`Tracer::child_of`]) and records a
//! completed span against it. The buffer is bounded: oldest traces are
//! evicted first, so a long-running service keeps a sliding window of
//! recent requests. Finishing a trace ([`Tracer::finish_trace`]) stamps
//! its status and total duration and offers the complete record to the
//! attached [`FlightRecorder`], which tail-samples interesting traces
//! for post-hoc dumps.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;

use crate::recorder::FlightRecorder;
use crate::span::{build_tree, orphan_count, SpanContext, SpanRecord, SpanTree, TraceStatus};

/// Name of the synthetic whole-request span recorded at
/// [`Tracer::finish_trace`].
pub const ROOT_SPAN_NAME: &str = "request";

/// One point event within a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EventRecord {
    /// Event name, e.g. `breaker_transition`.
    pub name: String,
    /// Attribute pairs, e.g. `[("to", "open")]`.
    pub attrs: Vec<(String, String)>,
}

/// Everything recorded against one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceRecord {
    /// The trace ID.
    pub id: u64,
    /// Operation label (the question text for copilot asks).
    pub label: String,
    /// The root span's ID.
    pub root_span_id: u64,
    /// Terminal status; `Ok` until the trace finishes.
    pub status: TraceStatus,
    /// Whole-trace duration in microseconds, stamped at finish.
    pub total_micros: u64,
    /// True once [`Tracer::finish_trace`] ran.
    pub finished: bool,
    /// Completed spans in recording order (children usually precede
    /// their still-open parents).
    pub spans: Vec<SpanRecord>,
    /// Events in recording order.
    pub events: Vec<EventRecord>,
}

impl TraceRecord {
    /// Assemble the span tree. `None` when the root span is missing
    /// (unfinished trace).
    pub fn tree(&self) -> Option<SpanTree> {
        build_tree(&self.spans, self.root_span_id)
    }

    /// Spans that do not attach under the root.
    pub fn orphan_count(&self) -> usize {
        orphan_count(&self.spans, self.root_span_id)
    }

    /// True when the trace finished and every span attaches under the
    /// root — the only shape worth retaining or dumping.
    pub fn is_complete(&self) -> bool {
        self.finished && self.orphan_count() == 0
    }

    /// True when any recorded span carries `name` — e.g.
    /// `failover_promotion` marks a request that rode through a
    /// primary failure.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s.name == name)
    }
}

#[derive(Debug)]
struct TraceEntry {
    record: TraceRecord,
    begin: Instant,
}

#[derive(Debug)]
struct TracerInner {
    next_trace_id: u64,
    next_span_id: u64,
    capacity: usize,
    traces: VecDeque<TraceEntry>,
    recorder: Option<FlightRecorder>,
}

impl TracerInner {
    fn entry_mut(&mut self, trace_id: u64) -> Option<&mut TraceEntry> {
        self.traces
            .iter_mut()
            .rev()
            .find(|t| t.record.id == trace_id)
    }
}

/// Shared tracer. Cheap to clone; clones share the buffer.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(512)
    }
}

impl Tracer {
    /// A tracer with the default buffer size.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A tracer keeping at most `capacity` traces.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                next_trace_id: 1,
                next_span_id: 1,
                capacity: capacity.max(1),
                traces: VecDeque::new(),
                recorder: None,
            })),
        }
    }

    /// Feed every finished trace to `recorder` for tail-sampled
    /// retention.
    pub fn attach_recorder(&self, recorder: FlightRecorder) {
        self.inner.lock().unwrap().recorder = Some(recorder);
    }

    /// Open a new trace; the returned root context is what every
    /// downstream boundary derives children from.
    pub fn begin_trace(&self, label: &str) -> SpanContext {
        let mut inner = self.inner.lock().unwrap();
        let trace_id = inner.next_trace_id;
        inner.next_trace_id += 1;
        let root_span_id = inner.next_span_id;
        inner.next_span_id += 1;
        if inner.traces.len() == inner.capacity {
            inner.traces.pop_front();
        }
        inner.traces.push_back(TraceEntry {
            record: TraceRecord {
                id: trace_id,
                label: label.to_string(),
                root_span_id,
                status: TraceStatus::Ok,
                total_micros: 0,
                finished: false,
                spans: Vec::new(),
                events: Vec::new(),
            },
            begin: Instant::now(),
        });
        SpanContext {
            trace_id,
            span_id: root_span_id,
            parent_span_id: None,
        }
    }

    /// Allocate a child context under `parent`. The child's span ID
    /// exists from this moment — grandchildren may parent under it
    /// before the child's span is recorded.
    pub fn child_of(&self, parent: &SpanContext) -> SpanContext {
        let mut inner = self.inner.lock().unwrap();
        let span_id = inner.next_span_id;
        inner.next_span_id += 1;
        SpanContext {
            trace_id: parent.trace_id,
            span_id,
            parent_span_id: Some(parent.span_id),
        }
    }

    /// Microseconds elapsed since the trace opened — the start-offset
    /// clock for spans recorded against it. Zero for evicted traces.
    pub fn clock_micros(&self, ctx: &SpanContext) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        match inner.entry_mut(ctx.trace_id) {
            Some(entry) => micros_u64(entry.begin.elapsed()),
            None => 0,
        }
    }

    /// Record the completed span identified by `ctx`. Spans against
    /// evicted traces are dropped silently.
    pub fn record_span(
        &self,
        ctx: &SpanContext,
        name: &str,
        start_micros: u64,
        micros: u64,
        attrs: &[(&str, &str)],
    ) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.entry_mut(ctx.trace_id) {
            entry.record.spans.push(SpanRecord {
                span_id: ctx.span_id,
                parent_span_id: ctx.parent_span_id,
                name: name.to_string(),
                start_micros,
                micros,
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            });
        }
    }

    /// Record a point event against `ctx`'s trace.
    pub fn event(&self, ctx: &SpanContext, name: &str, attrs: &[(&str, &str)]) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.entry_mut(ctx.trace_id) {
            entry.record.events.push(EventRecord {
                name: name.to_string(),
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            });
        }
    }

    /// Time `f` as a child span of `parent` named `name`, passing the
    /// child context in so `f` can propagate it further.
    pub fn time<T>(
        &self,
        parent: &SpanContext,
        name: &str,
        f: impl FnOnce(&SpanContext) -> T,
    ) -> T {
        self.time_with(parent, name, &[], f)
    }

    /// [`Tracer::time`] with span attributes.
    pub fn time_with<T>(
        &self,
        parent: &SpanContext,
        name: &str,
        attrs: &[(&str, &str)],
        f: impl FnOnce(&SpanContext) -> T,
    ) -> T {
        let child = self.child_of(parent);
        let start = self.clock_micros(&child);
        let t0 = Instant::now();
        let out = f(&child);
        self.record_span(&child, name, start, micros_u64(t0.elapsed()), attrs);
        out
    }

    /// Close the trace: record the whole-request root span (offset 0 →
    /// now), stamp `status` and the total duration, and offer the
    /// finished record to the attached flight recorder. Returns the
    /// finished record (`None` when the trace was already evicted).
    pub fn finish_trace(&self, ctx: &SpanContext, status: TraceStatus) -> Option<TraceRecord> {
        let (finished, recorder) = {
            let mut inner = self.inner.lock().unwrap();
            let entry = inner.entry_mut(ctx.trace_id)?;
            let total = micros_u64(entry.begin.elapsed());
            entry.record.spans.push(SpanRecord {
                span_id: entry.record.root_span_id,
                parent_span_id: None,
                name: ROOT_SPAN_NAME.to_string(),
                start_micros: 0,
                micros: total,
                attrs: vec![("status".to_string(), status.slug().to_string())],
            });
            entry.record.status = status;
            entry.record.total_micros = total;
            entry.record.finished = true;
            (entry.record.clone(), inner.recorder.clone())
        };
        // Offer outside the tracer lock: the recorder has its own.
        if let Some(recorder) = recorder {
            recorder.offer(&finished);
        }
        Some(finished)
    }

    /// The full record for `trace_id`, if still buffered.
    pub fn trace(&self, trace_id: u64) -> Option<TraceRecord> {
        self.inner
            .lock()
            .unwrap()
            .traces
            .iter()
            .find(|t| t.record.id == trace_id)
            .map(|t| t.record.clone())
    }

    /// The spans recorded against `trace_id` (empty when evicted).
    pub fn spans(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.trace(trace_id).map(|t| t.spans).unwrap_or_default()
    }

    /// The assembled span tree for `trace_id`, if finished and
    /// buffered.
    pub fn tree(&self, trace_id: u64) -> Option<SpanTree> {
        self.trace(trace_id).and_then(|t| t.tree())
    }

    /// The most recent `n` traces, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock().unwrap();
        inner
            .traces
            .iter()
            .rev()
            .take(n)
            .rev()
            .map(|t| t.record.clone())
            .collect()
    }

    /// Number of buffered traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().traces.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Saturating `Duration` → whole microseconds as `u64`.
pub fn micros_u64(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_parent_spans_into_one_tree() {
        let t = Tracer::new();
        let root = t.begin_trace("ask one");
        assert!(root.is_root());
        let retrieve = t.child_of(&root);
        t.record_span(&retrieve, "retrieve", 0, 120, &[]);
        let execute = t.child_of(&root);
        let shard = t.child_of(&execute);
        t.record_span(&shard, "shard_read", 5, 40, &[("shard", "2")]);
        t.record_span(&execute, "execute", 4, 60, &[]);
        t.finish_trace(&root, TraceStatus::Ok);

        let rec = t.trace(root.trace_id).unwrap();
        assert!(rec.finished);
        assert_eq!(rec.status, TraceStatus::Ok);
        assert_eq!(rec.spans.len(), 4); // 3 recorded + root
        let tree = rec.tree().unwrap();
        assert!(tree.orphans.is_empty());
        assert_eq!(tree.rooted_len(), 4);
        assert_eq!(tree.root.span.name, ROOT_SPAN_NAME);
    }

    #[test]
    fn duplicate_stage_names_stay_distinct_by_span_id() {
        let t = Tracer::new();
        let root = t.begin_trace("repair loop");
        let e1 = t.child_of(&root);
        t.record_span(&e1, "execute", 0, 10, &[]);
        let g = t.child_of(&root);
        t.record_span(&g, "generate", 11, 20, &[]);
        let e2 = t.child_of(&root);
        t.record_span(&e2, "execute", 32, 30, &[]);
        let spans = t.spans(root.trace_id);
        assert_eq!(spans.len(), 3);
        assert_ne!(spans[0].span_id, spans[2].span_id);
        assert_eq!(spans[0].micros, 10);
        assert_eq!(spans[2].micros, 30);
    }

    #[test]
    fn buffer_evicts_oldest_and_drops_late_spans() {
        let t = Tracer::with_capacity(2);
        let a = t.begin_trace("a");
        let b = t.begin_trace("b");
        let c = t.begin_trace("c");
        assert_eq!(t.len(), 2);
        assert!(t.trace(a.trace_id).is_none());
        let late = t.child_of(&a);
        t.record_span(&late, "late", 0, 1, &[]); // dropped silently
        assert!(t.spans(a.trace_id).is_empty());
        assert!(t.finish_trace(&a, TraceStatus::Ok).is_none());
        let recent = t.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].id, b.trace_id);
        assert_eq!(recent[1].id, c.trace_id);
    }

    #[test]
    fn time_helper_records_child_with_propagatable_context() {
        let t = Tracer::new();
        let root = t.begin_trace("timed");
        let inner_ctx = t.time(&root, "outer", |ctx| {
            let grandchild = t.child_of(ctx);
            t.record_span(&grandchild, "inner", 0, 5, &[]);
            *ctx
        });
        t.finish_trace(&root, TraceStatus::Ok);
        let tree = t.tree(root.trace_id).unwrap();
        assert!(tree.orphans.is_empty());
        assert_eq!(tree.root.children.len(), 1);
        assert_eq!(tree.root.children[0].span.name, "outer");
        assert_eq!(tree.root.children[0].span.span_id, inner_ctx.span_id);
        assert_eq!(tree.root.children[0].children[0].span.name, "inner");
    }

    #[test]
    fn events_and_status_stamp() {
        let t = Tracer::new();
        let root = t.begin_trace("failing ask");
        t.event(&root, "breaker_transition", &[("to", "open")]);
        let rec = t.finish_trace(&root, TraceStatus::Error).unwrap();
        assert_eq!(rec.status, TraceStatus::Error);
        assert_eq!(rec.events[0].attrs[0], ("to".into(), "open".into()));
        assert_eq!(rec.spans[0].attr("status"), Some("error"));
    }

    #[test]
    fn micros_u64_saturates() {
        assert_eq!(micros_u64(Duration::from_micros(42)), 42);
        assert_eq!(micros_u64(Duration::MAX), u64::MAX);
    }
}

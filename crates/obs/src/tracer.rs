//! Structured span/event tracer with per-`ask` correlation IDs.
//!
//! Each pipeline invocation opens a trace (one [`TraceId`]); stages
//! record spans (name + duration) and point events (name + attributes)
//! against it. The buffer is bounded: oldest traces are evicted first,
//! so a long-running copilot keeps a sliding window of recent asks.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Correlation ID for one traced operation (one `ask`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw ID.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// One timed span within a trace. Repeated stage names are kept as
/// separate entries — the repair loop records one `execute` span per
/// attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name, e.g. `retrieve`.
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

/// One point event within a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name, e.g. `breaker_transition`.
    pub name: String,
    /// Attribute pairs, e.g. `[("to", "open")]`.
    pub attrs: Vec<(String, String)>,
}

/// Everything recorded against one trace ID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The correlation ID.
    pub id: u64,
    /// Operation label (the question text for copilot asks).
    pub label: String,
    /// Spans in recording order.
    pub spans: Vec<SpanRecord>,
    /// Events in recording order.
    pub events: Vec<EventRecord>,
}

#[derive(Debug)]
struct TracerInner {
    next_id: u64,
    capacity: usize,
    traces: VecDeque<TraceRecord>,
}

/// Shared tracer. Cheap to clone; clones share the buffer.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(512)
    }
}

impl Tracer {
    /// A tracer with the default buffer size.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A tracer keeping at most `capacity` traces.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                next_id: 1,
                capacity: capacity.max(1),
                traces: VecDeque::new(),
            })),
        }
    }

    /// Open a new trace and return its correlation ID.
    pub fn begin(&self, label: &str) -> TraceId {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        if inner.traces.len() == inner.capacity {
            inner.traces.pop_front();
        }
        inner.traces.push_back(TraceRecord {
            id,
            label: label.to_string(),
            spans: Vec::new(),
            events: Vec::new(),
        });
        TraceId(id)
    }

    /// Record a completed span against `id`. Spans against evicted
    /// traces are dropped silently.
    pub fn record_span(&self, id: TraceId, name: &str, micros: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(t) = inner.traces.iter_mut().rev().find(|t| t.id == id.0) {
            t.spans.push(SpanRecord {
                name: name.to_string(),
                micros,
            });
        }
    }

    /// Record a point event against `id`.
    pub fn event(&self, id: TraceId, name: &str, attrs: &[(&str, &str)]) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(t) = inner.traces.iter_mut().rev().find(|t| t.id == id.0) {
            t.events.push(EventRecord {
                name: name.to_string(),
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            });
        }
    }

    /// The full record for `id`, if still buffered.
    pub fn trace(&self, id: TraceId) -> Option<TraceRecord> {
        self.inner
            .lock()
            .unwrap()
            .traces
            .iter()
            .find(|t| t.id == id.0)
            .cloned()
    }

    /// The spans recorded against `id` (empty when evicted).
    pub fn spans(&self, id: TraceId) -> Vec<SpanRecord> {
        self.trace(id).map(|t| t.spans).unwrap_or_default()
    }

    /// The most recent `n` traces, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock().unwrap();
        inner
            .traces
            .iter()
            .rev()
            .take(n)
            .rev()
            .cloned()
            .collect()
    }

    /// Number of buffered traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().traces.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Saturating `Duration` → whole microseconds as `u64`.
pub fn micros_u64(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_events_correlate_by_id() {
        let t = Tracer::new();
        let a = t.begin("ask one");
        let b = t.begin("ask two");
        t.record_span(a, "retrieve", 120);
        t.record_span(b, "retrieve", 80);
        t.record_span(a, "generate", 300);
        t.event(a, "breaker_transition", &[("to", "open")]);
        let ra = t.trace(a).unwrap();
        assert_eq!(ra.label, "ask one");
        assert_eq!(ra.spans.len(), 2);
        assert_eq!(ra.spans[1].name, "generate");
        assert_eq!(ra.events[0].attrs[0], ("to".into(), "open".into()));
        assert_eq!(t.spans(b), vec![SpanRecord { name: "retrieve".into(), micros: 80 }]);
    }

    #[test]
    fn duplicate_stage_names_keep_per_invocation_entries() {
        let t = Tracer::new();
        let id = t.begin("repair loop");
        t.record_span(id, "execute", 10);
        t.record_span(id, "generate", 20);
        t.record_span(id, "execute", 30);
        let spans = t.spans(id);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].micros, 10);
        assert_eq!(spans[2].micros, 30);
    }

    #[test]
    fn buffer_evicts_oldest_and_drops_late_spans() {
        let t = Tracer::with_capacity(2);
        let a = t.begin("a");
        let b = t.begin("b");
        let c = t.begin("c");
        assert_eq!(t.len(), 2);
        assert!(t.trace(a).is_none());
        t.record_span(a, "late", 1); // dropped silently
        assert!(t.spans(a).is_empty());
        let recent = t.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].id, b.raw());
        assert_eq!(recent[1].id, c.raw());
    }

    #[test]
    fn micros_u64_saturates() {
        assert_eq!(micros_u64(Duration::from_micros(42)), 42);
        assert_eq!(micros_u64(Duration::MAX), u64::MAX);
    }
}

//! # dio-obs
//!
//! Self-hosted observability for the DIO copilot.
//!
//! The paper's copilot is an NL interface over operator telemetry; this
//! crate gives the copilot telemetry *of its own*, shaped exactly like
//! the operator data it serves:
//!
//! * [`registry`] — a lock-free-ish metrics registry: counters, gauges,
//!   and exponential-bucket histograms, all labelable, with cheap
//!   cloneable handles for the hot path;
//! * [`span`] + [`tracer`] — hierarchical distributed tracing:
//!   [`SpanContext`] is carried explicitly across every async/thread
//!   boundary, completed spans reassemble into per-request
//!   [`SpanTree`]s with orphan detection;
//! * [`recorder`] — a tail-sampling [`FlightRecorder`]: a byte-budgeted
//!   ring retaining complete span trees only for slow / errored / shed
//!   / degraded / failed-over traces, dumpable as JSON artifacts;
//! * [`slo`] — declarative SLOs evaluated from registry snapshots with
//!   multi-window burn-rate alerts, exported back into the registry;
//! * [`exporter`] — Prometheus text exposition (format 0.0.4);
//! * [`expo`] — a parser for that same format;
//! * [`scrape`] — the self-scrape loop: [`ObsScraper`] turns registry
//!   snapshots into `dio-tsdb` series and auto-generates `dio-catalog`
//!   descriptions for every instrument, so the copilot can answer
//!   questions about its own health through the standard
//!   retrieve→generate→execute path.
//!
//! Instrument naming convention: `dio_<crate>_<name>_<unit>`
//! (e.g. `dio_copilot_stage_duration_micros`). Label cardinality is
//! budgeted: labels hold closed enums (stage, outcome, fault kind, model
//! name), never question text or metric names.

pub mod budget;
pub mod exporter;
pub mod expo;
pub mod recorder;
pub mod registry;
pub mod scrape;
pub mod slo;
pub mod span;
pub mod tracer;

pub use budget::Budget;
pub use exporter::{escape_help, escape_label_value, to_prometheus};
pub use expo::{parse_exposition, ExpoError, ScrapedFamily, ScrapedKind, ScrapedSample};
pub use recorder::{FlightRecorder, RecorderConfig, RetainedTrace, FAILOVER_SPAN};
pub use registry::{
    Buckets, Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, InstrumentKind,
    Registry, SeriesSnapshot, SeriesValue, Snapshot,
};
pub use scrape::{ObsScraper, ScrapeStats};
pub use slo::{Objective, Selector, SloEngine, SloSpec, SloState, WindowBurn, PAGE_BURN,
    TICKET_BURN, WINDOWS};
pub use span::{
    build_tree, orphan_count, SpanContext, SpanNode, SpanRecord, SpanTree, TraceStatus,
};
pub use tracer::{micros_u64, EventRecord, TraceRecord, Tracer, ROOT_SPAN_NAME};

/// The triple every instrumented component shares: one metrics
/// registry, one tracer, one flight recorder (already attached to the
/// tracer). Cheap to clone — clones observe the same state.
#[derive(Debug, Clone)]
pub struct ObsHub {
    registry: Registry,
    tracer: Tracer,
    recorder: FlightRecorder,
}

impl Default for ObsHub {
    fn default() -> Self {
        let tracer = Tracer::new();
        let recorder = FlightRecorder::new();
        tracer.attach_recorder(recorder.clone());
        ObsHub {
            registry: Registry::new(),
            tracer,
            recorder,
        }
    }
}

impl ObsHub {
    /// A fresh hub.
    pub fn new() -> Self {
        ObsHub::default()
    }

    /// A hub whose flight recorder uses `cfg`.
    pub fn with_recorder_config(cfg: RecorderConfig) -> Self {
        let tracer = Tracer::new();
        let recorder = FlightRecorder::with_config(cfg);
        tracer.attach_recorder(recorder.clone());
        ObsHub {
            registry: Registry::new(),
            tracer,
            recorder,
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span/event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The tail-sampling flight recorder fed by the tracer.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_clones_share_registry_tracer_and_recorder() {
        let hub = ObsHub::new();
        let clone = hub.clone();
        clone.registry().counter("shared_total", "Shared.").inc();
        let root = clone.tracer().begin_trace("op");
        let step = clone.tracer().child_of(&root);
        clone.tracer().record_span(&step, "step", 0, 10, &[]);
        clone.tracer().finish_trace(&root, TraceStatus::Error);
        assert_eq!(hub.registry().snapshot().total("shared_total"), 1.0);
        assert_eq!(hub.tracer().spans(root.trace_id).len(), 2);
        // The errored trace reached the shared recorder via the tracer.
        assert_eq!(hub.recorder().len(), 1);
        assert_eq!(hub.recorder().retained()[0].reason, "error");
    }
}

//! # dio-obs
//!
//! Self-hosted observability for the DIO copilot.
//!
//! The paper's copilot is an NL interface over operator telemetry; this
//! crate gives the copilot telemetry *of its own*, shaped exactly like
//! the operator data it serves:
//!
//! * [`registry`] — a lock-free-ish metrics registry: counters, gauges,
//!   and exponential-bucket histograms, all labelable, with cheap
//!   cloneable handles for the hot path;
//! * [`tracer`] — a structured span/event tracer with per-`ask`
//!   correlation IDs and a bounded ring of recent traces;
//! * [`exporter`] — Prometheus text exposition (format 0.0.4);
//! * [`expo`] — a parser for that same format;
//! * [`scrape`] — the self-scrape loop: [`ObsScraper`] turns registry
//!   snapshots into `dio-tsdb` series and auto-generates `dio-catalog`
//!   descriptions for every instrument, so the copilot can answer
//!   questions about its own health through the standard
//!   retrieve→generate→execute path.
//!
//! Instrument naming convention: `dio_<crate>_<name>_<unit>`
//! (e.g. `dio_copilot_stage_duration_micros`). Label cardinality is
//! budgeted: labels hold closed enums (stage, outcome, fault kind, model
//! name), never question text or metric names.

pub mod exporter;
pub mod expo;
pub mod registry;
pub mod scrape;
pub mod tracer;

pub use exporter::{escape_help, escape_label_value, to_prometheus};
pub use expo::{parse_exposition, ExpoError, ScrapedFamily, ScrapedKind, ScrapedSample};
pub use registry::{
    Buckets, Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, InstrumentKind,
    Registry, SeriesSnapshot, SeriesValue, Snapshot,
};
pub use scrape::{ObsScraper, ScrapeStats};
pub use tracer::{micros_u64, EventRecord, SpanRecord, TraceId, TraceRecord, Tracer};

/// The pair every instrumented component shares: one metrics registry,
/// one tracer. Cheap to clone — clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct ObsHub {
    registry: Registry,
    tracer: Tracer,
}

impl ObsHub {
    /// A fresh hub.
    pub fn new() -> Self {
        ObsHub::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span/event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_clones_share_registry_and_tracer() {
        let hub = ObsHub::new();
        let clone = hub.clone();
        clone.registry().counter("shared_total", "Shared.").inc();
        let id = clone.tracer().begin("op");
        clone.tracer().record_span(id, "step", 10);
        assert_eq!(hub.registry().snapshot().total("shared_total"), 1.0);
        assert_eq!(hub.tracer().spans(id).len(), 1);
    }
}

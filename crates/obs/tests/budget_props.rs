//! Property tests for deadline arithmetic: remaining-budget
//! computation saturates (no panic or wrap when the deadline has
//! passed, no matter how far), [`Budget::remaining`] is monotonically
//! non-increasing across repeated observations, and capping never
//! exceeds either operand.

use std::time::{Duration, Instant};

use dio_obs::Budget;
use proptest::prelude::*;

proptest! {
    /// Deadlines arbitrarily far in the past saturate to zero — never
    /// a panic, never an underflow, and `cap` of anything is zero.
    #[test]
    fn lapsed_deadlines_saturate_to_zero(
        past_micros in 0u64..5_000_000,
        want_micros in 0u64..10_000_000,
    ) {
        let now = Instant::now();
        // `Instant` subtraction can underflow near process start;
        // checked_sub keeps the property total over arbitrary offsets.
        let deadline = now
            .checked_sub(Duration::from_micros(past_micros))
            .unwrap_or(now);
        let b = Budget::with_deadline(deadline);
        let remaining = b.remaining().expect("bounded budget reports remaining");
        prop_assert_eq!(remaining, Duration::ZERO);
        prop_assert!(b.expired());
        prop_assert_eq!(b.cap(Duration::from_micros(want_micros)), Duration::ZERO);
    }

    /// Observed repeatedly, `remaining()` never increases: time only
    /// drains a budget. Holds across arbitrary future deadlines and
    /// observation counts, and cancellation pins it at zero.
    #[test]
    fn remaining_is_monotonically_non_increasing(
        allowance_micros in 0u64..2_000_000,
        observations in 2usize..64,
        cancel_at in 1usize..64,
    ) {
        let b = Budget::within(Duration::from_micros(allowance_micros));
        let cancel_at = cancel_at.min(observations - 1);
        let mut last = b.remaining().expect("bounded budget reports remaining");
        for i in 1..observations {
            if i == cancel_at {
                b.cancel();
            }
            let next = b.remaining().expect("bounded budget reports remaining");
            prop_assert!(
                next <= last,
                "remaining() increased: {:?} -> {:?} at observation {}",
                last,
                next,
                i
            );
            if i >= cancel_at {
                prop_assert_eq!(next, Duration::ZERO);
                prop_assert!(b.expired());
            }
            last = next;
        }
    }

    /// `cap(want)` never exceeds `want` nor the remaining budget at
    /// the time of the call; unbounded budgets pass `want` through.
    #[test]
    fn cap_is_bounded_by_both_operands(
        allowance_micros in 0u64..1_000_000,
        want_micros in 0u64..10_000_000,
    ) {
        let want = Duration::from_micros(want_micros);
        let bounded = Budget::within(Duration::from_micros(allowance_micros));
        let capped = bounded.cap(want);
        prop_assert!(capped <= want);
        prop_assert!(capped <= Duration::from_micros(allowance_micros));

        let unbounded = Budget::unbounded();
        prop_assert_eq!(unbounded.cap(want), want);
        unbounded.cancel();
        prop_assert_eq!(unbounded.cap(want), Duration::ZERO);
    }
}

//! Property test: the Prometheus exposition parser must *reject*
//! damaged input with a structured error, never panic on it. A scrape
//! that crosses a faulty link arrives byte-flipped, and the scraper
//! sits inside the self-observation loop — a panic there takes the
//! whole copilot down with it.

use dio_obs::{parse_exposition, to_prometheus, Buckets, Registry};
use proptest::prelude::*;

/// A realistic exposition: counters with escaped label values, a gauge,
/// and a histogram — every syntactic feature the parser handles.
fn exposition() -> String {
    let r = Registry::new();
    r.counter_with(
        "fz_calls_total",
        "Calls with \"tricky\"\\chars\nand lines.",
        &[("model", "gpt4\nsim"), ("outcome", "ok")],
    )
    .add(41.0);
    r.gauge("fz_level", "Level.").set(-1.25);
    let h = r.histogram("fz_lat_micros", "Latency.", &Buckets::latency_micros());
    h.observe(250.0);
    h.observe(5000.0);
    to_prometheus(&r.snapshot())
}

proptest! {
    /// Flip one byte anywhere in a valid exposition: parsing must
    /// return (Ok or Err), not panic. Non-UTF-8 results model the
    /// corrupted-wire case and must be rejected before the parser.
    #[test]
    fn single_byte_flip_never_panics(pos in 0usize..4096, bit in 0u8..8) {
        let text = exposition();
        let mut bytes = text.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Ok(damaged) = String::from_utf8(bytes) {
            let _ = parse_exposition(&damaged);
        }
    }

    /// Flip several bytes at once — compound damage, same contract.
    /// Each entry encodes (position, bit) as `pos * 8 + bit`.
    #[test]
    fn multi_byte_flips_never_panic(
        flips in prop::collection::vec(0usize..32768, 1..16)
    ) {
        let text = exposition();
        let mut bytes = text.into_bytes();
        for flip in flips {
            let pos = (flip / 8) % bytes.len();
            bytes[pos] ^= 1 << (flip % 8);
        }
        if let Ok(damaged) = String::from_utf8(bytes) {
            let _ = parse_exposition(&damaged);
        }
    }

    /// Truncate at any byte boundary that is still valid UTF-8: the
    /// parser must cope with an exposition cut mid-line.
    #[test]
    fn truncation_never_panics(cut in 0usize..4096) {
        let text = exposition();
        let cut = cut % (text.len() + 1);
        if text.is_char_boundary(cut) {
            let _ = parse_exposition(&text[..cut]);
        }
    }
}

//! Registry thread-safety: the serving tier has many workers writing
//! the same counter/histogram families through cloned handles. Eight
//! threads hammer shared instruments; afterwards every total must be
//! exactly the sum of the per-thread contributions — no lost updates,
//! no torn histogram buckets.

use dio_obs::{Buckets, Registry};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS: usize = 2_000;

#[test]
fn counters_survive_contention_without_lost_updates() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // One shared series plus one per-thread series, both
                // resolved through the registry on every iteration to
                // exercise the family lookup path under contention.
                for i in 0..OPS {
                    registry
                        .counter("conc_shared_total", "shared series")
                        .inc();
                    registry
                        .counter_with(
                            "conc_per_thread_total",
                            "per-thread series",
                            &[("thread", &t.to_string())],
                        )
                        .add((i % 3) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }

    let snap = registry.snapshot();
    assert_eq!(
        snap.total("conc_shared_total"),
        (THREADS * OPS) as f64,
        "shared counter lost updates"
    );
    // Each thread contributes sum(i % 3 for i in 0..OPS).
    let per_thread: usize = (0..OPS).map(|i| i % 3).sum();
    assert_eq!(
        snap.total("conc_per_thread_total"),
        (THREADS * per_thread) as f64,
        "labelled counters lost updates"
    );
    let fam = snap.family("conc_per_thread_total").unwrap();
    assert_eq!(fam.series.len(), THREADS, "one series per thread label");
}

#[test]
fn gauges_and_histograms_are_consistent_under_contention() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let hist = registry.histogram(
                    "conc_latency_micros",
                    "synthetic latencies",
                    &Buckets::latency_micros(),
                );
                let gauge = registry.gauge("conc_inflight", "synthetic gauge");
                for i in 0..OPS {
                    gauge.add(1.0);
                    hist.observe((t * OPS + i) as f64);
                    gauge.sub(1.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }

    let hist = registry.histogram(
        "conc_latency_micros",
        "synthetic latencies",
        &Buckets::latency_micros(),
    );
    assert_eq!(hist.count(), (THREADS * OPS) as u64, "histogram lost observations");
    // Sum of 0..THREADS*OPS.
    let n = THREADS * OPS;
    assert_eq!(hist.sum(), (n * (n - 1) / 2) as f64, "histogram sum drifted");
    // Every increment was matched by a decrement.
    let gauge = registry.gauge("conc_inflight", "synthetic gauge");
    assert_eq!(gauge.value(), 0.0, "gauge lost paired add/sub updates");
}

//! Property tests for the tail-sampling flight recorder: under
//! arbitrary interleavings of offered traces — finished and partial,
//! orphaned and intact, tiny and oversized — the ring must never
//! exceed its byte budget, never retain a partial tree, and evict
//! strictly oldest-first.

use dio_obs::{FlightRecorder, RecorderConfig, SpanRecord, TraceRecord, TraceStatus, FAILOVER_SPAN};
use proptest::prelude::*;

/// One synthetic offer, decoded from a random seed.
#[derive(Debug, Clone)]
struct Offer {
    status: TraceStatus,
    total_micros: u64,
    /// Extra child spans under the root; padding varies the serialized
    /// size so evictions trigger at different points.
    children: usize,
    padding: usize,
    finished: bool,
    orphan: bool,
    failover: bool,
}

fn offer_from_seed(seed: u64) -> Offer {
    Offer {
        status: match seed % 5 {
            0 => TraceStatus::Ok,
            1 => TraceStatus::Error,
            2 => TraceStatus::Shed,
            3 => TraceStatus::DeadlineExceeded,
            _ => TraceStatus::Degraded,
        },
        total_micros: (seed >> 2) % 50_000,
        children: ((seed >> 20) % 6) as usize,
        padding: ((seed >> 24) % 400) as usize,
        finished: !(seed >> 33).is_multiple_of(5), // ~80 %
        orphan: (seed >> 36).is_multiple_of(5),    // ~20 %
        failover: (seed >> 39).is_multiple_of(5),  // ~20 %
    }
}

fn build_record(id: u64, offer: &Offer) -> TraceRecord {
    let mut spans = vec![SpanRecord {
        span_id: 1,
        parent_span_id: None,
        name: "request".into(),
        start_micros: 0,
        micros: offer.total_micros,
        attrs: vec![("pad".into(), "x".repeat(offer.padding))],
    }];
    for i in 0..offer.children {
        spans.push(SpanRecord {
            span_id: 10 + i as u64,
            parent_span_id: Some(1),
            name: format!("stage_{i}"),
            start_micros: i as u64,
            micros: offer.total_micros / (offer.children as u64 + 1),
            attrs: Vec::new(),
        });
    }
    if offer.failover {
        spans.push(SpanRecord {
            span_id: 99,
            parent_span_id: Some(1),
            name: FAILOVER_SPAN.into(),
            start_micros: 0,
            micros: 10,
            attrs: vec![("shard".into(), "0".into())],
        });
    }
    if offer.orphan {
        spans.push(SpanRecord {
            span_id: 777,
            parent_span_id: Some(555_555), // parent never recorded
            name: "lost".into(),
            start_micros: 0,
            micros: 1,
            attrs: Vec::new(),
        });
    }
    TraceRecord {
        id,
        label: format!("prop trace {id}"),
        root_span_id: 1,
        status: offer.status,
        total_micros: offer.total_micros,
        finished: offer.finished,
        spans,
        events: Vec::new(),
    }
}

proptest! {
    /// The three ring invariants hold after every single offer, not
    /// just at the end: bytes within budget, only complete trees
    /// retained, and the retained set is a contiguous oldest-first
    /// suffix of everything ever retained (evictions only from the
    /// front).
    #[test]
    fn ring_never_overflows_and_keeps_only_complete_trees(
        seeds in prop::collection::vec(any::<u64>(), 1..120),
        budget in 256usize..8192,
    ) {
        let rec = FlightRecorder::with_config(RecorderConfig {
            byte_budget: budget,
            window: 32,
            min_samples: 8,
        });
        let offers: Vec<Offer> = seeds.iter().map(|&s| offer_from_seed(s)).collect();
        let mut retained_order: Vec<u64> = Vec::new();
        for (i, offer) in offers.iter().enumerate() {
            let record = build_record(i as u64, offer);
            let reason = rec.offer(&record);
            if reason.is_some() {
                retained_order.push(record.id);
            }

            // Invariant 1: the byte budget is a hard ceiling, always.
            prop_assert!(
                rec.bytes_used() <= rec.byte_budget(),
                "bytes_used {} exceeded budget {} after offer {}",
                rec.bytes_used(),
                rec.byte_budget(),
                i
            );

            let kept = rec.retained();
            // Invariant 2: nothing partial survives, and the charged
            // bytes reconcile with what is actually held.
            let mut sum = 0usize;
            for k in &kept {
                prop_assert!(k.record.is_complete(), "partial tree retained: {:?}", k.record);
                prop_assert!(k.record.tree().is_some());
                prop_assert!(k.bytes > 0);
                sum += k.bytes;
            }
            prop_assert_eq!(sum, rec.bytes_used());

            // Invariant 3: oldest-first eviction — the ring equals the
            // tail of the retention order.
            let ids: Vec<u64> = kept.iter().map(|k| k.record.id).collect();
            let suffix = retained_order[retained_order.len() - ids.len()..].to_vec();
            prop_assert_eq!(ids, suffix, "ring is not an oldest-first suffix");
        }

        // Partial offers were all rejected as such, never retained.
        let (offered, rejected_partial) = rec.offer_stats();
        prop_assert_eq!(offered as usize, offers.len());
        let partials = offers.iter().filter(|o| !o.finished || o.orphan).count();
        prop_assert_eq!(rejected_partial as usize, partials);
    }

    /// Non-OK statuses and failover spans are always retained (budget
    /// permitting): the recorder may sample away fast OKs, never the
    /// interesting tail.
    #[test]
    fn interesting_complete_traces_are_always_retained(
        status in prop::sample::select(vec![
            TraceStatus::Ok,
            TraceStatus::Error,
            TraceStatus::Shed,
            TraceStatus::Degraded,
            TraceStatus::DeadlineExceeded,
        ]),
        failover in any::<bool>(),
        micros in 0u64..10_000,
    ) {
        let rec = FlightRecorder::new(); // 1 MiB: nothing evicts here
        let offer = Offer {
            status,
            total_micros: micros,
            children: 2,
            padding: 16,
            finished: true,
            orphan: false,
            failover,
        };
        let reason = rec.offer(&build_record(1, &offer));
        if status != TraceStatus::Ok {
            prop_assert_eq!(reason.as_deref(), Some(status.slug()));
        } else if failover {
            prop_assert_eq!(reason.as_deref(), Some("failed_over"));
        } else {
            // Fast OK against a cold window: sampled away.
            prop_assert!(reason.is_none());
        }
    }
}

//! Write-ahead journal for the issue tracker.
//!
//! The tracker's `to_json`/`from_json` snapshot is all-or-nothing: a
//! torn write loses the whole issue history. The journal instead logs
//! every mutating operation as one checksummed frame (same framing as
//! the tsdb WAL, see `dio_faults::framing`) and rebuilds the tracker by
//! replay. Ack-on-`Ok`: an operation acknowledged by
//! [`Journal::record`] survives a crash at any byte offset; a torn
//! final frame is quarantined as clean truncation of unacked work.

use crate::contribution::Contribution;
use crate::issue::IssueId;
use crate::tracker::IssueTracker;
use dio_catalog::DomainDb;
use dio_faults::{decode_all, encode_record, Medium};
use serde::{Deserialize, Serialize};

/// One logged tracker mutation.
// Ops are encoded and dropped immediately; the Resolve/Close size gap
// never lives in a collection long enough to matter.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// `raise_hand` — file an issue.
    RaiseHand {
        /// The question that stumped the copilot.
        question: String,
        /// Metrics that were in context.
        context_metrics: Vec<String>,
        /// The copilot's (unsatisfying) response.
        response: String,
    },
    /// `comment` — append a comment.
    Comment {
        /// Target issue.
        id: IssueId,
        /// Comment author.
        author: String,
        /// Comment text.
        text: String,
    },
    /// `resolve` — expert resolution with a contribution.
    Resolve {
        /// Target issue.
        id: IssueId,
        /// Resolving expert.
        expert_id: String,
        /// What they contributed.
        contribution: Contribution,
    },
    /// `close` — close without contribution.
    Close {
        /// Target issue.
        id: IssueId,
    },
}

/// What a journal recovery scan found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JournalRecovery {
    /// Every intact operation, in log order.
    pub ops: Vec<JournalOp>,
    /// Frames quarantined for checksum/framing damage.
    pub corrupt_frames: usize,
    /// Frames that passed their checksum but did not parse as a
    /// [`JournalOp`].
    pub unparsable: usize,
    /// The log ended mid-frame (torn final write, unacked).
    pub truncated_tail: bool,
}

impl JournalRecovery {
    /// True when every byte decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.corrupt_frames == 0 && self.unparsable == 0 && !self.truncated_tail
    }
}

/// Outcome of replaying recovered operations into a tracker.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Operations applied successfully.
    pub applied: usize,
    /// Operations the tracker rejected (e.g. a resolve of an issue a
    /// quarantined frame would have opened). Deterministic: the same
    /// log replays to the same report.
    pub rejected: usize,
}

/// An append-only operation journal over any [`Medium`].
#[derive(Debug)]
pub struct Journal<M> {
    medium: M,
    recorded: usize,
}

impl<M: Medium> Journal<M> {
    /// Start journaling onto `medium`.
    pub fn new(medium: M) -> Self {
        Journal {
            medium,
            recorded: 0,
        }
    }

    /// Record one operation. `Ok` acknowledges durability; on `Err`
    /// nothing is acknowledged and the caller may retry.
    pub fn record(&mut self, op: &JournalOp) -> std::io::Result<()> {
        let payload = serde_json::to_string(op).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        })?;
        self.medium.append(&encode_record(payload.as_bytes()))?;
        self.recorded += 1;
        Ok(())
    }

    /// Operations acknowledged through this handle.
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// Bytes currently on the medium.
    pub fn len(&self) -> usize {
        self.medium.len()
    }

    /// True when the medium holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.medium.is_empty()
    }

    /// The underlying medium.
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// Unwrap into the underlying medium.
    pub fn into_medium(self) -> M {
        self.medium
    }
}

/// Scan raw journal bytes into operations, quarantining damage.
pub fn recover(bytes: &[u8]) -> JournalRecovery {
    let scan = decode_all(bytes);
    let mut out = JournalRecovery {
        corrupt_frames: scan.corrupt_frames(),
        truncated_tail: scan.truncated_tail,
        ..JournalRecovery::default()
    };
    for payload in &scan.records {
        match std::str::from_utf8(payload)
            .ok()
            .and_then(|s| serde_json::from_str::<JournalOp>(s).ok())
        {
            Some(op) => out.ops.push(op),
            None => out.unparsable += 1,
        }
    }
    out
}

/// Replay operations into `tracker` (and `db`, for resolutions).
/// Rejections are counted, never fatal: after quarantined frames the
/// remaining ops may reference issues that no longer exist.
pub fn replay(ops: &[JournalOp], tracker: &mut IssueTracker, db: &mut DomainDb) -> ReplayReport {
    let mut report = ReplayReport::default();
    for op in ops {
        let ok = match op {
            JournalOp::RaiseHand {
                question,
                context_metrics,
                response,
            } => {
                tracker.raise_hand(question, context_metrics.clone(), response);
                true
            }
            JournalOp::Comment { id, author, text } => {
                tracker.comment(*id, author, text).is_ok()
            }
            JournalOp::Resolve {
                id,
                expert_id,
                contribution,
            } => tracker
                .resolve(*id, expert_id, contribution.clone(), db)
                .is_ok(),
            JournalOp::Close { id } => tracker.close(*id).is_ok(),
        };
        if ok {
            report.applied += 1;
        } else {
            report.rejected += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::issue::IssueState;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};
    use dio_faults::MemMedium;

    fn db() -> DomainDb {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        }))
    }

    fn ops() -> Vec<JournalOp> {
        vec![
            JournalOp::RaiseHand {
                question: "what is the LCS NI-LR success rate".into(),
                context_metrics: vec!["amflcs_lcs_ni_lr_attempt".into()],
                response: "no confident answer".into(),
            },
            JournalOp::Comment {
                id: 0,
                author: "user:op1".into(),
                text: "also fails for MT-LR".into(),
            },
            JournalOp::RaiseHand {
                question: "paging success?".into(),
                context_metrics: vec![],
                response: "unsure".into(),
            },
            JournalOp::Resolve {
                id: 0,
                expert_id: "expert:alice".into(),
                contribution: Contribution::Note {
                    title: "lcs-guidance".into(),
                    text: "use the NI-LR counters".into(),
                },
            },
            JournalOp::Close { id: 1 },
        ]
    }

    fn journal_bytes(ops: &[JournalOp]) -> (Vec<u8>, Vec<usize>) {
        let mut j = Journal::new(MemMedium::new());
        let mut boundaries = vec![];
        for op in ops {
            j.record(op).unwrap();
            boundaries.push(j.len());
        }
        (j.into_medium().into_bytes(), boundaries)
    }

    #[test]
    fn journal_replay_reproduces_tracker_state() {
        let (bytes, _) = journal_bytes(&ops());
        let rec = recover(&bytes);
        assert!(rec.is_clean());
        assert_eq!(rec.ops, ops());
        let mut tracker = IssueTracker::new();
        let mut d = db();
        let before_notes = d.note_count();
        let report = replay(&rec.ops, &mut tracker, &mut d);
        assert_eq!(report.applied, 5);
        assert_eq!(report.rejected, 0);
        assert_eq!(tracker.len(), 2);
        assert_eq!(tracker.get(0).unwrap().state, IssueState::Resolved);
        assert_eq!(tracker.get(1).unwrap().state, IssueState::Closed);
        assert_eq!(d.note_count(), before_notes + 1);
    }

    #[test]
    fn crash_at_every_byte_offset_never_loses_an_acked_op() {
        let all = ops();
        let (bytes, boundaries) = journal_bytes(&all);
        for cut in 0..=bytes.len() {
            let rec = recover(&bytes[..cut]);
            let acked = boundaries.iter().filter(|&&b| b <= cut).count();
            assert_eq!(rec.ops.len(), acked, "cut at {cut}");
            assert_eq!(rec.ops, all[..acked], "cut at {cut}");
            assert_eq!(rec.corrupt_frames, 0, "cut at {cut} surfaced corruption");
            assert_eq!(rec.unparsable, 0, "cut at {cut}");
            // Replay of any acked prefix is rejection-free: ops only
            // reference issues opened by earlier acked ops.
            let mut tracker = IssueTracker::new();
            let mut d = db();
            let report = replay(&rec.ops, &mut tracker, &mut d);
            assert_eq!(report.rejected, 0, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_frame_quarantines_and_replay_degrades_deterministically() {
        let all = ops();
        let (mut bytes, boundaries) = journal_bytes(&all);
        // Damage the first frame (the RaiseHand that opens issue 0).
        bytes[boundaries[0] / 2] ^= 0x01;
        let rec = recover(&bytes);
        assert_eq!(rec.corrupt_frames, 1);
        assert_eq!(rec.ops.len(), 4);
        let mut tracker = IssueTracker::new();
        let mut d = db();
        let report = replay(&rec.ops, &mut tracker, &mut d);
        // Issue ids shifted: the comment/resolve/close land on whatever
        // exists (or nothing). The exact split is deterministic.
        assert_eq!(report.applied + report.rejected, 4);
        assert!(report.rejected >= 1, "a dangling op must be rejected");
        // Replaying the same damaged log yields the same outcome.
        let mut tracker2 = IssueTracker::new();
        let mut d2 = db();
        assert_eq!(replay(&rec.ops, &mut tracker2, &mut d2), report);
        assert_eq!(tracker2.len(), tracker.len());
    }
}

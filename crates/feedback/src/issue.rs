//! Repository-style issues.

use serde::{Deserialize, Serialize};

/// Issue identifier.
pub type IssueId = u64;

/// Issue lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueState {
    /// Awaiting an expert.
    Open,
    /// Resolved with a contribution.
    Resolved,
    /// Closed without a contribution.
    Closed,
}

/// The structured body the raise-hand button files (paper §3.4: "This
/// issue will contain the question, context, and response").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueBody {
    /// The user's question.
    pub question: String,
    /// The retrieved context shown to the model (metric names).
    pub context_metrics: Vec<String>,
    /// The copilot's response (query + answer rendering).
    pub response: String,
}

/// A comment on an issue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comment {
    /// Author id (user or expert).
    pub author: String,
    /// Comment text.
    pub text: String,
}

/// One issue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Issue {
    /// Identifier.
    pub id: IssueId,
    /// Short title.
    pub title: String,
    /// Structured body.
    pub body: IssueBody,
    /// Lifecycle state.
    pub state: IssueState,
    /// Labels (e.g. `needs-expert`, `amf`).
    pub labels: Vec<String>,
    /// Discussion.
    pub comments: Vec<Comment>,
    /// Resolving expert, when resolved.
    pub resolved_by: Option<String>,
}

impl Issue {
    /// A fresh open issue.
    pub fn new(id: IssueId, title: impl Into<String>, body: IssueBody) -> Self {
        Issue {
            id,
            title: title.into(),
            body,
            state: IssueState::Open,
            labels: vec!["needs-expert".to_string()],
            comments: Vec::new(),
            resolved_by: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_issue_is_open_and_labelled() {
        let i = Issue::new(
            7,
            "copilot missed LCS metrics",
            IssueBody {
                question: "what is the LCS NI-LR success rate".into(),
                context_metrics: vec!["amflcs_lcs_ni_lr_attempt".into()],
                response: "unable to answer confidently".into(),
            },
        );
        assert_eq!(i.id, 7);
        assert_eq!(i.state, IssueState::Open);
        assert_eq!(i.labels, vec!["needs-expert"]);
        assert!(i.resolved_by.is_none());
    }
}

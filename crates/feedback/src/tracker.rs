//! The embedded issue tracker.

use crate::contribution::Contribution;
use crate::experts::ExpertRegistry;
use crate::issue::{Comment, Issue, IssueBody, IssueId, IssueState};
use dio_catalog::DomainDb;
use serde::{Deserialize, Serialize};

/// Tracker errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackerError {
    /// Unknown issue id.
    NotFound(IssueId),
    /// The resolver is not a registered expert.
    NotAnExpert(String),
    /// The issue is not open.
    NotOpen(IssueId),
}

impl std::fmt::Display for TrackerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackerError::NotFound(id) => write!(f, "issue #{id} not found"),
            TrackerError::NotAnExpert(who) => {
                write!(f, "'{who}' is not a registered expert")
            }
            TrackerError::NotOpen(id) => write!(f, "issue #{id} is not open"),
        }
    }
}

impl std::error::Error for TrackerError {}

/// The issue tracker plus its expert registry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IssueTracker {
    issues: Vec<Issue>,
    experts: ExpertRegistry,
}

impl IssueTracker {
    /// Tracker with the default expert pool.
    pub fn new() -> Self {
        IssueTracker {
            issues: Vec::new(),
            experts: ExpertRegistry::with_defaults(),
        }
    }

    /// Tracker with a caller-supplied registry.
    pub fn with_experts(experts: ExpertRegistry) -> Self {
        IssueTracker {
            issues: Vec::new(),
            experts,
        }
    }

    /// The expert registry.
    pub fn experts(&self) -> &ExpertRegistry {
        &self.experts
    }

    /// Mutable registry access (to expand the pool, §3.4 future work).
    pub fn experts_mut(&mut self) -> &mut ExpertRegistry {
        &mut self.experts
    }

    /// File an issue from a copilot interaction (the raise-hand button).
    pub fn raise_hand(
        &mut self,
        question: &str,
        context_metrics: Vec<String>,
        response: &str,
    ) -> IssueId {
        let id = self.issues.len() as IssueId;
        let title = format!("[copilot] expert help: {}", truncate(question, 60));
        self.issues.push(Issue::new(
            id,
            title,
            IssueBody {
                question: question.to_string(),
                context_metrics,
                response: response.to_string(),
            },
        ));
        id
    }

    /// Look up an issue.
    pub fn get(&self, id: IssueId) -> Option<&Issue> {
        self.issues.get(id as usize)
    }

    /// All issues in a state.
    pub fn in_state(&self, state: IssueState) -> Vec<&Issue> {
        self.issues.iter().filter(|i| i.state == state).collect()
    }

    /// Total number of issues.
    pub fn len(&self) -> usize {
        self.issues.len()
    }

    /// True when no issues exist.
    pub fn is_empty(&self) -> bool {
        self.issues.is_empty()
    }

    /// Comment on an issue (any author).
    pub fn comment(
        &mut self,
        id: IssueId,
        author: &str,
        text: &str,
    ) -> Result<(), TrackerError> {
        let issue = self
            .issues
            .get_mut(id as usize)
            .ok_or(TrackerError::NotFound(id))?;
        issue.comments.push(Comment {
            author: author.to_string(),
            text: text.to_string(),
        });
        Ok(())
    }

    /// Resolve an open issue with a contribution: the contribution is
    /// merged into `db` with attribution, the issue transitions to
    /// `Resolved`, and any exemplar payload is returned for the
    /// copilot's few-shot pool.
    pub fn resolve(
        &mut self,
        id: IssueId,
        expert_id: &str,
        contribution: Contribution,
        db: &mut DomainDb,
    ) -> Result<Option<(String, Vec<String>, String)>, TrackerError> {
        if !self.experts.is_expert(expert_id) {
            return Err(TrackerError::NotAnExpert(expert_id.to_string()));
        }
        let issue = self
            .issues
            .get_mut(id as usize)
            .ok_or(TrackerError::NotFound(id))?;
        if issue.state != IssueState::Open {
            return Err(TrackerError::NotOpen(id));
        }
        let exemplar = contribution.apply(db, expert_id);
        issue.comments.push(Comment {
            author: expert_id.to_string(),
            text: format!("resolved with {}", contribution.describe()),
        });
        issue.state = IssueState::Resolved;
        issue.resolved_by = Some(expert_id.to_string());
        Ok(exemplar)
    }

    /// Serialise the tracker (issues + expert registry) to JSON — the
    /// analogue of the GitHub repository persisting its issue history.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tracker serialises")
    }

    /// Restore a tracker from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Close an issue without a contribution.
    pub fn close(&mut self, id: IssueId) -> Result<(), TrackerError> {
        let issue = self
            .issues
            .get_mut(id as usize)
            .ok_or(TrackerError::NotFound(id))?;
        if issue.state != IssueState::Open {
            return Err(TrackerError::NotOpen(id));
        }
        issue.state = IssueState::Closed;
        Ok(())
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let t: String = s.chars().take(n).collect();
        format!("{t}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};

    fn db() -> DomainDb {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        }))
    }

    fn tracker_with_issue() -> (IssueTracker, IssueId) {
        let mut t = IssueTracker::new();
        let id = t.raise_hand(
            "what is the LCS NI-LR success rate",
            vec!["amflcs_lcs_ni_lr_attempt".into()],
            "I could not find a confident answer.",
        );
        (t, id)
    }

    #[test]
    fn raise_hand_files_open_issue() {
        let (t, id) = tracker_with_issue();
        let issue = t.get(id).unwrap();
        assert_eq!(issue.state, IssueState::Open);
        assert!(issue.title.contains("expert help"));
        assert_eq!(issue.body.context_metrics.len(), 1);
        assert_eq!(t.in_state(IssueState::Open).len(), 1);
    }

    #[test]
    fn resolution_requires_registered_expert() {
        let (mut t, id) = tracker_with_issue();
        let mut d = db();
        let err = t
            .resolve(
                id,
                "not-an-expert",
                Contribution::Note {
                    title: "x".into(),
                    text: "y".into(),
                },
                &mut d,
            )
            .unwrap_err();
        assert_eq!(err, TrackerError::NotAnExpert("not-an-expert".into()));
    }

    #[test]
    fn resolution_merges_into_db_and_attributes() {
        let (mut t, id) = tracker_with_issue();
        let mut d = db();
        let before = d.note_count();
        t.resolve(
            id,
            "expert:alice",
            Contribution::Note {
                title: "lcs-guidance".into(),
                text: "Use the spelled-out network induced location request counters.".into(),
            },
            &mut d,
        )
        .unwrap();
        assert_eq!(d.note_count(), before + 1);
        let issue = t.get(id).unwrap();
        assert_eq!(issue.state, IssueState::Resolved);
        assert_eq!(issue.resolved_by.as_deref(), Some("expert:alice"));
        assert!(issue.comments.last().unwrap().text.contains("resolved with"));
    }

    #[test]
    fn cannot_resolve_twice() {
        let (mut t, id) = tracker_with_issue();
        let mut d = db();
        let c = Contribution::Note {
            title: "a".into(),
            text: "b".into(),
        };
        t.resolve(id, "expert:alice", c.clone(), &mut d).unwrap();
        assert_eq!(
            t.resolve(id, "expert:alice", c, &mut d).unwrap_err(),
            TrackerError::NotOpen(id)
        );
    }

    #[test]
    fn close_without_contribution() {
        let (mut t, id) = tracker_with_issue();
        t.close(id).unwrap();
        assert_eq!(t.get(id).unwrap().state, IssueState::Closed);
        assert!(t.close(id).is_err());
    }

    #[test]
    fn comments_append() {
        let (mut t, id) = tracker_with_issue();
        t.comment(id, "user:op1", "this also fails for MT-LR").unwrap();
        assert_eq!(t.get(id).unwrap().comments.len(), 1);
        assert!(t.comment(99, "x", "y").is_err());
    }

    #[test]
    fn exemplar_resolution_returns_payload() {
        let (mut t, id) = tracker_with_issue();
        let mut d = db();
        let out = t
            .resolve(
                id,
                "expert:bob",
                Contribution::Exemplar {
                    question: "what is the LCS NI-LR success rate".into(),
                    metrics: vec!["a".into(), "b".into()],
                    promql: "100 * sum(a) / sum(b)".into(),
                },
                &mut d,
            )
            .unwrap();
        assert!(out.is_some());
    }

    #[test]
    fn tracker_round_trips_through_json() {
        let (mut t, id) = tracker_with_issue();
        t.comment(id, "user:op1", "more context").unwrap();
        let json = t.to_json();
        let back = IssueTracker::from_json(&json).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.get(id).unwrap().comments.len(), 1);
        assert!(back.experts().is_expert("expert:alice"));
    }

    #[test]
    fn corrupt_tracker_json_is_an_error() {
        assert!(IssueTracker::from_json("{nope").is_err());
    }

    #[test]
    fn long_titles_truncate() {
        let mut t = IssueTracker::new();
        let long_q = "x".repeat(200);
        let id = t.raise_hand(&long_q, vec![], "r");
        assert!(t.get(id).unwrap().title.chars().count() < 100);
    }
}

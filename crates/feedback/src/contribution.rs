//! Expert contributions and their application to the domain DB.

use dio_catalog::store::ExpertNote;
use dio_catalog::{DomainDb, FunctionDef, MetricDef};
use serde::{Deserialize, Serialize};

/// What an expert contributes when resolving an issue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Contribution {
    /// A new or corrected metric definition.
    MetricDoc(MetricDef),
    /// A bespoke function definition.
    Function(FunctionDef),
    /// A free-form guidance note (retrievable context).
    Note {
        /// Short title.
        title: String,
        /// The guidance text.
        text: String,
    },
    /// A worked example (question + PromQL) for few-shot prompting.
    Exemplar {
        /// The example question.
        question: String,
        /// Metrics the example uses.
        metrics: Vec<String>,
        /// Reference PromQL.
        promql: String,
    },
}

impl Contribution {
    /// Merge this contribution into the domain database with
    /// attribution. Exemplars don't live in the DB; they are returned
    /// to the caller so the copilot can extend its few-shot pool.
    pub fn apply(
        &self,
        db: &mut DomainDb,
        author: &str,
    ) -> Option<(String, Vec<String>, String)> {
        match self {
            Contribution::MetricDoc(m) => {
                db.add_expert_metric(m.clone(), author);
                None
            }
            Contribution::Function(f) => {
                db.add_expert_function(f.clone(), author);
                None
            }
            Contribution::Note { title, text } => {
                db.add_expert_note(ExpertNote {
                    title: title.clone(),
                    text: text.clone(),
                    author: author.to_string(),
                });
                None
            }
            Contribution::Exemplar {
                question,
                metrics,
                promql,
            } => Some((question.clone(), metrics.clone(), promql.clone())),
        }
    }

    /// A short human description for issue comments.
    pub fn describe(&self) -> String {
        match self {
            Contribution::MetricDoc(m) => format!("metric documentation for {}", m.name),
            Contribution::Function(f) => format!("function definition {}", f.name),
            Contribution::Note { title, .. } => format!("guidance note '{title}'"),
            Contribution::Exemplar { question, .. } => {
                format!("worked exemplar for '{question}'")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};
    use dio_catalog::store::Provenance;

    fn db() -> DomainDb {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        }))
    }

    #[test]
    fn note_contribution_lands_in_db() {
        let mut d = db();
        let before = d.note_count();
        let c = Contribution::Note {
            title: "lcs-naming".into(),
            text: "LCS NI-LR counters use the spelled-out name.".into(),
        };
        assert!(c.apply(&mut d, "expert:alice").is_none());
        assert_eq!(d.note_count(), before + 1);
    }

    #[test]
    fn function_contribution_is_attributed() {
        let mut d = db();
        let f = FunctionDef {
            name: "lcs_ni_lr_rate".into(),
            description: "LCS NI-LR success rate".into(),
            params: vec![],
            body: "100 * sum(x) / sum(y)".into(),
            output: "percent".into(),
            author: "expert:alice".into(),
        };
        Contribution::Function(f).apply(&mut d, "expert:alice");
        assert!(d.function("lcs_ni_lr_rate").is_some());
    }

    #[test]
    fn metric_contribution_is_attributed() {
        let mut d = db();
        let mut m = d.metrics().next().unwrap().clone();
        m.name = "expert_contributed_metric".into();
        Contribution::MetricDoc(m).apply(&mut d, "expert:bob");
        assert_eq!(
            d.metric_provenance("expert_contributed_metric"),
            Some(&Provenance::Expert {
                author: "expert:bob".into()
            })
        );
    }

    #[test]
    fn exemplar_returns_to_caller() {
        let mut d = db();
        let c = Contribution::Exemplar {
            question: "q".into(),
            metrics: vec!["m".into()],
            promql: "sum(m)".into(),
        };
        let out = c.apply(&mut d, "expert:carol").unwrap();
        assert_eq!(out.2, "sum(m)");
    }

    #[test]
    fn describe_is_informative() {
        let c = Contribution::Note {
            title: "t".into(),
            text: "x".into(),
        };
        assert!(c.describe().contains("'t'"));
    }
}

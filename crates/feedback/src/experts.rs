//! The pre-identified expert registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A domain expert allowed to resolve issues.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Expert {
    /// Stable identifier, e.g. `expert:alice`.
    pub id: String,
    /// Display name.
    pub name: String,
    /// Areas of expertise (free-form tags: `amf`, `user-plane`, …).
    pub expertise: Vec<String>,
}

/// Registry of experts; only registered ids may resolve issues.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExpertRegistry {
    experts: BTreeMap<String, Expert>,
}

impl ExpertRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ExpertRegistry::default()
    }

    /// A registry with a representative expert pool.
    pub fn with_defaults() -> Self {
        let mut r = ExpertRegistry::new();
        for (id, name, tags) in [
            ("expert:alice", "Alice (RAN core)", vec!["amf", "mobility"]),
            ("expert:bob", "Bob (session mgmt)", vec!["smf", "pdu"]),
            ("expert:carol", "Carol (user plane)", vec!["upf", "n4"]),
        ] {
            r.register(Expert {
                id: id.to_string(),
                name: name.to_string(),
                expertise: tags.into_iter().map(String::from).collect(),
            });
        }
        r
    }

    /// Register (or replace) an expert.
    pub fn register(&mut self, expert: Expert) {
        self.experts.insert(expert.id.clone(), expert);
    }

    /// Remove an expert; returns whether one was removed.
    pub fn remove(&mut self, id: &str) -> bool {
        self.experts.remove(id).is_some()
    }

    /// Is this id a registered expert?
    pub fn is_expert(&self, id: &str) -> bool {
        self.experts.contains_key(id)
    }

    /// Look up an expert.
    pub fn get(&self, id: &str) -> Option<&Expert> {
        self.experts.get(id)
    }

    /// Number of registered experts.
    pub fn len(&self) -> usize {
        self.experts.len()
    }

    /// True when no experts are registered.
    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }

    /// Experts whose expertise tags intersect the given tags.
    pub fn find_by_expertise(&self, tags: &[&str]) -> Vec<&Expert> {
        self.experts
            .values()
            .filter(|e| e.expertise.iter().any(|t| tags.contains(&t.as_str())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pool_registered() {
        let r = ExpertRegistry::with_defaults();
        assert_eq!(r.len(), 3);
        assert!(r.is_expert("expert:alice"));
        assert!(!r.is_expert("rando"));
    }

    #[test]
    fn register_and_remove() {
        let mut r = ExpertRegistry::new();
        assert!(r.is_empty());
        r.register(Expert {
            id: "expert:dave".into(),
            name: "Dave".into(),
            expertise: vec!["nrf".into()],
        });
        assert!(r.is_expert("expert:dave"));
        assert!(r.remove("expert:dave"));
        assert!(!r.remove("expert:dave"));
    }

    #[test]
    fn find_by_expertise_matches_tags() {
        let r = ExpertRegistry::with_defaults();
        let upf = r.find_by_expertise(&["upf"]);
        assert_eq!(upf.len(), 1);
        assert_eq!(upf[0].id, "expert:carol");
        assert!(r.find_by_expertise(&["nonexistent"]).is_empty());
    }
}

//! Contribution voting — the Stack-Overflow-style mechanism §3.4 calls
//! out as future work ("the system leaves the possibility to expand the
//! pool of experts or adopting a voting mechanism"), implemented here
//! as an extension: proposed contributions accumulate votes and are
//! accepted (merged into the domain DB) once they reach a threshold.

use crate::contribution::Contribution;
use dio_catalog::DomainDb;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vote {
    /// +1.
    Up,
    /// −1.
    Down,
}

/// A contribution awaiting votes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Proposal {
    /// Proposal id.
    pub id: u64,
    /// The proposed contribution.
    pub contribution: Contribution,
    /// Proposing author (need not be a pre-identified expert — that is
    /// the point of the extension).
    pub author: String,
    /// Voter → vote (one vote per voter, latest wins).
    pub votes: BTreeMap<String, Vote>,
    /// Whether it has been accepted and merged.
    pub accepted: bool,
}

impl Proposal {
    /// Net score (+1 per up, −1 per down).
    pub fn score(&self) -> i64 {
        self.votes
            .values()
            .map(|v| match v {
                Vote::Up => 1,
                Vote::Down => -1,
            })
            .sum()
    }
}

/// The voting board.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VotingBoard {
    proposals: Vec<Proposal>,
    /// Net score required for acceptance.
    pub threshold: i64,
}

impl Default for VotingBoard {
    fn default() -> Self {
        VotingBoard {
            proposals: Vec::new(),
            threshold: 3,
        }
    }
}

impl VotingBoard {
    /// Board with the default threshold of 3.
    pub fn new() -> Self {
        VotingBoard::default()
    }

    /// Propose a contribution; returns its id.
    pub fn propose(&mut self, contribution: Contribution, author: &str) -> u64 {
        let id = self.proposals.len() as u64;
        self.proposals.push(Proposal {
            id,
            contribution,
            author: author.to_string(),
            votes: BTreeMap::new(),
            accepted: false,
        });
        id
    }

    /// Record a vote. If the proposal crosses the threshold it is
    /// merged into `db` (attributed to its author) and marked accepted.
    /// Returns whether the proposal is now accepted. Unknown ids and
    /// already-accepted proposals return `None`.
    pub fn vote(
        &mut self,
        id: u64,
        voter: &str,
        vote: Vote,
        db: &mut DomainDb,
    ) -> Option<bool> {
        let threshold = self.threshold;
        let p = self.proposals.get_mut(id as usize)?;
        if p.accepted {
            return None;
        }
        p.votes.insert(voter.to_string(), vote);
        if p.score() >= threshold {
            p.contribution.apply(db, &p.author);
            p.accepted = true;
        }
        Some(p.accepted)
    }

    /// Look up a proposal.
    pub fn get(&self, id: u64) -> Option<&Proposal> {
        self.proposals.get(id as usize)
    }

    /// Pending (not yet accepted) proposals.
    pub fn pending(&self) -> Vec<&Proposal> {
        self.proposals.iter().filter(|p| !p.accepted).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};

    fn db() -> DomainDb {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        }))
    }

    fn note() -> Contribution {
        Contribution::Note {
            title: "voted-note".into(),
            text: "community guidance".into(),
        }
    }

    #[test]
    fn acceptance_at_threshold_merges() {
        let mut board = VotingBoard::new();
        let mut d = db();
        let before = d.note_count();
        let id = board.propose(note(), "user:community");
        assert_eq!(board.vote(id, "v1", Vote::Up, &mut d), Some(false));
        assert_eq!(board.vote(id, "v2", Vote::Up, &mut d), Some(false));
        assert_eq!(board.vote(id, "v3", Vote::Up, &mut d), Some(true));
        assert_eq!(d.note_count(), before + 1);
        assert!(board.get(id).unwrap().accepted);
        assert!(board.pending().is_empty());
    }

    #[test]
    fn downvotes_subtract() {
        let mut board = VotingBoard::new();
        let mut d = db();
        let id = board.propose(note(), "a");
        board.vote(id, "v1", Vote::Up, &mut d);
        board.vote(id, "v2", Vote::Down, &mut d);
        assert_eq!(board.get(id).unwrap().score(), 0);
    }

    #[test]
    fn revoting_replaces_previous_vote() {
        let mut board = VotingBoard::new();
        let mut d = db();
        let id = board.propose(note(), "a");
        board.vote(id, "v1", Vote::Down, &mut d);
        board.vote(id, "v1", Vote::Up, &mut d);
        assert_eq!(board.get(id).unwrap().score(), 1);
        assert_eq!(board.get(id).unwrap().votes.len(), 1);
    }

    #[test]
    fn accepted_proposals_reject_further_votes() {
        let mut board = VotingBoard::new();
        board.threshold = 1;
        let mut d = db();
        let id = board.propose(note(), "a");
        assert_eq!(board.vote(id, "v1", Vote::Up, &mut d), Some(true));
        assert_eq!(board.vote(id, "v2", Vote::Up, &mut d), None);
    }

    #[test]
    fn unknown_id_is_none() {
        let mut board = VotingBoard::new();
        let mut d = db();
        assert_eq!(board.vote(42, "v", Vote::Up, &mut d), None);
    }
}

//! # dio-feedback
//!
//! The expert-feedback loop (paper §3.4).
//!
//! "Upon receiving a response, the user can optionally request expert
//! assistance by clicking a designated raised-hand button, which will
//! create a GitHub repository issue. … The expert data obtained through
//! this process is then added to the domain-specific database and
//! attributed to the relevant expert as its source." GitHub is an
//! external service, so this crate embeds the equivalent tracker:
//!
//! * [`IssueTracker`] — issues with question/context/response bodies,
//!   comments, labels, and lifecycle;
//! * [`ExpertRegistry`] — "only a select few pre-identified experts can
//!   resolve these issues";
//! * [`Contribution`] — metric docs, function definitions, exemplars,
//!   and free-form notes that resolution merges into the
//!   [`dio_catalog::DomainDb`], with attribution;
//! * [`voting`] — the Stack-Overflow-style voting mechanism §3.4 leaves
//!   as future work, implemented here as an extension.

pub mod contribution;
pub mod experts;
pub mod issue;
pub mod journal;
pub mod tracker;
pub mod voting;

pub use contribution::Contribution;
pub use experts::{Expert, ExpertRegistry};
pub use issue::{Issue, IssueBody, IssueId, IssueState};
pub use journal::{Journal, JournalOp, JournalRecovery, ReplayReport};
pub use tracker::{IssueTracker, TrackerError};
pub use voting::{Vote, VotingBoard};

//! The 200-question benchmark dataset (paper §4.1).
//!
//! "A benchmark dataset of 200 expert-generated user questions and
//! corresponding reference PromQL expressions … Each reference response
//! consists of the metrics that are essential to answer the
//! corresponding user question, a PromQL query and a numeric answer.
//! … The queries span an extensive spectrum of metrics related to
//! diverse network functions, and target multiple tasks like retrieval,
//! averaging, sum and rate, and contain up-to three metrics in a single
//! expression."
//!
//! Questions are generated deterministically against the world's
//! catalog. Half use **plain** phrasing (the procedure's display name,
//! which the vendor's naming convention mirrors) and half use
//! **paraphrased** phrasing (synonyms and jargon that only descriptions
//! — not counter names — can bridge). The paraphrase split is what
//! separates curated-context retrieval from name-only schema prompting,
//! the paper's central claim.

use crate::fewshot::is_fewshot_procedure;
use crate::world::OperatorWorld;
use dio_catalog::procedures::FAILURE_CAUSES;
use dio_catalog::types::ProcedureGroup;
use dio_llm::sim::reason::TaskShape;
use serde::{Deserialize, Serialize};

/// How a question is phrased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phrasing {
    /// Uses the procedure display name (matches naming conventions).
    Plain,
    /// Uses synonyms/jargon that only descriptions can bridge.
    Paraphrase,
}

/// The expert reference for one question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reference {
    /// Metrics essential to the answer.
    pub metrics: Vec<String>,
    /// Reference PromQL.
    pub promql: String,
    /// Numeric answer from executing the reference on the world store.
    pub numeric: f64,
}

/// One benchmark question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkQuestion {
    /// Stable id (0..n).
    pub id: usize,
    /// The natural-language question.
    pub text: String,
    /// Task shape (debug string of the canonical shape).
    pub shape: String,
    /// Phrasing class.
    pub phrasing: Phrasing,
    /// The reference answer.
    pub reference: Reference,
}

fn mix(seed: u64, s: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h
}

/// Word-level paraphrase map. Every replacement is bridged by the
/// telecom lexicon (so a strong model can recover it) but absent from
/// counter names (so name-only fabrication cannot).
fn paraphrase_word(w: &str) -> Option<&'static str> {
    Some(match w {
        "registration" => "register",
        "deregistration" => "deregister",
        "authentication" => "auth",
        "establishment" => "setup",
        "release" => "teardown",
        "modification" => "change",
        "discovery" => "lookup",
        "bytes" => "octets",
        "uplink" => "upstream",
        "downlink" => "downstream",
        "subscribers" => "users",
        "handover" => "mobility",
        _ => return None,
    })
}

/// Paraphrase a display phrase word-by-word.
fn paraphrase_phrase(display: &str) -> String {
    display
        .split_whitespace()
        .map(|w| {
            let lower = w.to_lowercase();
            paraphrase_word(&lower).unwrap_or(w).to_string()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn nf_mention(g: &ProcedureGroup) -> String {
    g.nf.upper().to_string()
}

/// A generation candidate before the quota pass.
struct Candidate {
    text: String,
    shape: TaskShape,
    phrasing: Phrasing,
    metrics: Vec<String>,
    promql: String,
}

/// Generate the benchmark: `n` questions (the paper uses 200).
pub fn generate_benchmark(world: &OperatorWorld, n: usize, seed: u64) -> Vec<BenchmarkQuestion> {
    let engine = world.reference_engine();
    let groups: Vec<&ProcedureGroup> = world
        .catalog
        .groups
        .iter()
        .filter(|g| {
            g.service != "platform"
                && !is_fewshot_procedure(g.nf, &g.service, &g.procedure)
        })
        .collect();

    let transactional: Vec<&&ProcedureGroup> = groups
        .iter()
        .filter(|g| g.attempt.is_some() && g.success.is_some())
        .collect();
    let with_failures: Vec<&&ProcedureGroup> = transactional
        .iter()
        .filter(|g| g.failures.len() >= 2)
        .copied()
        .collect();
    let gauge_metrics: Vec<(String, String, &&ProcedureGroup)> = groups
        .iter()
        .flat_map(|g| {
            g.other
                .iter()
                .filter(|m| m.ends_with("_current"))
                .map(move |m| (m.clone(), g.display.clone(), g))
        })
        .collect();
    let message_metrics: Vec<(String, &&ProcedureGroup)> = groups
        .iter()
        .flat_map(|g| {
            g.other
                .iter()
                .filter(|m| m.ends_with("_sent") || m.ends_with("_received"))
                .map(move |m| (m.clone(), g))
        })
        .collect();
    let traffic_metrics: Vec<(String, &&ProcedureGroup)> = groups
        .iter()
        .filter(|g| g.service == "up" || g.procedure.ends_with("_traffic"))
        .flat_map(|g| {
            g.other
                .iter()
                .filter(|m| m.ends_with("_bytes") || m.ends_with("_packets"))
                .map(move |m| (m.clone(), g))
        })
        .collect();

    // Bucket quotas scaled to n (defaults reproduce the 200-question
    // mix).
    let quota = |frac_num: usize| (n * frac_num) / 200;
    let buckets: Vec<(TaskShape, usize)> = vec![
        (TaskShape::SuccessRatePercent, quota(40)),
        (TaskShape::TotalCount, quota(40)),
        (TaskShape::RatePerSecond, quota(30)),
        (TaskShape::FailureRatio, quota(25)),
        (TaskShape::AverageValue, quota(20)),
        (TaskShape::CurrentValue, quota(20)),
        (TaskShape::MeanDurationMs, quota(15)),
        (TaskShape::CombinedFailureRatio, quota(10)),
    ];
    let assigned: usize = buckets.iter().map(|(_, q)| q).sum();
    let mut extra = n - assigned; // rounding remainder → TotalCount

    let mut out: Vec<BenchmarkQuestion> = Vec::with_capacity(n);
    let mut seen_texts: std::collections::HashSet<String> = std::collections::HashSet::new();

    let mut push = |cand: Candidate, out: &mut Vec<BenchmarkQuestion>| -> bool {
        if seen_texts.contains(&cand.text) {
            return false;
        }
        let numeric = match engine.instant_query(&cand.promql, world.eval_ts) {
            Ok(v) => match v.as_scalar_like() {
                Some(x) if x.is_finite() => x,
                _ => return false,
            },
            Err(_) => return false,
        };
        seen_texts.insert(cand.text.clone());
        out.push(BenchmarkQuestion {
            id: out.len(),
            text: cand.text,
            shape: format!("{:?}", cand.shape),
            phrasing: cand.phrasing,
            reference: Reference {
                metrics: cand.metrics,
                promql: cand.promql,
                numeric,
            },
        });
        true
    };

    for (shape, mut want) in buckets {
        if shape == TaskShape::TotalCount {
            want += std::mem::take(&mut extra);
        }
        let mut produced = 0usize;
        let mut round = 0usize;
        while produced < want && round < 8 {
            let source_len = match shape {
                TaskShape::CurrentValue => gauge_metrics.len(),
                TaskShape::FailureRatio | TaskShape::CombinedFailureRatio => with_failures.len(),
                TaskShape::TotalCount => {
                    transactional.len() + message_metrics.len() + traffic_metrics.len()
                }
                _ => transactional.len(),
            };
            if source_len == 0 {
                break;
            }
            for i in 0..source_len {
                if produced >= want {
                    break;
                }
                let variant = mix(seed, &format!("{shape:?}/{round}/{i}")) as usize;
                let phrasing = if (round + i) % 2 == 0 {
                    Phrasing::Plain
                } else {
                    Phrasing::Paraphrase
                };
                let cand = build_candidate(
                    shape,
                    phrasing,
                    i,
                    round,
                    variant,
                    &transactional,
                    &with_failures,
                    &gauge_metrics,
                    &message_metrics,
                    &traffic_metrics,
                );
                if let Some(c) = cand {
                    if push(c, &mut out) {
                        produced += 1;
                    }
                }
            }
            round += 1;
        }
    }

    // Re-assign stable ids after generation order.
    for (i, q) in out.iter_mut().enumerate() {
        q.id = i;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn build_candidate(
    shape: TaskShape,
    phrasing: Phrasing,
    index: usize,
    round: usize,
    variant: usize,
    transactional: &[&&ProcedureGroup],
    with_failures: &[&&ProcedureGroup],
    gauges: &[(String, String, &&ProcedureGroup)],
    messages: &[(String, &&ProcedureGroup)],
    traffic: &[(String, &&ProcedureGroup)],
) -> Option<Candidate> {
    match shape {
        TaskShape::SuccessRatePercent => {
            let g = transactional[index % transactional.len()];
            let a = g.attempt.clone()?;
            let s = g.success.clone()?;
            let disp = &g.display;
            let text = match phrasing {
                Phrasing::Plain => match variant % 2 {
                    0 => format!("What is the {disp} procedure success rate at the {}?", nf_mention(g)),
                    _ => format!("What is the success rate of the {disp} procedure?"),
                },
                Phrasing::Paraphrase => {
                    let p = paraphrase_phrase(disp);
                    format!(
                        "What percentage of {p} procedures completed successfully at the {}?",
                        nf_mention(g)
                    )
                }
            };
            Some(Candidate {
                text,
                shape,
                phrasing,
                metrics: vec![s.clone(), a.clone()],
                promql: format!("100 * sum({s}) / sum({a})"),
            })
        }
        TaskShape::TotalCount => {
            // Rotate across attempt counters, message counters, traffic.
            let total = transactional.len() + messages.len() + traffic.len();
            let slot = index % total;
            if slot < transactional.len() {
                let g = transactional[slot];
                let a = g.attempt.clone()?;
                let disp = &g.display;
                let text = match phrasing {
                    Phrasing::Plain => match variant % 2 {
                        0 => format!("How many {disp} procedure attempts did the {} handle?", nf_mention(g)),
                        _ => format!("How many {disp} attempts were recorded at the {}?", nf_mention(g)),
                    },
                    Phrasing::Paraphrase => {
                        let p = paraphrase_phrase(disp);
                        format!("How many times did UEs try the {p} procedure at the {}?", nf_mention(g))
                    }
                };
                Some(Candidate {
                    text,
                    shape,
                    phrasing,
                    metrics: vec![a.clone()],
                    promql: format!("sum({a})"),
                })
            } else if slot < transactional.len() + messages.len() {
                let (m, g) = &messages[slot - transactional.len()];
                let sent = m.ends_with("_sent");
                // Reconstruct the message phrase from the metric name
                // tail (drop prefix/iface, drop the variant suffix).
                let phrase = message_phrase(m);
                let text = match phrasing {
                    Phrasing::Plain => format!(
                        "How many {} messages did the {} {}?",
                        phrase,
                        nf_mention(g),
                        if sent { "send" } else { "receive" }
                    ),
                    Phrasing::Paraphrase => format!(
                        "What is the total count of {} messages {} by the {}?",
                        phrase,
                        if sent { "transmitted" } else { "handled" },
                        nf_mention(g)
                    ),
                };
                Some(Candidate {
                    text,
                    shape,
                    phrasing,
                    metrics: vec![m.clone()],
                    promql: format!("sum({m})"),
                })
            } else {
                let (m, g) = &traffic[slot - transactional.len() - messages.len()];
                let (iface, dir, what) = traffic_parts(m)?;
                let text = match phrasing {
                    Phrasing::Plain => format!(
                        "How many {what} did the {} forward {dir} on the {iface} interface?",
                        nf_mention(g)
                    ),
                    Phrasing::Paraphrase => format!(
                        "What is the {} traffic volume in {} on {iface} at the {}?",
                        if dir == "uplink" { "upstream" } else { "downstream" },
                        if what == "bytes" { "octets" } else { &what },
                        nf_mention(g)
                    ),
                };
                Some(Candidate {
                    text,
                    shape,
                    phrasing,
                    metrics: vec![m.clone()],
                    promql: format!("sum({m})"),
                })
            }
        }
        TaskShape::RatePerSecond => {
            let g = transactional[index % transactional.len()];
            let a = g.attempt.clone()?;
            let disp = &g.display;
            let text = match phrasing {
                Phrasing::Plain => match variant % 2 {
                    0 => format!("How many {disp} procedures per second is the {} handling?", nf_mention(g)),
                    _ => format!("What is the rate of {disp} procedures at the {}?", nf_mention(g)),
                },
                Phrasing::Paraphrase => {
                    let p = paraphrase_phrase(disp);
                    format!("What is the per-second frequency of {p} procedures at the {}?", nf_mention(g))
                }
            };
            Some(Candidate {
                text,
                shape,
                phrasing,
                metrics: vec![a.clone()],
                promql: format!("sum(rate({a}[5m]))"),
            })
        }
        TaskShape::AverageValue => {
            let g = transactional[index % transactional.len()];
            let a = g.attempt.clone()?;
            let disp = &g.display;
            let text = match phrasing {
                Phrasing::Plain => format!(
                    "What is the average number of {disp} attempts per {} instance?",
                    nf_mention(g)
                ),
                Phrasing::Paraphrase => {
                    let p = paraphrase_phrase(disp);
                    format!(
                        "On average, how many {p} attempts does each {} instance record?",
                        nf_mention(g)
                    )
                }
            };
            Some(Candidate {
                text,
                shape,
                phrasing,
                metrics: vec![a.clone()],
                promql: format!("avg({a})"),
            })
        }
        TaskShape::CurrentValue => {
            let (m, disp, g) = &gauges[index % gauges.len()];
            let text = match phrasing {
                Phrasing::Plain => format!("How many {disp} are there currently at the {}?", nf_mention(g)),
                Phrasing::Paraphrase => {
                    let p = paraphrase_phrase(disp);
                    format!("What is the current number of {p} at the {}?", nf_mention(g))
                }
            };
            Some(Candidate {
                text,
                shape,
                phrasing,
                metrics: vec![m.clone()],
                promql: format!("sum({m})"),
            })
        }
        TaskShape::FailureRatio => {
            let g = with_failures[index % with_failures.len()];
            let a = g.attempt.clone()?;
            let pick = mix(0xfa11, &format!("{}/{}/{round}", g.procedure, index)) as usize;
            let (cause_slug, fname) = &g.failures[pick % g.failures.len()];
            let disp = &g.display;
            let cause_display = FAILURE_CAUSES
                .iter()
                .find(|(s, _)| s == cause_slug)
                .map(|(_, d)| *d)
                .unwrap_or(cause_slug.as_str());
            let text = match phrasing {
                // Plain uses the cause slug words (present in the name);
                // paraphrase uses the 3GPP cause display phrase (present
                // only in the description).
                Phrasing::Plain => format!(
                    "What fraction of {disp} procedures failed due to {}?",
                    cause_slug.replace('_', " ")
                ),
                Phrasing::Paraphrase => format!(
                    "What share of {} procedures failed with cause '{}'?",
                    paraphrase_phrase(disp),
                    cause_display
                ),
            };
            Some(Candidate {
                text,
                shape,
                phrasing,
                metrics: vec![fname.clone(), a.clone()],
                promql: format!("sum({fname}) / sum({a})"),
            })
        }
        TaskShape::CombinedFailureRatio => {
            let g = with_failures[index % with_failures.len()];
            let a = g.attempt.clone()?;
            let pick = mix(0xc0b1_4ed0, &format!("{}/{index}", g.procedure)) as usize;
            let (c1, f1) = &g.failures[pick % g.failures.len()];
            let (c2, f2) = &g.failures[(pick + 1) % g.failures.len()];
            if f1 == f2 {
                return None;
            }
            let disp = &g.display;
            let text = format!(
                "What share of {disp} procedures failed either with {} or with {}?",
                c1.replace('_', " "),
                c2.replace('_', " ")
            );
            Some(Candidate {
                text,
                shape,
                phrasing: Phrasing::Plain,
                metrics: vec![f1.clone(), f2.clone(), a.clone()],
                promql: format!("(sum({f1}) + sum({f2})) / sum({a})"),
            })
        }
        TaskShape::MeanDurationMs => {
            let g = transactional[index % transactional.len()];
            let s = g.success.clone()?;
            let d = g
                .other
                .iter()
                .find(|m| m.ends_with("_duration_ms_total"))
                .cloned()?;
            let disp = &g.display;
            let text = match phrasing {
                Phrasing::Plain => format!(
                    "What is the mean duration of the {disp} procedure at the {}?",
                    nf_mention(g)
                ),
                Phrasing::Paraphrase => {
                    let p = paraphrase_phrase(disp);
                    format!("What is the average duration of the {p} procedure?")
                }
            };
            Some(Candidate {
                text,
                shape,
                phrasing,
                metrics: vec![d.clone(), s.clone()],
                promql: format!("sum({d}) / sum({s})"),
            })
        }
    }
}

/// Human phrase for a message counter name:
/// `smfn4_n4_heartbeat_request_sent` → "heartbeat request".
fn message_phrase(name: &str) -> String {
    let mut segs: Vec<&str> = name.split('_').collect();
    // Drop the variant suffix.
    segs.pop();
    // Drop the prefix segment (nf+service) and an interface segment.
    if !segs.is_empty() {
        segs.remove(0);
    }
    if segs
        .first()
        .map(|s| {
            s.len() <= 3 && (s.starts_with('n') || *s == "nwu")
                || matches!(*s, "n11" | "nwu")
        })
        .unwrap_or(false)
    {
        segs.remove(0);
    }
    segs.join(" ")
}

/// `(interface, direction, what)` parts of a traffic counter name,
/// e.g. `upfup_n3_dl_bytes` → ("N3", "downlink", "bytes").
fn traffic_parts(name: &str) -> Option<(String, String, String)> {
    let segs: Vec<&str> = name.split('_').collect();
    if segs.len() < 4 {
        return None;
    }
    let iface = segs[1].to_uppercase();
    let dir = match segs[2] {
        "ul" => "uplink",
        "dl" => "downlink",
        _ => return None,
    };
    let what = segs[3..].join(" ");
    Some((iface, dir.to_string(), what))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{OperatorWorld, WorldConfig};

    fn world() -> OperatorWorld {
        OperatorWorld::build(WorldConfig::small())
    }

    #[test]
    fn generates_requested_count() {
        let w = world();
        let qs = generate_benchmark(&w, 60, 7);
        assert_eq!(qs.len(), 60, "got {}", qs.len());
    }

    #[test]
    fn questions_are_unique_and_have_valid_references() {
        let w = world();
        let qs = generate_benchmark(&w, 60, 7);
        let mut texts: Vec<&str> = qs.iter().map(|q| q.text.as_str()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), qs.len());
        let engine = w.reference_engine();
        for q in &qs {
            assert!(q.reference.numeric.is_finite());
            assert!(!q.reference.metrics.is_empty());
            assert!(q.reference.metrics.len() <= 3, "{}", q.reference.promql);
            let v = engine
                .instant_query(&q.reference.promql, w.eval_ts)
                .unwrap();
            assert_eq!(v.as_scalar_like(), Some(q.reference.numeric));
        }
    }

    #[test]
    fn covers_multiple_shapes_and_phrasings() {
        let w = world();
        let qs = generate_benchmark(&w, 60, 7);
        let shapes: std::collections::HashSet<&str> =
            qs.iter().map(|q| q.shape.as_str()).collect();
        assert!(shapes.len() >= 6, "shapes: {shapes:?}");
        let plain = qs.iter().filter(|q| q.phrasing == Phrasing::Plain).count();
        let para = qs.len() - plain;
        assert!(plain > 10 && para > 10, "plain {plain} para {para}");
    }

    #[test]
    fn never_uses_fewshot_procedures() {
        let w = world();
        let qs = generate_benchmark(&w, 60, 7);
        for q in &qs {
            for m in &q.reference.metrics {
                assert!(
                    !m.contains("paging") && !m.contains("gtpu_echo"),
                    "fewshot-reserved metric {m} leaked into benchmark"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        assert_eq!(generate_benchmark(&w, 40, 7), generate_benchmark(&w, 40, 7));
    }

    #[test]
    fn helper_parsers() {
        assert_eq!(
            message_phrase("smfn4_n4_heartbeat_request_sent"),
            "heartbeat request"
        );
        assert_eq!(
            traffic_parts("upfup_n3_dl_bytes"),
            Some(("N3".into(), "downlink".into(), "bytes".into()))
        );
        assert_eq!(traffic_parts("bad_name"), None);
    }

    #[test]
    fn paraphrase_map_applies() {
        assert_eq!(
            paraphrase_phrase("initial registration"),
            "initial register"
        );
        assert_eq!(paraphrase_phrase("PDU session establishment"), "PDU session setup");
    }
}

//! The evaluation world: catalog + synthesised operator data.

use dio_catalog::generator::{generate_catalog, Catalog, CatalogConfig};
use dio_catalog::types::MetricRole;
use dio_catalog::{DomainDb, NetworkFunction};
use dio_promql::{Engine, EngineOptions};
use dio_tsdb::{Labels, MetricStore, SeriesSpec, SynthConfig, Synthesizer};
use serde::{Deserialize, Serialize};

/// World construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Catalog generation options.
    pub catalog: CatalogConfig,
    /// Instances per network function.
    pub instances_per_nf: usize,
    /// Synthesis time axis.
    pub synth: SynthConfig,
    /// Seed for traffic noise.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            catalog: CatalogConfig::default(),
            instances_per_nf: 3,
            synth: SynthConfig::default(),
            seed: 0xd10_c0b1_1a7e,
        }
    }
}

impl WorldConfig {
    /// A small world for fast unit tests: compact catalog, one
    /// instance, a short time axis.
    pub fn small() -> Self {
        WorldConfig {
            catalog: CatalogConfig {
                slice_variants: false,
                sbi_counters: false,
                ..CatalogConfig::default()
            },
            instances_per_nf: 2,
            synth: SynthConfig {
                start_ms: 0,
                end_ms: 3600 * 1000,
                step_ms: 60_000,
            },
            seed: 0xd10_c0b1_1a7e,
        }
    }
}

/// The assembled world.
pub struct OperatorWorld {
    /// The generated catalog (kept for grouping info).
    pub catalog: Catalog,
    /// The synthesised store.
    pub store: MetricStore,
    /// Evaluation timestamp (the end of the synthesised axis).
    pub eval_ts: i64,
    /// The construction config.
    pub config: WorldConfig,
}

fn mix(seed: u64, s: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl OperatorWorld {
    /// Build the world: generate the catalog and synthesise every
    /// metric for every instance. Counters in the same procedure group
    /// share a per-instance noise seed so success ≤ attempts holds
    /// sample-by-sample.
    pub fn build(config: WorldConfig) -> Self {
        let catalog = generate_catalog(&config.catalog);
        let synth = Synthesizer::new(config.synth);
        let mut store = MetricStore::new();
        let mut specs: Vec<SeriesSpec> = Vec::new();

        for m in &catalog.metrics {
            let group_key = format!("{}/{}/{}", m.nf.abbrev(), m.service, m.procedure);
            for inst in 0..config.instances_per_nf {
                let instance = format!("{}-{}", m.nf.abbrev(), inst);
                let labels = Labels::from_pairs([
                    ("__name__", m.name.as_str()),
                    ("instance", instance.as_str()),
                    ("nf", m.nf.abbrev()),
                ]);
                // Coupled counters share the group+instance seed; the
                // shape scale carries the coupling ratio via base_rate.
                let seed = match m.traffic.couple_ratio {
                    Some(_) => mix(config.seed, &format!("{group_key}#{inst}")),
                    None => mix(config.seed, &format!("{}#{inst}", m.name)),
                };
                // Spread instances: each instance carries a stable share
                // of the NF-level rate so per-instance answers differ.
                let share = 0.7 + 0.3 * (inst as f64 / config.instances_per_nf.max(1) as f64);
                let spec = if m.role == MetricRole::ActiveGauge {
                    SeriesSpec::gauge(labels, m.traffic.base_rate * share, seed)
                } else {
                    SeriesSpec::counter(labels, (m.traffic.base_rate * share).max(1e-6), seed)
                };
                specs.push(spec);
            }
        }
        synth.populate(&specs, &mut store);
        let eval_ts = config.synth.end_ms;
        OperatorWorld {
            catalog,
            store,
            eval_ts,
            config,
        }
    }

    /// The domain-specific database over this world's catalog.
    pub fn domain_db(&self) -> DomainDb {
        DomainDb::from_catalog(self.catalog.clone())
    }

    /// A trusted (permissive-limits) engine over a clone of the store,
    /// used to compute reference answers.
    pub fn reference_engine(&self) -> Engine {
        Engine::with_options(
            self.store.clone(),
            EngineOptions {
                max_samples: 0,
                ..EngineOptions::default()
            },
        )
    }

    /// Instance label values of one NF.
    pub fn instances(&self, nf: NetworkFunction) -> Vec<String> {
        (0..self.config.instances_per_nf)
            .map(|i| format!("{}-{}", nf.abbrev(), i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_builds_with_coupled_counters() {
        let w = OperatorWorld::build(WorldConfig::small());
        assert!(w.store.series_count() > 1000);
        assert_eq!(w.eval_ts, 3600 * 1000);

        // Success never exceeds attempts for a sample group.
        let group = w
            .catalog
            .groups
            .iter()
            .find(|g| g.attempt.is_some() && g.success.is_some())
            .unwrap();
        let attempt = group.attempt.as_ref().unwrap();
        let success = group.success.as_ref().unwrap();
        let e = w.reference_engine();
        let a = e
            .instant_query(&format!("sum({attempt})"), w.eval_ts)
            .unwrap()
            .as_scalar_like()
            .unwrap();
        let s = e
            .instant_query(&format!("sum({success})"), w.eval_ts)
            .unwrap()
            .as_scalar_like()
            .unwrap();
        assert!(s <= a, "success {s} > attempts {a}");
        assert!(s > 0.0);
    }

    #[test]
    fn every_metric_has_series_per_instance() {
        let w = OperatorWorld::build(WorldConfig::small());
        let m = &w.catalog.metrics[0];
        let series = w.store.series_for(&m.name);
        assert_eq!(series.len(), w.config.instances_per_nf);
    }

    #[test]
    fn instances_differ_in_level() {
        let w = OperatorWorld::build(WorldConfig::small());
        let group = w
            .catalog
            .groups
            .iter()
            .find(|g| g.attempt.is_some())
            .unwrap();
        let attempt = group.attempt.as_ref().unwrap();
        let series = w.store.series_for(attempt);
        let finals: Vec<f64> = series
            .iter()
            .map(|s| s.samples().last().unwrap().value)
            .collect();
        assert!(finals.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }

    #[test]
    fn world_build_is_deterministic() {
        let a = OperatorWorld::build(WorldConfig::small());
        let b = OperatorWorld::build(WorldConfig::small());
        assert_eq!(a.store.sample_count(), b.store.sample_count());
        let q = "sum(amfcc_n1_initial_registration_attempt)";
        assert_eq!(
            a.reference_engine().instant_query(q, a.eval_ts).unwrap(),
            b.reference_engine().instant_query(q, b.eval_ts).unwrap()
        );
    }

    #[test]
    fn instances_helper_matches_labels() {
        let w = OperatorWorld::build(WorldConfig::small());
        let insts = w.instances(NetworkFunction::Amf);
        assert_eq!(insts, vec!["amf-0", "amf-1"]);
    }
}

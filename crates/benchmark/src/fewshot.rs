//! The 20 expert-generated few-shot exemplars (paper §4: "Few-shot
//! learning is enabled by feeding into the prompt an additional 20
//! expert-generated tuples consisting of user query, corresponding
//! context, relevant metrics and the PromQL query").
//!
//! Exemplars are constructed against the *actual* generated catalog so
//! every referenced metric exists. The procedures used here are
//! excluded from benchmark question generation, honouring §4.1's "none
//! of the training questions used for few-shot learning are
//! incorporated into the benchmark dataset".

use dio_catalog::generator::Catalog;
use dio_catalog::types::ProcedureGroup;
use dio_catalog::NetworkFunction;
use dio_llm::FewShotExample;

/// Procedures reserved for few-shot exemplars: `(nf, service, slug)`.
pub const FEWSHOT_PROCEDURES: &[(NetworkFunction, &str, &str)] = &[
    (NetworkFunction::Amf, "cc", "paging"),
    (NetworkFunction::Amf, "cc", "service_request"),
    (NetworkFunction::Amf, "sec", "authentication"),
    (NetworkFunction::Amf, "sec", "security_mode_control"),
    (NetworkFunction::Amf, "sec", "identity_request"),
    (NetworkFunction::Amf, "mm", "ue_context_setup"),
    (NetworkFunction::Amf, "mm", "ngap_associations"),
    (NetworkFunction::Smf, "pdu", "pdu_session_release"),
    (NetworkFunction::Smf, "pdu", "active_qos_flows"),
    (NetworkFunction::Smf, "n4", "n4_heartbeat"),
    (NetworkFunction::Smf, "n4", "n4_association_setup"),
    (NetworkFunction::Smf, "chg", "charging_data_request"),
    (NetworkFunction::Nrf, "nfm", "nf_heartbeat"),
    (NetworkFunction::Nrf, "nfm", "nf_status_subscription"),
    (NetworkFunction::Nssf, "nss", "nssai_availability_update"),
    (NetworkFunction::Upf, "n4c", "pdr_install"),
    (NetworkFunction::Upf, "up", "n9_traffic"),
    (NetworkFunction::Upf, "up", "gtpu_echo"),
    (NetworkFunction::N3iwf, "iwk", "ikev2_sa_initiation"),
    (NetworkFunction::N3iwf, "iwk", "nwu_registration"),
];

/// True when a procedure is reserved for few-shot use.
pub fn is_fewshot_procedure(nf: NetworkFunction, service: &str, slug: &str) -> bool {
    FEWSHOT_PROCEDURES
        .iter()
        .any(|(n, s, p)| *n == nf && *s == service && *p == slug)
}

fn group<'a>(
    catalog: &'a Catalog,
    nf: NetworkFunction,
    service: &str,
    slug: &str,
) -> &'a ProcedureGroup {
    catalog
        .groups
        .iter()
        .find(|g| g.nf == nf && g.service == service && g.procedure == slug)
        .unwrap_or_else(|| panic!("missing few-shot group {nf}/{service}/{slug}"))
}

/// Build the 20 exemplars against a catalog.
pub fn fewshot_exemplars(catalog: &Catalog) -> Vec<FewShotExample> {
    use NetworkFunction::*;
    let mut out = Vec::with_capacity(20);
    let mut push = |question: String, metrics: Vec<String>, promql: String| {
        out.push(FewShotExample {
            question,
            metrics,
            promql,
        });
    };

    // 1. Success rate (the canonical derived KPI).
    let g = group(catalog, Amf, "cc", "paging");
    let (a, s) = (g.attempt.clone().unwrap(), g.success.clone().unwrap());
    push(
        "What is the paging procedure success rate at the AMF?".into(),
        vec![s.clone(), a.clone()],
        format!("100 * sum({s}) / sum({a})"),
    );

    // 2. Total count.
    let g = group(catalog, Amf, "cc", "service_request");
    let a = g.attempt.clone().unwrap();
    push(
        "How many service request procedures did the AMF handle?".into(),
        vec![a.clone()],
        format!("sum({a})"),
    );

    // 3. Rate per second.
    let g = group(catalog, Amf, "sec", "authentication");
    let a = g.attempt.clone().unwrap();
    push(
        "How many authentication procedures per second is the AMF processing?".into(),
        vec![a.clone()],
        format!("sum(rate({a}[5m]))"),
    );

    // 4. Failure ratio on a specific cause.
    let g = group(catalog, Amf, "sec", "security_mode_control");
    let a = g.attempt.clone().unwrap();
    let (cause, f) = g.failures.first().cloned().unwrap();
    push(
        format!(
            "What fraction of security mode control procedures failed due to {}?",
            cause.replace('_', " ")
        ),
        vec![f.clone(), a.clone()],
        format!("sum({f}) / sum({a})"),
    );

    // 5. Rate of a second transactional procedure.
    let g = group(catalog, Amf, "sec", "identity_request");
    let a = g.attempt.clone().unwrap();
    push(
        "What is the rate of identity request procedures at the AMF?".into(),
        vec![a.clone()],
        format!("sum(rate({a}[5m]))"),
    );

    // 6. Mean duration.
    let g = group(catalog, Amf, "mm", "ue_context_setup");
    let s = g.success.clone().unwrap();
    let d = g
        .other
        .iter()
        .find(|n| n.ends_with("_duration_ms_total"))
        .cloned()
        .unwrap();
    push(
        "What is the mean duration of the UE context setup procedure?".into(),
        vec![d.clone(), s.clone()],
        format!("sum({d}) / sum({s})"),
    );

    // 7. Current gauge value.
    let g = group(catalog, Amf, "mm", "ngap_associations");
    let cur = g
        .other
        .iter()
        .find(|n| n.ends_with("_current"))
        .cloned()
        .unwrap();
    push(
        "How many NGAP associations with gNodeBs are there currently?".into(),
        vec![cur.clone()],
        format!("sum({cur})"),
    );

    // 8. Total count (SMF).
    let g = group(catalog, Smf, "pdu", "pdu_session_release");
    let a = g.attempt.clone().unwrap();
    push(
        "How many PDU session release procedures did the SMF handle?".into(),
        vec![a.clone()],
        format!("sum({a})"),
    );

    // 9. Current gauge (SMF).
    let g = group(catalog, Smf, "pdu", "active_qos_flows");
    let cur = g
        .other
        .iter()
        .find(|n| n.ends_with("_current"))
        .cloned()
        .unwrap();
    push(
        "How many QoS flows are currently active at the SMF?".into(),
        vec![cur.clone()],
        format!("sum({cur})"),
    );

    // 10. Message counter.
    let g = group(catalog, Smf, "n4", "n4_heartbeat");
    let sent = g
        .other
        .iter()
        .find(|n| n.contains("heartbeat_request") && n.ends_with("_sent"))
        .cloned()
        .unwrap();
    push(
        "How many PFCP HEARTBEAT REQUEST messages did the SMF send?".into(),
        vec![sent.clone()],
        format!("sum({sent})"),
    );

    // 11. Failure ratio (SMF N4).
    let g = group(catalog, Smf, "n4", "n4_association_setup");
    let a = g.attempt.clone().unwrap();
    let (cause, f) = g.failures.first().cloned().unwrap();
    push(
        format!(
            "What fraction of N4 association setup procedures failed due to {}?",
            cause.replace('_', " ")
        ),
        vec![f.clone(), a.clone()],
        format!("sum({f}) / sum({a})"),
    );

    // 12. Success rate (SMF charging).
    let g = group(catalog, Smf, "chg", "charging_data_request");
    let (a, s) = (g.attempt.clone().unwrap(), g.success.clone().unwrap());
    push(
        "What is the charging data request success rate?".into(),
        vec![s.clone(), a.clone()],
        format!("100 * sum({s}) / sum({a})"),
    );

    // 13. Rate (NRF heartbeats).
    let g = group(catalog, Nrf, "nfm", "nf_heartbeat");
    let a = g.attempt.clone().unwrap();
    push(
        "How many NF heartbeats per second is the NRF receiving?".into(),
        vec![a.clone()],
        format!("sum(rate({a}[5m]))"),
    );

    // 14. Total (NRF subscriptions).
    let g = group(catalog, Nrf, "nfm", "nf_status_subscription");
    let a = g.attempt.clone().unwrap();
    push(
        "How many NF status subscription procedures did the NRF handle?".into(),
        vec![a.clone()],
        format!("sum({a})"),
    );

    // 15. Success rate (NSSF).
    let g = group(catalog, Nssf, "nss", "nssai_availability_update");
    let (a, s) = (g.attempt.clone().unwrap(), g.success.clone().unwrap());
    push(
        "What is the NSSAI availability update success rate at the NSSF?".into(),
        vec![s.clone(), a.clone()],
        format!("100 * sum({s}) / sum({a})"),
    );

    // 16. Combined failure ratio (three metrics).
    let g = group(catalog, Upf, "n4c", "pdr_install");
    let a = g.attempt.clone().unwrap();
    let (c1, f1) = g.failures[0].clone();
    let (c2, f2) = g.failures[1].clone();
    push(
        format!(
            "What share of packet detection rule installations failed either with {} or with {}?",
            c1.replace('_', " "),
            c2.replace('_', " ")
        ),
        vec![f1.clone(), f2.clone(), a.clone()],
        format!("(sum({f1}) + sum({f2})) / sum({a})"),
    );

    // 17. Traffic bytes.
    let g = group(catalog, Upf, "up", "n9_traffic");
    let bytes = g
        .other
        .iter()
        .find(|n| n.ends_with("_ul_bytes"))
        .cloned()
        .unwrap();
    push(
        "How many bytes did the UPF forward uplink on the N9 interface?".into(),
        vec![bytes.clone()],
        format!("sum({bytes})"),
    );

    // 18. Message counter (UPF echo).
    let g = group(catalog, Upf, "up", "gtpu_echo");
    let rx = g
        .other
        .iter()
        .find(|n| n.contains("echo_request") && n.ends_with("_received"))
        .cloned()
        .unwrap();
    push(
        "How many GTP-U ECHO REQUEST messages did the UPF receive?".into(),
        vec![rx.clone()],
        format!("sum({rx})"),
    );

    // 19. Average per instance.
    let g = group(catalog, N3iwf, "iwk", "ikev2_sa_initiation");
    let a = g.attempt.clone().unwrap();
    push(
        "What is the average number of IKEv2 SA initiations per N3IWF instance?".into(),
        vec![a.clone()],
        format!("avg({a})"),
    );

    // 20. Mean duration (N3IWF).
    let g = group(catalog, N3iwf, "iwk", "nwu_registration");
    let s = g.success.clone().unwrap();
    let d = g
        .other
        .iter()
        .find(|n| n.ends_with("_duration_ms_total"))
        .cloned()
        .unwrap();
    push(
        "What is the mean duration of registration over untrusted non-3GPP access?".into(),
        vec![d.clone(), s.clone()],
        format!("sum({d}) / sum({s})"),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};

    fn catalog() -> Catalog {
        generate_catalog(&CatalogConfig::default())
    }

    #[test]
    fn builds_exactly_twenty() {
        assert_eq!(fewshot_exemplars(&catalog()).len(), 20);
    }

    #[test]
    fn every_referenced_metric_exists() {
        let c = catalog();
        for ex in fewshot_exemplars(&c) {
            for m in &ex.metrics {
                assert!(c.get(m).is_some(), "exemplar metric {m} not in catalog");
            }
        }
    }

    #[test]
    fn every_promql_parses() {
        for ex in fewshot_exemplars(&catalog()) {
            assert!(
                dio_promql::parse(&ex.promql).is_ok(),
                "unparseable exemplar: {}",
                ex.promql
            );
        }
    }

    #[test]
    fn exemplars_cover_all_task_shapes() {
        use dio_llm::sim::reason::{analyze, TaskShape};
        let shapes: std::collections::HashSet<TaskShape> = fewshot_exemplars(&catalog())
            .iter()
            .map(|e| analyze(&e.question).shape)
            .collect();
        for shape in [
            TaskShape::TotalCount,
            TaskShape::CurrentValue,
            TaskShape::AverageValue,
            TaskShape::RatePerSecond,
            TaskShape::SuccessRatePercent,
            TaskShape::FailureRatio,
            TaskShape::CombinedFailureRatio,
            TaskShape::MeanDurationMs,
        ] {
            assert!(shapes.contains(&shape), "missing shape {shape:?}");
        }
    }

    #[test]
    fn reserved_procedure_check_works() {
        assert!(is_fewshot_procedure(NetworkFunction::Amf, "cc", "paging"));
        assert!(!is_fewshot_procedure(
            NetworkFunction::Amf,
            "cc",
            "initial_registration"
        ));
    }

    #[test]
    fn questions_are_unique() {
        let ex = fewshot_exemplars(&catalog());
        let mut qs: Vec<&str> = ex.iter().map(|e| e.question.as_str()).collect();
        qs.sort_unstable();
        qs.dedup();
        assert_eq!(qs.len(), ex.len());
    }
}

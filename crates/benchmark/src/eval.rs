//! Execution accuracy (EX) evaluation (paper §4.2.2).
//!
//! "Execution accuracy (EX), which measures the percentage of times an
//! approach produced an answer that is numerically matching the
//! reference answer."

use crate::questions::BenchmarkQuestion;
use dio_baselines::NlQuerySystem;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Relative tolerance for "numerically matching". Generated and
/// reference queries run through the same engine, so correct queries
/// match to machine precision; the tolerance only absorbs benign
/// floating-point reassociation.
pub const REL_TOLERANCE: f64 = 1e-9;

/// One question's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionOutcome {
    /// Question id.
    pub id: usize,
    /// Whether the produced answer matched the reference numerically.
    pub correct: bool,
    /// The system's query.
    pub query: String,
    /// The system's numeric answer, if any.
    pub numeric: Option<f64>,
    /// The reference numeric answer.
    pub reference: f64,
    /// Error string if the system failed outright.
    pub error: Option<String>,
    /// Repair rounds the system ran on this question.
    pub repairs: usize,
    /// Whether the answer came from a degraded fallback.
    pub degraded: bool,
}

/// Aggregated evaluation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// System label.
    pub system: String,
    /// Number of questions evaluated.
    pub total: usize,
    /// Number answered correctly.
    pub correct: usize,
    /// EX in percent.
    pub ex_percent: f64,
    /// EX per task shape.
    pub per_shape: BTreeMap<String, (usize, usize)>,
    /// EX split by phrasing: (plain correct, plain total, para correct,
    /// para total).
    pub plain_vs_paraphrase: (usize, usize, usize, usize),
    /// Mean inference cost per query in US cents.
    pub mean_cost_cents: f64,
    /// Total repair rounds across all questions (recovery accounting).
    pub repairs_total: usize,
    /// Questions answered by a degraded fallback.
    pub degraded_count: usize,
    /// Per-question outcomes.
    pub outcomes: Vec<QuestionOutcome>,
}

/// Do two numeric answers match?
pub fn numeric_match(answer: f64, reference: f64) -> bool {
    if !answer.is_finite() || !reference.is_finite() {
        return false;
    }
    let scale = reference.abs().max(answer.abs()).max(1e-300);
    (answer - reference).abs() <= REL_TOLERANCE * scale
}

/// Instrument names for the observed evaluation loop.
pub const QUESTIONS_NAME: &str = "dio_benchmark_questions_total";
const QUESTIONS_HELP: &str = "Benchmark questions evaluated, by correctness of the answer.";
/// Per-question inference cost histogram.
pub const QUESTION_COST_NAME: &str = "dio_benchmark_question_cost_cents";
const QUESTION_COST_HELP: &str = "Inference cost of answering one benchmark question, in cents.";

/// Evaluate a system over the benchmark.
pub fn evaluate(
    system: &mut dyn NlQuerySystem,
    questions: &[BenchmarkQuestion],
    eval_ts: i64,
) -> EvalReport {
    evaluate_inner(system, questions, eval_ts, None)
}

/// Like [`evaluate`], but also account per-question throughput and cost
/// into a [`dio_obs::Registry`] — the benchmark-side share of the
/// copilot's self-telemetry.
pub fn evaluate_observed(
    system: &mut dyn NlQuerySystem,
    questions: &[BenchmarkQuestion],
    eval_ts: i64,
    registry: &dio_obs::Registry,
) -> EvalReport {
    evaluate_inner(system, questions, eval_ts, Some(registry))
}

fn evaluate_inner(
    system: &mut dyn NlQuerySystem,
    questions: &[BenchmarkQuestion],
    eval_ts: i64,
    registry: Option<&dio_obs::Registry>,
) -> EvalReport {
    if let Some(reg) = registry {
        // Pre-register so a zero-question run still exports the family.
        reg.counter_with(QUESTIONS_NAME, QUESTIONS_HELP, &[("correct", "true")]);
    }
    let mut outcomes = Vec::with_capacity(questions.len());
    let mut per_shape: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut plain = (0usize, 0usize);
    let mut para = (0usize, 0usize);
    let mut cost_total = 0.0;

    for q in questions {
        let a = system.answer(&q.text, eval_ts);
        let correct = a
            .numeric_answer
            .map(|v| numeric_match(v, q.reference.numeric))
            .unwrap_or(false);
        cost_total += a.cost_cents;
        if let Some(reg) = registry {
            reg.counter_with(
                QUESTIONS_NAME,
                QUESTIONS_HELP,
                &[("correct", if correct { "true" } else { "false" })],
            )
            .inc();
            reg.histogram(
                QUESTION_COST_NAME,
                QUESTION_COST_HELP,
                &dio_obs::Buckets::exponential(0.25, 2.0, 10),
            )
            .observe(a.cost_cents);
        }

        let entry = per_shape.entry(q.shape.clone()).or_insert((0, 0));
        entry.1 += 1;
        if correct {
            entry.0 += 1;
        }
        match q.phrasing {
            crate::questions::Phrasing::Plain => {
                plain.1 += 1;
                if correct {
                    plain.0 += 1;
                }
            }
            crate::questions::Phrasing::Paraphrase => {
                para.1 += 1;
                if correct {
                    para.0 += 1;
                }
            }
        }

        outcomes.push(QuestionOutcome {
            id: q.id,
            correct,
            query: a.query,
            numeric: a.numeric_answer,
            reference: q.reference.numeric,
            error: a.error,
            repairs: a.repairs,
            degraded: a.degraded,
        });
    }

    let correct = outcomes.iter().filter(|o| o.correct).count();
    let repairs_total = outcomes.iter().map(|o| o.repairs).sum();
    let degraded_count = outcomes.iter().filter(|o| o.degraded).count();
    let total = outcomes.len();
    EvalReport {
        system: system.system_name(),
        total,
        correct,
        ex_percent: if total == 0 {
            0.0
        } else {
            correct as f64 * 100.0 / total as f64
        },
        per_shape,
        plain_vs_paraphrase: (plain.0, plain.1, para.0, para.1),
        mean_cost_cents: if total == 0 {
            0.0
        } else {
            cost_total / total as f64
        },
        repairs_total,
        degraded_count,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::questions::{Phrasing, Reference};
    use dio_baselines::SystemAnswer;
    use dio_llm::TokenUsage;

    /// A stub system that answers a fixed fraction correctly.
    struct Stub {
        right: Vec<bool>,
        i: usize,
    }

    impl NlQuerySystem for Stub {
        fn system_name(&self) -> String {
            "stub".into()
        }
        fn answer(&mut self, _q: &str, _ts: i64) -> SystemAnswer {
            let right = self.right[self.i % self.right.len()];
            self.i += 1;
            SystemAnswer {
                query: "sum(m)".into(),
                numeric_answer: Some(if right { 10.0 } else { 5.0 }),
                values: vec![],
                error: None,
                repairs: if right { 0 } else { 1 },
                degraded: false,
                usage: TokenUsage {
                    prompt_tokens: 100,
                    completion_tokens: 10,
                },
                cost_cents: 2.0,
            }
        }
    }

    fn questions(n: usize) -> Vec<BenchmarkQuestion> {
        (0..n)
            .map(|id| BenchmarkQuestion {
                id,
                text: format!("question {id}"),
                shape: if id % 2 == 0 { "TotalCount" } else { "RatePerSecond" }.into(),
                phrasing: if id % 2 == 0 {
                    Phrasing::Plain
                } else {
                    Phrasing::Paraphrase
                },
                reference: Reference {
                    metrics: vec!["m".into()],
                    promql: "sum(m)".into(),
                    numeric: 10.0,
                },
            })
            .collect()
    }

    #[test]
    fn numeric_match_tolerances() {
        assert!(numeric_match(10.0, 10.0));
        assert!(numeric_match(10.0 + 1e-12, 10.0));
        assert!(!numeric_match(10.1, 10.0));
        assert!(!numeric_match(f64::NAN, 10.0));
        assert!(!numeric_match(10.0, f64::INFINITY));
        assert!(numeric_match(0.0, 0.0));
    }

    #[test]
    fn report_aggregates_correctly() {
        let mut s = Stub {
            right: vec![true, false],
            i: 0,
        };
        let qs = questions(10);
        let r = evaluate(&mut s, &qs, 0);
        assert_eq!(r.total, 10);
        assert_eq!(r.correct, 5);
        assert_eq!(r.ex_percent, 50.0);
        assert_eq!(r.mean_cost_cents, 2.0);
        // Even ids (plain, TotalCount) were the correct ones.
        assert_eq!(r.per_shape["TotalCount"], (5, 5));
        assert_eq!(r.per_shape["RatePerSecond"], (0, 5));
        assert_eq!(r.plain_vs_paraphrase, (5, 5, 0, 5));
        // The stub reports one repair round per wrong answer.
        assert_eq!(r.repairs_total, 5);
        assert_eq!(r.degraded_count, 0);
    }

    #[test]
    fn observed_evaluation_counts_questions_and_cost() {
        let mut s = Stub {
            right: vec![true, false],
            i: 0,
        };
        let qs = questions(10);
        let reg = dio_obs::Registry::new();
        let r = evaluate_observed(&mut s, &qs, 0, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.total(QUESTIONS_NAME), r.total as f64);
        let fam = snap.family(QUESTIONS_NAME).unwrap();
        let correct: f64 = fam
            .series
            .iter()
            .filter(|se| se.labels.contains(&("correct".into(), "true".into())))
            .map(|se| match &se.value {
                dio_obs::SeriesValue::Counter(v) => *v,
                _ => 0.0,
            })
            .sum();
        assert_eq!(correct, r.correct as f64);
        // 10 questions at 2¢ each.
        assert_eq!(snap.total(QUESTION_COST_NAME), 20.0);
    }

    #[test]
    fn empty_benchmark_gives_zero() {
        let mut s = Stub {
            right: vec![true],
            i: 0,
        };
        let r = evaluate(&mut s, &[], 0);
        assert_eq!(r.ex_percent, 0.0);
        assert_eq!(r.mean_cost_cents, 0.0);
    }
}

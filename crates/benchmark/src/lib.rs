//! # dio-benchmark
//!
//! The operator-specific benchmark (paper §4.1) and the execution-
//! accuracy evaluation harness (§4.2).
//!
//! * [`world`] — the "synthetic yet representative" evaluation world:
//!   the full 3000+-metric catalog synthesised into a labelled
//!   time-series store (three instances per network function, coupled
//!   attempt/success/failure counters);
//! * [`fewshot`] — the 20 expert-generated few-shot exemplars ("user
//!   query, corresponding context, relevant metrics and the PromQL
//!   query"); the procedures they use are excluded from the benchmark
//!   ("none of the training questions … are incorporated");
//! * [`questions`] — the 200 expert-generated questions with reference
//!   metrics, reference PromQL, and the numeric answer obtained by
//!   executing the reference on the world store; spanning retrieval,
//!   averaging, sum and rate, with up to three metrics per expression;
//! * [`eval`] — execution accuracy (EX): "the percentage of times an
//!   approach produced an answer that is numerically matching the
//!   reference answer".

pub mod eval;
pub mod fewshot;
pub mod questions;
pub mod report;
pub mod world;

pub use eval::{evaluate, evaluate_observed, EvalReport, QuestionOutcome};
pub use fewshot::fewshot_exemplars;
pub use questions::{generate_benchmark, BenchmarkQuestion, Phrasing, Reference};
pub use world::{OperatorWorld, WorldConfig};

//! Table formatting for evaluation reports.

use crate::eval::EvalReport;

/// Format the Table-3a/3b style comparison: one row per report.
pub fn format_comparison_table(title: &str, reports: &[&EvalReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let width = reports
        .iter()
        .map(|r| r.system.len())
        .max()
        .unwrap_or(8)
        .max(8);
    out.push_str(&format!("{:<width$} | EX (%)\n", "Approach"));
    out.push_str(&format!("{:-<width$}-+-------\n", ""));
    for r in reports {
        out.push_str(&format!("{:<width$} | {:>5.0}\n", r.system, r.ex_percent));
    }
    out
}

/// Format a per-shape breakdown for one report.
pub fn format_shape_breakdown(report: &EvalReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} — EX {:.1}% ({}/{})\n",
        report.system, report.ex_percent, report.correct, report.total
    ));
    for (shape, (c, t)) in &report.per_shape {
        out.push_str(&format!(
            "  {:<24} {:>3}/{:<3} ({:.0}%)\n",
            shape,
            c,
            t,
            if *t == 0 { 0.0 } else { *c as f64 * 100.0 / *t as f64 }
        ));
    }
    let (pc, pt, qc, qt) = report.plain_vs_paraphrase;
    out.push_str(&format!(
        "  plain phrasing {:>3}/{:<3}  paraphrased {:>3}/{:<3}\n",
        pc, pt, qc, qt
    ));
    out.push_str(&format!(
        "  mean inference cost: {:.2}¢/query\n",
        report.mean_cost_cents
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn report(name: &str, ex: f64) -> EvalReport {
        EvalReport {
            system: name.into(),
            total: 200,
            correct: (ex * 2.0) as usize,
            ex_percent: ex,
            per_shape: BTreeMap::from([("TotalCount".to_string(), (10usize, 20usize))]),
            plain_vs_paraphrase: (50, 100, 40, 100),
            mean_cost_cents: 4.25,
            repairs_total: 0,
            degraded_count: 0,
            outcomes: vec![],
        }
    }

    #[test]
    fn comparison_table_lists_rows() {
        let a = report("DIO copilot", 66.0);
        let b = report("DIN-SQL", 48.0);
        let t = format_comparison_table("Table 3a", &[&a, &b]);
        assert!(t.contains("DIO copilot"));
        assert!(t.contains("66"));
        assert!(t.contains("48"));
    }

    #[test]
    fn breakdown_includes_shape_and_cost() {
        let r = report("DIO copilot", 66.0);
        let t = format_shape_breakdown(&r);
        assert!(t.contains("TotalCount"));
        assert!(t.contains("4.25"));
        assert!(t.contains("plain phrasing"));
    }
}
